"""Table 1 — verification bench for the app-query operator choice.

Table 1 defines θ1/θ2 for the three slope cases. Correctness means the
union of the two app-query half-planes *covers* the original query
half-plane (every answer tuple is caught by at least one app-query).
This bench verifies the covering by randomized point sampling across
thousands of (slope set, query, pivot) combinations, and reports how
often each Table 1 case fired.
"""


from repro.bench import emit, format_table, table_1_check


def test_table1_operator_choice(benchmark):
    cases = benchmark.pedantic(
        table_1_check, kwargs={"trials": 1500}, rounds=1, iterations=1
    )
    rows = [[case, count] for case, count in sorted(cases.items())]
    emit(
        format_table(
            "Table 1 verification — app-query coverage by slope case",
            ["case", "trials"],
            rows,
        ),
        save_as="table1_cases.txt",
    )
    # every non-exact case must have been exercised
    assert cases["interior"] > 0
    assert cases["above"] > 0
    assert cases["below"] > 0
