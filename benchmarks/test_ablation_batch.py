"""Ablation A8 — batched vs. sequential query execution.

The batch engine's claim: a batch of half-plane selections costs fewer
total page accesses than issuing the same queries one at a time, because
same-slope groups share one B+-tree descent plus one merged sweep, the
refinement step fetches every distinct heap page once per batch, and
repeated queries hit the result cache. This ablation measures all three
effects and checks the answers stay identical to the sequential
planner's.

Emits ``ablation_batch.txt`` (table) and ``ablation_batch.json`` (the
machine-readable artifact CI uploads; checked into
``benchmarks/results/``).
"""

import random

from repro.bench import emit, emit_json, format_table, n_values, relation
from repro.core import DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.exec import BatchExecutor

SIZE = "small"
K = 3
SAME_SLOPE_QUERIES = 64
SEED = 2024


def _same_slope_batch(slope: float, rng: random.Random) -> list[HalfPlaneQuery]:
    return [
        HalfPlaneQuery("EXIST", slope, rng.uniform(-40.0, 40.0), ">=")
        for _ in range(SAME_SLOPE_QUERIES)
    ]


def _mixed_batch(slopes: SlopeSet, rng: random.Random) -> list[HalfPlaneQuery]:
    queries: list[HalfPlaneQuery] = []
    slope_list = list(slopes)
    for _ in range(48):
        if rng.random() < 0.5:
            s = rng.choice(slope_list)
        else:
            s = rng.uniform(slope_list[0] * 0.9, slope_list[-1] * 0.9)
        queries.append(
            HalfPlaneQuery(
                rng.choice(["ALL", "EXIST"]),
                s,
                rng.uniform(-40.0, 40.0),
                rng.choice([">=", "<="]),
            )
        )
    return queries


def _sequential_pages(planner, queries) -> tuple[int, list[set[int]]]:
    pages = 0
    answers = []
    for query in queries:
        res = planner.query(query)
        pages += res.page_accesses
        answers.append(res.ids)
    return pages, answers


def test_batch_vs_sequential(benchmark):
    n = n_values()[0]
    rel = relation(n, SIZE)
    slopes = SlopeSet.uniform_angles(K)
    planner = DualIndexPlanner.build(rel, slopes)
    rng = random.Random(SEED)

    rows = []
    payload = {"n": n, "size": SIZE, "k": K, "scenarios": {}}

    # Scenario 1 — the headline: 64 EXIST queries on one restricted
    # slope. Sequential pays 64 descents + 64 sweeps; the batch pays one.
    same = _same_slope_batch(list(slopes)[K // 2], rng)
    seq_pages, seq_answers = _sequential_pages(planner, same)
    batch = BatchExecutor(planner).execute(same)
    assert [r.ids for r in batch.results] == seq_answers
    assert batch.page_accesses < seq_pages, (
        f"batch must be strictly cheaper: {batch.page_accesses} vs {seq_pages}"
    )
    rows.append(["same-slope EXIST ×64", seq_pages, batch.page_accesses])
    payload["scenarios"]["same_slope_exist_64"] = {
        "queries": len(same),
        "sequential_pages": seq_pages,
        "batch_pages": batch.page_accesses,
        "sweep_leaves": batch.sweep_leaves,
        "refinement_pages": batch.refinement_pages,
        "answers_equal": True,
    }

    # Scenario 2 — a mixed batch: every (type, θ) combination, exact and
    # interior slopes together.
    mixed = _mixed_batch(slopes, rng)
    seq_pages_m, seq_answers_m = _sequential_pages(planner, mixed)
    executor = BatchExecutor(planner)
    batch_m = executor.execute(mixed)
    assert [r.ids for r in batch_m.results] == seq_answers_m
    rows.append(["mixed ×48", seq_pages_m, batch_m.page_accesses])
    payload["scenarios"]["mixed_48"] = {
        "queries": len(mixed),
        "sequential_pages": seq_pages_m,
        "batch_pages": batch_m.page_accesses,
        "exact_groups": batch_m.exact_groups,
        "vector_groups": batch_m.vector_groups,
        "answers_equal": True,
    }

    # Scenario 3 — the cache: replaying an identical batch costs nothing.
    replay = executor.execute(mixed)
    assert [r.ids for r in replay.results] == seq_answers_m
    assert replay.page_accesses == 0
    assert replay.cache_hits == len(mixed)
    rows.append(["mixed ×48 replay", seq_pages_m, replay.page_accesses])
    payload["scenarios"]["mixed_48_replay"] = {
        "queries": len(mixed),
        "sequential_pages": seq_pages_m,
        "batch_pages": replay.page_accesses,
        "cache_hits": replay.cache_hits,
        "answers_equal": True,
    }

    emit(
        format_table(
            f"Ablation A8 — batched vs sequential execution "
            f"(N={n}, k={K}, {SIZE} objects)",
            ["scenario", "sequential pages", "batch pages"],
            rows,
        ),
        save_as="ablation_batch.txt",
    )
    emit_json(payload, save_as="ablation_batch.json")
