"""Ablation A1 — T1 vs T2: duplicates, candidates, false hits, pages.

The paper's motivation for T2 is the *duplication problem* of T1
(Section 4.2): two app-queries retrieve overlapping result sets. T2's
two disjoint sweeps produce zero duplicates by construction. This
ablation quantifies both techniques on identical queries.
"""

import statistics

import pytest

from repro.bench import dual_planner, emit, format_table, n_values, queries_for
from repro.core import ALL, EXIST, DualIndexPlanner

SIZE = "small"
K = 3


@pytest.fixture(scope="module")
def planners():
    t2 = dual_planner(n_values()[1], SIZE, K)
    t1 = DualIndexPlanner(t2.index, technique="T1")
    return t1, t2


def test_t1_vs_t2(benchmark, planners):
    t1, t2 = planners
    n = n_values()[1]
    rows = []
    for qtype in (EXIST, ALL):
        queries = queries_for(n, SIZE, qtype, K)
        for planner, label in ((t1, "T1"), (t2, "T2")):
            results = [planner.query(q) for q in queries]
            rows.append(
                [
                    qtype,
                    label,
                    statistics.mean(r.duplicates for r in results),
                    statistics.mean(r.candidates for r in results),
                    statistics.mean(r.false_hits for r in results),
                    statistics.mean(r.page_accesses for r in results),
                    statistics.mean(r.index_accesses for r in results),
                ]
            )
    emit(
        format_table(
            f"Ablation A1 — T1 vs T2 (N={n}, k={K}, {SIZE} objects)",
            ["type", "tech", "duplicates", "candidates", "false hits",
             "total pages", "index pages"],
            rows,
        ),
        save_as="ablation_t1_vs_t2.txt",
    )
    # T2's defining property: zero duplicates; T1 must show some.
    t2_dups = [r[2] for r in rows if r[1] == "T2"]
    t1_dups = [r[2] for r in rows if r[1] == "T1"]
    assert all(d == 0 for d in t2_dups)
    assert any(d > 0 for d in t1_dups)
    query = queries_for(n, SIZE, EXIST, K)[0]
    benchmark.pedantic(t1.query, args=(query,), rounds=3, iterations=1)
