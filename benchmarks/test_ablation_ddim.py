"""Ablation A6 — the d = 3 extension (the paper's future work).

Section 6: "by increasing the dimension of the space, the performance of
our technique does not change, since we always deal with single values,
whereas the R+-trees performance decreases." This ablation indexes 3-D
boxes with the d-dimensional dual index and a 3-D R-tree and compares
half-plane query page accesses.
"""

import random
import statistics


from repro.bench import emit, format_table, full_run
from repro.constraints import GeneralizedRelation, GeneralizedTuple, Theta
from repro.core import DDimPlanner, HalfPlaneQuery
from repro.geometry.predicates import evaluate_relation
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.planner import RTreePlanner
from repro.storage import Pager

SLOPE_POINTS = [(-0.8, -0.8), (-0.8, 0.8), (0.8, -0.8), (0.8, 0.8), (0.0, 0.0)]
DOMAIN = ((-1.2, -1.2), (1.2, 1.2))


def _relation3(n, seed=13):
    rng = random.Random(seed)
    relation = GeneralizedRelation(name=f"boxes3-{n}")
    while len(relation) < n:
        lows = [rng.uniform(-45, 45) for _ in range(3)]
        highs = [lo + rng.uniform(2, 12) for lo in lows]
        relation.add(GeneralizedTuple.from_box(lows, highs))
    return relation


def test_d3_dual_vs_rtree(benchmark):
    n = 2000 if full_run() else 600
    relation = _relation3(n)
    dual = DDimPlanner.build(relation, SLOPE_POINTS, *DOMAIN, key_bytes=4)
    rtree = RTreePlanner.build(
        relation, pager=Pager(), key_bytes=4, tree_cls=GuttmanRTree
    )
    rng = random.Random(99)
    rows = []
    for qtype in ("EXIST", "ALL"):
        d_idx, r_idx, d_tot, r_tot = [], [], [], []
        trials = 0
        while trials < 8:
            slope = (rng.uniform(-1.2, 1.2), rng.uniform(-1.2, 1.2))
            theta = rng.choice([Theta.GE, Theta.LE])
            b = rng.uniform(-60, 60)
            query = HalfPlaneQuery(qtype, slope, b, theta)
            want = evaluate_relation(relation, qtype, slope, b, theta)
            if not 0.03 * n <= len(want) <= 0.4 * n:
                continue
            trials += 1
            left = dual.query(query)
            right = rtree.query(query)
            assert left.ids == right.ids == want
            d_idx.append(left.index_accesses)
            r_idx.append(right.index_accesses)
            d_tot.append(left.page_accesses)
            r_tot.append(right.page_accesses)
        rows.append(
            [
                qtype,
                statistics.mean(d_idx),
                statistics.mean(r_idx),
                statistics.mean(d_tot),
                statistics.mean(r_tot),
            ]
        )
    emit(
        format_table(
            f"Ablation A6 — d=3 half-plane queries (N={n}, k={len(SLOPE_POINTS)})",
            ["type", "dual idx", "R-tree idx", "dual total", "R-tree total"],
            rows,
        ),
        save_as="ablation_ddim.txt",
    )
    # the dual index's index-access advantage persists in 3-D
    for row in rows:
        assert row[1] < row[2], row
    q = HalfPlaneQuery("EXIST", (0.1, 0.1), 0.0, Theta.GE)
    benchmark.pedantic(dual.query, args=(q,), rounds=3, iterations=1)
