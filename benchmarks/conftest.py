"""Shared benchmark configuration.

The harness caches relations and built structures at module level inside
``repro.bench.harness``, so every benchmark file in one pytest session
reuses them. Set ``REPRO_FULL=1`` for the paper's full parameter sweep
(N up to 12 000, k up to 5) — the default is a reduced sweep sized for
regular runs.
"""

import os
import time

import pytest

_SESSION_START = time.time()


@pytest.fixture(scope="session", autouse=True)
def _announce_scale():
    from repro.bench import full_run, k_values, n_values

    mode = "FULL (paper scale)" if full_run() else "reduced (set REPRO_FULL=1 for paper scale)"
    print(f"\n[repro] benchmark sweep: {mode}; N={n_values()} k={k_values()}")
    yield


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay this session's figure/ablation reports after the run.

    ``repro.bench.harness.emit`` saves every report under
    ``benchmarks/results/``; pytest's fd-level capture swallows the live
    prints, so the terminal summary (never captured) replays them.
    """
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    if not os.path.isdir(results_dir):
        return
    fresh = sorted(
        name
        for name in os.listdir(results_dir)
        if name.endswith(".txt")
        and os.path.getmtime(os.path.join(results_dir, name)) >= _SESSION_START - 1
    )
    if not fresh:
        return
    terminalreporter.section("repro — Section 5 reproduction reports")
    for name in fresh:
        with open(os.path.join(results_dir, name)) as handle:
            terminalreporter.write_line("")
            terminalreporter.write_line(handle.read().rstrip())
