"""Figure 10 — disk space of technique T2 vs the R+-tree.

Paper claims verified:

* T2's space grows linearly with the slope-set cardinality k (2k B+-trees
  plus handicap slots), while the R+-tree's space is independent of k;
* space does not depend on the object *average size* for T2 (single
  values per tuple per tree), while the R+-tree's does (clipping).

The paper reports an average ratio of ``1.32 k`` between T2 and the
R+-tree; the measured ratio is printed per (N, k) and recorded in
EXPERIMENTS.md (our R+-tree carries more clipping duplication than the
authors', which lowers the ratio — see the discussion there).
"""


import pytest

from repro.bench import (
    dual_planner,
    emit,
    figure_10,
    k_values,
    n_values,
    render_figure_10,
)


@pytest.fixture(scope="module")
def space_small():
    return figure_10("small")


@pytest.fixture(scope="module")
def space_medium():
    return figure_10("medium")


def test_fig10_space(benchmark, space_small, space_medium):
    emit(render_figure_10(space_small), save_as="fig10_space_small.txt")
    emit(
        render_figure_10(space_medium).replace(
            "Figure 10", "Figure 10 (medium objects)"
        ),
        save_as="fig10_space_medium.txt",
    )
    n_top = max(n_values())
    by_k = {
        int(r.structure.split("=")[1]): r.ratio_to_rplus
        for r in space_small
        if r.n == n_top and r.structure.startswith("T2")
    }
    ks = sorted(by_k)
    # Linear growth in k: ratio(k) should increase with k and the
    # per-slope ratio should be roughly constant.
    for a, b in zip(ks, ks[1:]):
        assert by_k[b] > by_k[a], "T2 space must grow with k"
    per_slope = [by_k[k] / k for k in ks]
    assert max(per_slope) / min(per_slope) < 1.8, (
        f"space-per-slope should be roughly constant, got {per_slope}"
    )
    ratio_line = ", ".join(f"k={k}: {by_k[k]:.2f} ({by_k[k]/k:.2f}/slope)" for k in ks)
    emit(
        f"Figure 10 summary at N={n_top} (paper: ratio ≈ 1.32k): {ratio_line}",
        save_as="fig10_summary.txt",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig10_size_independence(benchmark, space_small, space_medium):
    """T2 space is independent of object size (same N, same k)."""
    n_top = max(n_values())
    for k in k_values():
        small = next(
            r for r in space_small if r.n == n_top and r.structure == f"T2 k={k}"
        )
        medium = next(
            r for r in space_medium if r.n == n_top and r.structure == f"T2 k={k}"
        )
        assert abs(small.pages - medium.pages) <= 0.15 * small.pages + 4, (
            f"T2 space should not depend on object size (k={k}: "
            f"{small.pages} vs {medium.pages})"
        )
    benchmark.pedantic(
        lambda: dual_planner(n_values()[0], "small", 2).index.space(),
        rounds=3,
        iterations=1,
    )
