"""Ablation A4 — the restricted technique (Section 3) vs T2.

When the query slope belongs to the predefined set, Theorem 3.1 gives
the optimal ``O(log_B n + t)`` bound with refinement only at the key
boundary. This ablation measures how much the approximation costs by
running the *same* intercepts at an anchor slope (exact) and at slopes
progressively farther from the anchor (T2), plus the update-cost side of
Theorem 3.1 (``O(k log_B n)`` per tuple update).
"""

import statistics


from repro.bench import emit, format_table, n_values, relation
from repro.core import EXIST, DualIndex, DualIndexPlanner, SlopeSet
from repro.storage import KeyCodec, Pager
from repro.workloads import intercept_for_selectivity
from repro.constraints.theta import Theta

SIZE = "small"
K = 3


def test_restricted_vs_t2(benchmark):
    n = n_values()[1]
    rel = relation(n, SIZE)
    slopes = SlopeSet.uniform_angles(K)
    planner = DualIndexPlanner.build(
        rel, slopes, pager=Pager(), key_bytes=4
    )
    anchor = slopes[1]
    gap = (slopes[2] - slopes[1]) / 2.0
    rows = []
    for frac in (0.0, 0.05, 0.2, 0.5, 0.9):
        a = anchor + frac * gap
        results = []
        for sel in (0.10, 0.12, 0.15):
            b = intercept_for_selectivity(rel, EXIST, a, Theta.GE, sel)
            results.append(planner.exist(a, b, Theta.GE))
        rows.append(
            [
                f"{frac:.2f}",
                results[0].technique,
                statistics.mean(r.index_accesses for r in results),
                statistics.mean(r.page_accesses for r in results),
                statistics.mean(r.candidates for r in results),
                statistics.mean(r.false_hits for r in results),
            ]
        )
    emit(
        format_table(
            f"Ablation A4 — distance from anchor slope (N={n}, k={K}, EXIST 10-15%)",
            ["anchor dist", "technique", "idx pages", "total pages",
             "candidates", "false hits"],
            rows,
        ),
        save_as="ablation_restricted.txt",
    )
    assert rows[0][1] == "exact"
    assert all(r[1] == "T2" for r in rows[1:])
    # the exact path refines (almost) nothing:
    assert rows[0][5] <= 2
    # approximation overhead grows with anchor distance (loosely):
    assert rows[1][4] <= rows[-1][4] * 1.5 + 5
    benchmark.pedantic(
        planner.exist, args=(anchor, 0.0, Theta.GE), rounds=3, iterations=1
    )


def test_update_cost(benchmark):
    """Tuple updates cost O(k log_B n) tree page accesses (Theorem 3.1);
    deferred handicap maintenance adds amortised directory work."""
    n = n_values()[0]
    rel = relation(n, SIZE)
    slopes = SlopeSet.uniform_angles(K)
    pager = Pager()
    index = DualIndex(pager, slopes, KeyCodec(4), dynamic=True)
    index.build(rel)
    from repro.workloads.generator import polygon_tuple
    import random

    rng = random.Random(5)
    costs = []
    tid = 10_000
    for _ in range(30):
        t = None
        while t is None:
            t = polygon_tuple(
                rng, (rng.uniform(-50, 50), rng.uniform(-50, 50)),
                rng.uniform(100, 500),
            )
        with pager.measure() as scope:
            index.insert(tid, t)
        costs.append(scope.delta.page_accesses)
        tid += 1
    with pager.measure() as scope:
        refreshed = index.refresh_handicaps()
    height = index.up[0].height
    mean_cost = statistics.mean(costs)
    emit(
        "Ablation A4b — dynamic insert cost\n"
        f"  mean insert page accesses : {mean_cost:.1f} "
        f"(2k trees + 4(k-ish) directories, tree height {height})\n"
        f"  handicap refresh          : {refreshed} leaves, "
        f"{scope.delta.page_accesses} page accesses (deferred batch)",
        save_as="ablation_update_cost.txt",
    )
    # sanity: cost scales like k * height, not like N
    assert mean_cost < 40 * K * height
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
