"""Ablation A5 — T1 pivot-point placement.

Section 4.1 chooses the app-query lines through a common pivot ``P`` on
the query line and notes "the optimal choice of P depends on the tuple
distribution on the plane. We omit details due to space limitations."
This ablation sweeps the pivot x-coordinate and measures T1 false hits —
for the paper's centre-uniform data the window centre should be near
optimal.
"""

import statistics


from repro.bench import dual_planner, emit, format_table, n_values, queries_for
from repro.core import ALL, EXIST, DualIndexPlanner

SIZE = "small"
K = 3


def test_pivot_placement(benchmark):
    n = n_values()[1]
    base = dual_planner(n, SIZE, K)
    queries = queries_for(n, SIZE, EXIST, K) + queries_for(n, SIZE, ALL, K)
    rows = []
    best = None
    for pivot_x in (-80.0, -40.0, 0.0, 40.0, 80.0):
        planner = DualIndexPlanner(
            base.index, technique="T1", pivot_x=pivot_x
        )
        results = [planner.query(q) for q in queries]
        false_hits = statistics.mean(r.false_hits for r in results)
        duplicates = statistics.mean(r.duplicates for r in results)
        pages = statistics.mean(r.page_accesses for r in results)
        rows.append([pivot_x, false_hits, duplicates, pages])
        if best is None or false_hits < best[1]:
            best = (pivot_x, false_hits)
    emit(
        format_table(
            f"Ablation A5 — T1 pivot placement (N={n}, k={K})",
            ["pivot x", "false hits", "duplicates", "total pages"],
            rows,
        )
        + f"\nbest pivot: x = {best[0]} "
        "(paper: optimum depends on the tuple distribution; data is "
        "centred on x = 0)",
        save_as="ablation_pivot.txt",
    )
    # The centre pivot should not be far off the best.
    centre = next(r for r in rows if r[0] == 0.0)
    assert centre[1] <= 1.6 * best[1] + 5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
