"""Ablation A3 — buffer-pool sensitivity.

The paper's numbers are cold page accesses (the logical metric). A
buffer pool absorbs repeated touches: this ablation runs the same query
batch against stacks with growing buffer capacity and reports *physical*
reads per query.
"""

import statistics


from repro.bench import interior_slope_range, n_values, relation, emit, format_table
from repro.core import EXIST, DualIndexPlanner, SlopeSet
from repro.storage import Pager
from repro.workloads import make_queries

SIZE = "small"
K = 3


def test_buffer_sensitivity(benchmark):
    n = n_values()[0]
    rel = relation(n, SIZE)
    queries = make_queries(
        rel, 6, EXIST, seed=31, slope_range=interior_slope_range(K)
    )
    rows = []
    for frames in (0, 8, 64, 512):
        pager = Pager(buffer_frames=frames)
        planner = DualIndexPlanner.build(
            rel, SlopeSet.uniform_angles(K), pager=pager, key_bytes=4
        )
        pager.cool_down()
        physical = []
        logical = []
        for q in queries:
            before = pager.disk.stats.physical_reads
            res = planner.query(q)
            physical.append(pager.disk.stats.physical_reads - before)
            logical.append(res.io.logical_reads)
        rows.append(
            [
                frames,
                statistics.mean(logical),
                statistics.mean(physical),
                f"{pager.buffer.hit_rate:.2f}",
            ]
        )
    emit(
        format_table(
            f"Ablation A3 — buffer pool (N={n}, k={K}, EXIST, repeated batch)",
            ["frames", "logical reads/query", "physical reads/query", "hit rate"],
            rows,
        ),
        save_as="ablation_buffer.txt",
    )
    # Logical cost is buffer-independent; physical cost must not grow.
    logicals = [r[1] for r in rows]
    assert max(logicals) - min(logicals) < 1e-6
    physicals = [r[2] for r in rows]
    assert physicals[-1] <= physicals[0]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
