"""Ablation A2 — sensitivity to query selectivity.

The paper ran selectivities from 5 % to 60 % and reported the 10–15 %
band, stating results "appeared to be similar". This ablation sweeps
the full range and records page accesses for T2 and the R+-tree.
"""

import statistics


from repro.bench import (
    dual_planner,
    emit,
    format_table,
    interior_slope_range,
    n_values,
    relation,
    rplus_planner,
)
from repro.core import ALL, EXIST
from repro.workloads import make_queries

SIZE = "small"
K = 3
BANDS = [(0.05, 0.08), (0.10, 0.15), (0.25, 0.30), (0.50, 0.60)]


def test_selectivity_sweep(benchmark, ):
    n = n_values()[1]
    dual = dual_planner(n, SIZE, K)
    rplus = rplus_planner(n, SIZE)
    rows = []
    for lo, hi in BANDS:
        for qtype in (EXIST, ALL):
            queries = make_queries(
                relation(n, SIZE), 4, qtype, seed=23,
                selectivity=(lo, hi),
                slope_range=interior_slope_range(K),
            )
            d = [dual.query(q) for q in queries]
            r = [rplus.query(q) for q in queries]
            for left, right in zip(d, r):
                assert left.ids == right.ids
            rows.append(
                [
                    f"{int(lo*100)}-{int(hi*100)}%",
                    qtype,
                    statistics.mean(x.index_accesses for x in d),
                    statistics.mean(x.index_accesses for x in r),
                    statistics.mean(x.page_accesses for x in d),
                    statistics.mean(x.page_accesses for x in r),
                ]
            )
    emit(
        format_table(
            f"Ablation A2 — selectivity sweep (N={n}, k={K}, {SIZE})",
            ["selectivity", "type", "T2 idx", "R+ idx", "T2 total", "R+ total"],
            rows,
        ),
        save_as="ablation_selectivity.txt",
    )
    # T2 stays below R+ on the index metric across the whole range.
    for row in rows:
        assert row[2] <= row[3] * 1.1 + 2, row
    queries = make_queries(
        relation(n, SIZE), 1, EXIST, seed=23,
        selectivity=BANDS[0], slope_range=interior_slope_range(K),
    )
    benchmark.pedantic(dual.query, args=(queries[0],), rounds=3, iterations=1)
