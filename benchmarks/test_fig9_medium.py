"""Figure 9 — EXIST/ALL page accesses on MEDIUM objects (≤ 50 % area).

Adds the cross-figure claims of Section 5:

* the R+-tree performs better with small objects than with medium ones
  (duplication/clipping grows with object size);
* the behaviour of technique T2 does not significantly change when the
  object size changes (it indexes single TOP/BOT values per tuple).
"""

import pytest

from repro.bench import (
    dual_planner,
    emit,
    emit_json,
    figure_8_9,
    figure_payload,
    k_values,
    n_values,
    queries_for,
    render_figure,
)
from repro.core import ALL, EXIST

SIZE = "medium"


@pytest.fixture(scope="module")
def exist_series():
    return figure_8_9(SIZE, EXIST)


@pytest.fixture(scope="module")
def all_series():
    return figure_8_9(SIZE, ALL)


def _line(series, label):
    return next(s for s in series if s.label == label)


def test_fig9a_exist(benchmark, exist_series):
    emit(
        render_figure(
            "Figure 9(a) — EXIST selections, medium objects "
            "(index page accesses)",
            exist_series,
        ),
        save_as="fig9a_exist_medium_index.txt",
    )
    emit_json(
        figure_payload("9a", SIZE, EXIST, exist_series),
        save_as="fig9a_exist_medium.json",
    )
    rplus = _line(exist_series, "R+-tree")
    for n in n_values():
        if n < 2000:
            continue
        for k in k_values():
            t2 = _line(exist_series, f"T2 k={k}")
            assert (
                t2.points[n].index_accesses < rplus.points[n].index_accesses
            ), f"T2 k={k} should beat R+ on medium EXIST at N={n}"
    planner = dual_planner(max(n_values()), SIZE, max(k_values()))
    query = queries_for(max(n_values()), SIZE, EXIST, max(k_values()))[0]
    benchmark.pedantic(planner.query, args=(query,), rounds=3, iterations=1)


def test_fig9b_all(benchmark, all_series):
    emit(
        render_figure(
            "Figure 9(b) — ALL selections, medium objects "
            "(index page accesses)",
            all_series,
        ),
        save_as="fig9b_all_medium_index.txt",
    )
    emit(
        render_figure(
            "Figure 9(b) companion — ALL, medium objects "
            "(total accesses incl. refinement)",
            all_series,
            metric="total_accesses",
        ),
        save_as="fig9b_all_medium_total.txt",
    )
    emit_json(
        figure_payload("9b", SIZE, ALL, all_series),
        save_as="fig9b_all_medium.json",
    )
    rplus = _line(all_series, "R+-tree")
    n_top = max(n_values())
    worst_t2 = max(
        _line(all_series, f"T2 k={k}").points[n_top].index_accesses
        for k in k_values()
    )
    assert worst_t2 < rplus.points[n_top].index_accesses
    planner = dual_planner(n_top, SIZE, min(k_values()))
    query = queries_for(n_top, SIZE, ALL, min(k_values()))[0]
    benchmark.pedantic(planner.query, args=(query,), rounds=3, iterations=1)


def test_object_size_sensitivity(benchmark, exist_series):
    """T2 is size-insensitive; the R+-tree prefers small objects."""
    small_series = figure_8_9("small", EXIST)
    n_top = max(n_values())
    k = max(k_values())
    t2_small = _line(small_series, f"T2 k={k}").points[n_top].index_accesses
    t2_medium = _line(exist_series, f"T2 k={k}").points[n_top].index_accesses
    assert t2_medium <= 2.0 * max(t2_small, 1.0), (
        "T2 index accesses should not blow up with object size"
    )
    rp_small = _line(small_series, "R+-tree").points[n_top].index_accesses
    rp_medium = _line(exist_series, "R+-tree").points[n_top].index_accesses
    assert rp_medium >= rp_small, (
        "the R+-tree should degrade as objects grow"
    )
    emit(
        "Object-size sensitivity at N=%d (EXIST index accesses)\n"
        "  T2 k=%d: small %.1f -> medium %.1f\n"
        "  R+-tree: small %.1f -> medium %.1f"
        % (n_top, k, t2_small, t2_medium, rp_small, rp_medium),
        save_as="fig9_size_sensitivity.txt",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
