"""Figure 8 — EXIST/ALL page accesses on SMALL objects (1–5 % area).

Regenerates both sub-figures as ASCII series (T2 for each k, plus the
R+-tree), saves them under ``benchmarks/results/``, asserts the paper's
shape claims, and times representative queries with pytest-benchmark.

Paper claims verified here:

* technique T2 always performs better than the R+-tree (index-access
  metric — the metric of Theorems 3.1/4.2; see EXPERIMENTS.md);
* the advantage of T2 over the R+-tree is wider for ALL selections.
"""

import pytest

from repro.bench import (
    dual_planner,
    emit,
    emit_json,
    figure_8_9,
    figure_payload,
    k_values,
    n_values,
    queries_for,
    render_figure,
    rplus_planner,
)
from repro.core import ALL, EXIST

SIZE = "small"


@pytest.fixture(scope="module")
def exist_series():
    return figure_8_9(SIZE, EXIST)


@pytest.fixture(scope="module")
def all_series():
    return figure_8_9(SIZE, ALL)


def _advantage(series, n):
    """R+ pages divided by worst T2 pages at cardinality N."""
    rplus = next(s for s in series if s.label == "R+-tree")
    t2 = [s for s in series if s.label.startswith("T2")]
    worst_t2 = max(s.points[n].index_accesses for s in t2)
    return rplus.points[n].index_accesses / max(worst_t2, 1e-9)


def test_fig8a_exist(benchmark, exist_series):
    emit(
        render_figure(
            "Figure 8(a) — EXIST selections, small objects "
            "(index page accesses)",
            exist_series,
        ),
        save_as="fig8a_exist_small_index.txt",
    )
    emit(
        render_figure(
            "Figure 8(a) companion — EXIST, small objects "
            "(total accesses incl. refinement)",
            exist_series,
            metric="total_accesses",
        ),
        save_as="fig8a_exist_small_total.txt",
    )
    emit_json(
        figure_payload("8a", SIZE, EXIST, exist_series),
        save_as="fig8a_exist_small.json",
    )
    for n in n_values():
        if n >= 2000:
            assert _advantage(exist_series, n) > 1.0, (
                f"T2 should beat the R+-tree on EXIST at N={n}"
            )
    planner = dual_planner(max(n_values()), SIZE, max(k_values()))
    query = queries_for(max(n_values()), SIZE, EXIST, max(k_values()))[0]
    benchmark.pedantic(planner.query, args=(query,), rounds=3, iterations=1)


def test_fig8b_all(benchmark, all_series, exist_series):
    emit(
        render_figure(
            "Figure 8(b) — ALL selections, small objects "
            "(index page accesses)",
            all_series,
        ),
        save_as="fig8b_all_small_index.txt",
    )
    emit(
        render_figure(
            "Figure 8(b) companion — ALL, small objects "
            "(total accesses incl. refinement)",
            all_series,
            metric="total_accesses",
        ),
        save_as="fig8b_all_small_total.txt",
    )
    emit_json(
        figure_payload("8b", SIZE, ALL, all_series),
        save_as="fig8b_all_small.json",
    )
    n_top = max(n_values())
    assert _advantage(all_series, n_top) > 1.0, "T2 should beat R+ on ALL"
    # "the advantage of T2 over the R+-tree is wider for ALL selections"
    assert _advantage(all_series, n_top) > _advantage(exist_series, n_top), (
        "T2's advantage should be wider for ALL than for EXIST"
    )
    planner = rplus_planner(n_top, SIZE)
    query = queries_for(n_top, SIZE, ALL, max(k_values()))[0]
    benchmark.pedantic(planner.query, args=(query,), rounds=3, iterations=1)


def test_fig8_results_match_oracle(benchmark):
    """Spot-check: both structures return identical (oracle) answers."""
    from repro.bench import cross_check

    n = n_values()[1]
    dual = dual_planner(n, SIZE, 3)
    rplus = rplus_planner(n, SIZE)
    queries = queries_for(n, SIZE, EXIST, 3, count=3) + queries_for(
        n, SIZE, ALL, 3, count=3
    )
    benchmark.pedantic(
        cross_check, args=(dual, rplus, queries), rounds=1, iterations=1
    )
