"""Process-parallel shard fan-out (fork + copy-on-write planners).

Threads cannot scale the sharded batch path: the per-shard work is
CPU-bound Python/numpy and the GIL serialises it (measured: four
threads of ``np.searchsorted``/``np.concatenate`` run at 0.95× one
thread). So the facade forks one worker process per shard *after* the
shards are built — the children inherit the in-memory pagers and
B+-tree forests copy-on-write, no pickling of index state — and ships
each batch to the workers, which answer it with the lean columnar
partials path (:meth:`repro.exec.BatchExecutor.execute_partials`) and
return numpy columns that pickle at memcpy speed.

The registry below is the fork handshake: the parent registers its
shard planners under a key, forks the pool, and workers look the key up
in their inherited copy of this module's globals. A pool is only valid
for the index version it was forked at; the facade re-forks after any
mutation (see :meth:`ShardedDualIndex._process_pool`).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Sequence

from repro.exec.executor import BatchExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.planner import DualIndexPlanner
    from repro.core.query import HalfPlaneQuery
    from repro.exec.partials import ShardPartials

#: Parent-side: planner lists visible to forked children (copy-on-write).
_REGISTRY: dict[int, "list[DualIndexPlanner]"] = {}
#: Worker-side: one lean executor per (registry key, shard), built lazily.
_EXECUTORS: dict[tuple[int, int], BatchExecutor] = {}
_KEYS = itertools.count()


def register(planners: "list[DualIndexPlanner]") -> int:
    """Expose ``planners`` to workers forked after this call."""
    key = next(_KEYS)
    _REGISTRY[key] = planners
    return key


def unregister(key: int) -> None:
    """Drop a registration (stale forked pools must not outlive it)."""
    _REGISTRY.pop(key, None)


def worker_batch(
    key: int, shard: int, queries: "Sequence[HalfPlaneQuery]",
    trace: "dict | None" = None,
) -> "ShardPartials":
    """Answer one batch on one shard inside a forked worker.

    The result cache is disabled (``cache_size=0``): a worker answers
    every batch cold so its page accounting matches the threaded
    fan-out's cold executors, and caching belongs to whoever owns the
    batch stream, not to a worker that may be re-forked away.

    ``trace`` re-installs the parent's request trace context inside the
    worker (module globals do not cross the fork *after* it happened),
    so worker-side instrumentation sees the same trace id the serving
    layer stamped on the request.
    """
    from repro.obs import tracer

    executor = _EXECUTORS.get((key, shard))
    if executor is None:
        executor = BatchExecutor(_REGISTRY[key][shard], cache_size=0)
        _EXECUTORS[(key, shard)] = executor
    with tracer.request_context(tracer.from_payload(trace)):
        return executor.execute_partials(queries)
