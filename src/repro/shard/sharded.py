"""The sharded dual-transform engine.

:class:`ShardedDualIndex` hash-partitions a relation by tuple id across
N fully independent shards — each shard owns its own pager, buffer
pool, heap file, and 2k B+-tree forest (a complete
:class:`~repro.core.planner.DualIndexPlanner`). Queries fan out across
a thread pool and merge:

* **answers** — half-plane selections distribute over a disjoint
  partition of the relation, so the merged answer is the plain union of
  per-shard answer sets (no translation: shards index tuples under
  their global ids via :meth:`GeneralizedRelation.subset`);
* **accounting** — page accesses, candidates, false hits and
  refinement pages are summed across shards, so the paper's metric
  stays the total work the engine did (a shard's pages are as real as
  the single-engine pages).

Determinism: per-shard execution is exactly the unsharded engine on the
shard's sub-relation, key computation is bit-identical (see
:mod:`repro.shard.keys`), and the union of disjoint exact answer sets
is order-independent — so sharded answers are bit-identical to the
unsharded engine's for every N. Fan-out runs sequentially whenever an
:mod:`repro.obs` trace is active (the trace recorder is bound to one
pager and is not thread-safe).
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import fields as dataclass_fields
from pickle import PicklingError
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.constraints.relation import GeneralizedRelation
from repro.constraints.theta import Theta
from repro.constraints.tuples import GeneralizedTuple
from repro.core.dual_index import IndexSpace
from repro.core.planner import DualIndexPlanner
from repro.core.query import ALL, EXIST, HalfPlaneQuery, QueryResult
from repro.core.slope_set import SlopeSet
from repro.errors import IndexError_
from repro.exec.executor import BatchExecutor, BatchResult
from repro.obs import trace as obs
from repro.obs import slopelog
from repro.obs import tracer
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.storage.pager import Pager
from repro.storage.stats import IOStats


def shard_of(tid: int, shards: int) -> int:
    """The shard owning tuple ``tid`` (hash partition by id)."""
    return tid % shards


def _add_io(total: IOStats, part: IOStats) -> None:
    for f in dataclass_fields(IOStats):
        setattr(total, f.name, getattr(total, f.name) + getattr(part, f.name))


class ShardedDualIndex:
    """N independent dual-index shards behind one planner-like facade.

    Construct with :meth:`build`; the query surface mirrors
    :class:`DualIndexPlanner` (``query`` / ``query_batch`` / ``exist`` /
    ``all``), so callers — the CLI, benchmarks, the differential
    verifier — can swap engines freely.

    Example::

        >>> from repro import GeneralizedRelation, parse_tuple
        >>> from repro.shard import ShardedDualIndex
        >>> r = GeneralizedRelation([
        ...     parse_tuple("y >= x and y <= 4 and x >= 0"),
        ...     parse_tuple("y <= 1 and y >= 0 and x >= 0 and x <= 1"),
        ... ])
        >>> engine = ShardedDualIndex.build(r, slopes=[-1.0, 0.0, 1.0],
        ...                                 shards=2)
        >>> res = engine.exist(0.0, 2.0, ">=")
        >>> sorted(res.ids)
        [0]
    """

    def __init__(
        self,
        planners: Sequence[DualIndexPlanner],
        registry: MetricsRegistry | None = None,
        fanout: str = "thread",
    ) -> None:
        if not planners:
            raise IndexError_("ShardedDualIndex needs at least one shard")
        if fanout not in ("thread", "process"):
            raise IndexError_(f"fanout must be 'thread' or 'process', got {fanout!r}")
        self.planners = list(planners)
        self.registry = registry if registry is not None else get_registry()
        #: Batch fan-out mode. ``"process"`` forks one worker per shard
        #: (copy-on-write planners) so CPU-bound shard work actually
        #: overlaps — the GIL caps thread fan-out at 1× (see
        #: :mod:`repro.shard.procfan`). Falls back to threads when
        #: forking is unavailable or the shards are dynamic.
        self.fanout = fanout
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._executors: list[BatchExecutor] | None = None
        self._proc_pool = None
        self._proc_key: int | None = None
        self._proc_version: int | None = None
        #: One private registry per shard. Shard-local recording is
        #: thread-safe by construction (no sharing); after every query
        #: or batch the facade drains them into :attr:`registry` as
        #: ``shard_*{shard=i}`` labeled series (see
        #: :meth:`_drain_shard_metrics`).
        self._shard_registries = [MetricsRegistry() for _ in self.planners]
        # Shard-internal planners stay out of the slope log: every shard
        # sees the same broadcast stream, so the facade records each
        # logical query exactly once (identically for thread and process
        # fan-out, whose workers could not drain a forked log back).
        for p in self.planners:
            p.slope_logging = False

    # ------------------------------------------------------------------
    # durability (see repro.storage.checkpoint and docs/STORAGE.md)
    # ------------------------------------------------------------------
    def save(self, data_dir: str) -> None:
        """Persist every shard (``shard-N/`` subdirectories) plus a
        manifest catalog naming the shard count and fan-out mode."""
        from repro.storage.checkpoint import save_sharded

        save_sharded(self, data_dir)

    @classmethod
    def open(
        cls,
        data_dir: str,
        columnar: bool | None = None,
        fanout: str | None = None,
    ) -> "ShardedDualIndex":
        """Open a saved sharded engine from its manifest."""
        from repro.storage.checkpoint import open_sharded

        return open_sharded(data_dir, columnar=columnar, fanout=fanout)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        relation: GeneralizedRelation,
        slopes: SlopeSet | Iterable[float],
        shards: int = 2,
        workers: int = 0,
        key_bytes: int = 4,
        technique: str = "T2",
        fill: float = 0.9,
        pivot_x: float = 0.0,
        pager_factory: Callable[[int], Pager] | None = None,
        registry: MetricsRegistry | None = None,
        columnar: bool | None = None,
        fanout: str = "thread",
    ) -> "ShardedDualIndex":
        """Partition ``relation`` into ``shards`` sub-relations by tuple
        id and build one full planner per shard (each with its own
        pager unless ``pager_factory`` supplies them). ``workers`` is
        forwarded to every shard's parallel build path, ``columnar`` to
        every shard's B+-tree forest (default: the process-wide
        :func:`repro.btree.columnar_default`).
        """
        if shards < 1:
            raise IndexError_("shards must be >= 1")
        slope_set = slopes if isinstance(slopes, SlopeSet) else SlopeSet(slopes)
        parts: list[list[int]] = [[] for _ in range(shards)]
        for tid, _t in relation:
            parts[shard_of(tid, shards)].append(tid)
        planners = []
        with obs.span("build.sharded", shards=shards, workers=workers):
            for n, ids in enumerate(parts):
                sub = relation.subset(ids, name=f"{relation.name}[{n}]")
                pager = pager_factory(n) if pager_factory is not None else None
                planners.append(
                    DualIndexPlanner.build(
                        sub,
                        slope_set,
                        pager=pager,
                        key_bytes=key_bytes,
                        technique=technique,
                        fill=fill,
                        pivot_x=pivot_x,
                        workers=workers,
                        name=f"shard{n}",
                        columnar=columnar,
                    )
                )
        return cls(planners, registry=registry, fanout=fanout)

    # ------------------------------------------------------------------
    # facade properties
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self.planners)

    @property
    def size(self) -> int:
        """Indexed tuples across all shards."""
        return sum(p.index.size for p in self.planners)

    @property
    def skipped(self) -> list[int]:
        """Unsatisfiable tuple ids skipped at build, across all shards."""
        out: list[int] = []
        for p in self.planners:
            out.extend(p.index.skipped)
        return sorted(out)

    @property
    def version(self) -> int:
        """Aggregate structure version (sum of shard versions): any
        shard mutation changes it, so caches keyed on it invalidate."""
        return sum(p.index.version for p in self.planners)

    def space(self) -> IndexSpace:
        """Summed page breakdown across all shards."""
        tree = directory = heap = 0
        for p in self.planners:
            s = p.index.space()
            tree += s.tree_pages
            directory += s.directory_pages
            heap += s.heap_pages
        return IndexSpace(tree, directory, heap)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, query: HalfPlaneQuery, refresh: bool = True) -> QueryResult:
        """Fan one query out to every shard and merge (union of ids,
        summed accounting). The answer is bit-identical to the
        unsharded planner's on the same relation."""
        slopelog.record(query.slope_2d, query.query_type)
        with obs.span("shard.fanout", shards=self.shards,
                      type=query.query_type, **_trace_meta()):
            obs.incr("shard_fanout.queries")
            partials = self._fanout(
                lambda p: p.query(query, refresh=refresh)
            )
        self._record_partials(partials)
        self._drain_shard_metrics()
        return _merge_query_results(partials)

    def query_batch(self, queries: Sequence[HalfPlaneQuery]) -> BatchResult:
        """Fan a whole batch out to per-shard batch executors and merge
        per-position results plus batch-scope accounting."""
        queries = list(queries)
        for q in queries:
            slopelog.record(q.slope_2d, q.query_type)
        if (
            self.fanout == "process"
            and self.shards > 1
            and obs.current() is None
            and not any(p.index.dynamic for p in self.planners)
        ):
            merged = self._query_batch_processes(queries)
            if merged is not None:
                return merged
        with obs.span("shard.fanout_batch", shards=self.shards,
                      queries=len(queries), **_trace_meta()):
            obs.incr("shard_fanout.batches")
            obs.incr("shard_fanout.queries", len(queries))
            parts = self._fanout_executors(queries)
        merged = BatchResult(results=[])
        for position in range(len(queries)):
            merged.results.append(
                _merge_query_results([p.results[position] for p in parts])
            )
        for part in parts:
            _add_io(merged.io, part.io)
            merged.cache_hits += part.cache_hits
            merged.cache_misses += part.cache_misses
            merged.exact_groups += part.exact_groups
            merged.vector_groups += part.vector_groups
            merged.sweep_leaves += part.sweep_leaves
            merged.refinement_pages += part.refinement_pages
        self.registry.counter(
            "shard_fanout_batches", "Batches fanned out across shards"
        ).inc()
        self.registry.counter(
            "shard_fanout_queries", "Queries answered by shard fan-out"
        ).inc(len(queries) * self.shards)
        for i, part in enumerate(parts):
            self._record_shard_work(
                i, part.page_accesses,
                sum(res.answer_count for res in part.results),
            )
        self._drain_shard_metrics()
        return merged

    def exist(
        self, slope: float, intercept: float, theta: Theta | str = ">="
    ) -> QueryResult:
        """EXIST selection across all shards."""
        return self.query(HalfPlaneQuery(EXIST, slope, intercept, theta))

    def all(
        self, slope: float, intercept: float, theta: Theta | str = ">="
    ) -> QueryResult:
        """ALL selection across all shards."""
        return self.query(HalfPlaneQuery(ALL, slope, intercept, theta))

    # ------------------------------------------------------------------
    # updates (routed to the owning shard)
    # ------------------------------------------------------------------
    def insert(self, tid: int, t: GeneralizedTuple) -> None:
        """Insert into the shard owning ``tid`` (dynamic shards only)."""
        self.planners[shard_of(tid, self.shards)].insert(tid, t)

    def delete(self, tid: int) -> None:
        """Delete from the shard owning ``tid`` (dynamic shards only)."""
        self.planners[shard_of(tid, self.shards)].delete(tid)

    # ------------------------------------------------------------------
    # process fan-out (fork + copy-on-write shards)
    # ------------------------------------------------------------------
    def _query_batch_processes(
        self, queries: list[HalfPlaneQuery]
    ) -> BatchResult | None:
        """Ship the batch to one forked worker per shard; ``None`` means
        process fan-out is unavailable (caller falls back to threads)."""
        from repro.shard import procfan

        pool = self._process_pool()
        if pool is None:
            return None
        # The forked workers cannot see this process's request-context
        # global, so the active trace context (if any) crosses the
        # boundary as an explicit payload and each worker re-installs it.
        trace_payload = tracer.payload()
        try:
            futures = [
                pool.submit(procfan.worker_batch, self._proc_key, n, queries,
                            trace_payload)
                for n in range(self.shards)
            ]
            parts = [f.result() for f in futures]
        except (OSError, BrokenProcessPool, PicklingError):
            # A worker died (or the payload would not cross the process
            # boundary): permanently drop to the threaded fan-out.
            self._shutdown_process_pool()
            self.fanout = "thread"
            return None
        merged = _merge_partials(parts, len(queries))
        self.registry.counter(
            "shard_fanout_batches", "Batches fanned out across shards"
        ).inc()
        self.registry.counter(
            "shard_fanout_queries", "Queries answered by shard fan-out"
        ).inc(len(queries) * self.shards)
        for i, part in enumerate(parts):
            answers = int(part.offsets[-1]) + sum(
                len(e) for e in part.extras if e
            )
            self._record_shard_work(
                i,
                part.io.logical_reads + part.io.logical_writes,
                answers,
            )
        self._drain_shard_metrics()
        return merged

    def _process_pool(self):
        """The forked worker pool for the current index version (re-forked
        after any shard mutation so workers see current state)."""
        from repro.shard import procfan

        version = self.version
        if self._proc_pool is not None and self._proc_version == version:
            return self._proc_pool
        self._shutdown_process_pool()
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            self.fanout = "thread"
            return None
        self._proc_key = procfan.register(self.planners)
        try:
            pool = ProcessPoolExecutor(
                max_workers=self.shards, mp_context=context
            )
            # Force the fork now, while the registration is current.
            for _ in pool.map(_noop, range(self.shards)):
                pass
        except (OSError, BrokenProcessPool):  # pragma: no cover - no fork
            procfan.unregister(self._proc_key)
            self._proc_key = None
            self.fanout = "thread"
            return None
        self._proc_pool = pool
        self._proc_version = version
        return pool

    def _shutdown_process_pool(self) -> None:
        from repro.shard import procfan

        if self._proc_pool is not None:
            self._proc_pool.shutdown(wait=False, cancel_futures=True)
            self._proc_pool = None
        if self._proc_key is not None:
            procfan.unregister(self._proc_key)
            self._proc_key = None
        self._proc_version = None

    # ------------------------------------------------------------------
    # fan-out machinery
    # ------------------------------------------------------------------
    def _fanout(self, fn):
        """Apply ``fn`` to every shard planner, threaded when safe.

        Sequential when a trace is active (the recorder binds one pager
        and is not thread-safe) or with a single shard.
        """
        if self.shards == 1 or obs.current() is not None:
            return [fn(p) for p in self.planners]
        return list(self._thread_pool().map(fn, self.planners))

    def _fanout_executors(self, queries) -> list[BatchResult]:
        executors = self._shard_executors()
        if self.shards == 1 or obs.current() is not None:
            return [ex.execute(queries) for ex in executors]
        return list(
            self._thread_pool().map(lambda ex: ex.execute(queries), executors)
        )

    def _shard_executors(self) -> list[BatchExecutor]:
        if self._executors is None:
            self._executors = [
                BatchExecutor(p, registry=reg)
                for p, reg in zip(self.planners, self._shard_registries)
            ]
        return self._executors

    # ------------------------------------------------------------------
    # per-shard metric aggregation
    # ------------------------------------------------------------------
    def _record_partials(self, partials: Sequence[QueryResult]) -> None:
        """Record one fan-out's per-shard work (``partials`` is aligned
        with :attr:`planners`) into the shard-local registries."""
        for i, part in enumerate(partials):
            self._record_shard_work(i, part.page_accesses, part.answer_count)

    def _record_shard_work(self, shard: int, pages: int, results: int) -> None:
        reg = self._shard_registries[shard]
        reg.counter("pages", "Page accesses on this shard").inc(pages)
        reg.counter("results", "Answer tuples from this shard").inc(results)

    def _drain_shard_metrics(self) -> None:
        """Merge shard-local registries into the facade's registry.

        Each shard's families are drained (snapshot + reset), prefixed
        with ``shard_`` and labeled ``shard=i`` — so the executor's
        ``exec_batches`` surfaces as ``shard_exec_batches{shard=i}`` and
        the facade's own recording as ``shard_pages{shard=i}`` /
        ``shard_results{shard=i}``. The prefix keeps relabeled families
        from colliding with the identically named unlabeled globals
        under the registry's strict registration rules.
        """
        for i, reg in enumerate(self._shard_registries):
            snap = reg.snapshot()
            if not snap.families:
                continue
            reg.reset()
            self.registry.absorb(
                snap.with_labels(prefix="shard_", shard=str(i))
            )

    def _thread_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.shards, thread_name_prefix="shard"
                )
            return self._pool

    def close(self) -> None:
        """Shut down the fan-out pools (idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            self._shutdown_process_pool()

    def __repr__(self) -> str:
        return (
            f"<ShardedDualIndex shards={self.shards} size={self.size} "
            f"slopes={len(self.planners[0].index.slopes)}>"
        )


def _noop(_n: int) -> None:
    """Worker warm-up task; its only job is to force the fork."""
    return None


def _trace_meta() -> dict:
    """Span meta carrying the active request trace id (usually empty)."""
    ctx = tracer.context()
    return {"trace": ctx.trace_id} if ctx is not None else {}


def _merge_partials(parts, n_queries: int) -> BatchResult:
    """Assemble the facade's :class:`BatchResult` from per-shard
    :class:`~repro.exec.partials.ShardPartials` columns.

    Per-query answer sets stay lazy: each merged result holds one
    zero-copy tid-column view per shard (disjoint by construction), so
    the merge is O(shards) slicing per query — no set unions, no
    concatenations — and a Python set only exists if a caller reads
    ``ids``.
    """
    from repro.exec.partials import TECH_NAMES

    merged = BatchResult(results=[None] * n_queries)  # type: ignore[list-item]
    if not parts:
        return merged
    candidates = sum(p.candidates for p in parts)
    false_hits = sum(p.false_hits for p in parts)
    accepted = sum(p.accepted_without_refinement for p in parts)
    refinement_q = sum(p.refinement_pages_q for p in parts)
    technique = parts[0].technique
    for j in range(n_queries):
        result = QueryResult(technique=TECH_NAMES[technique[j]])
        extra: set[int] | None = None
        for p in parts:
            part_extra = p.extras[j]
            if part_extra:
                extra = set(part_extra) if extra is None else extra | part_extra
        result.set_lazy_ids([p.tid_column(j) for p in parts], extra)
        result.candidates = int(candidates[j])
        result.false_hits = int(false_hits[j])
        result.accepted_without_refinement = int(accepted[j])
        result.refinement_pages = int(refinement_q[j])
        merged.results[j] = result
    for p in parts:
        _add_io(merged.io, p.io)
        merged.cache_hits += p.cache_hits
        merged.cache_misses += p.cache_misses
        merged.exact_groups += p.exact_groups
        merged.vector_groups += p.vector_groups
        merged.sweep_leaves += p.sweep_leaves
        merged.refinement_pages += p.refinement_pages
    return merged


def _merge_query_results(partials: Sequence[QueryResult]) -> QueryResult:
    """Union the answer sets of disjoint shards; sum the diagnostics.

    When every partial still holds its answer as lazy tid columns (the
    columnar batch path), the merge stays columnar: shard answers are
    disjoint, so the union is one array concatenation and the merged
    result materialises a Python set only if a caller reads ``ids``.
    """
    merged = QueryResult(technique=partials[0].technique)
    merged.cached = all(p.cached for p in partials)
    columns = [part.lazy_id_columns() for part in partials]
    if all(cols is not None for cols in columns):
        arrays = [tids for tids, _extra in columns]
        extra: set[int] = set()
        for _tids, part_extra in columns:
            if part_extra:
                extra |= part_extra
        merged.set_lazy_ids(
            arrays[0] if len(arrays) == 1 else np.concatenate(arrays),
            extra or None,
        )
    else:
        for part in partials:
            merged.ids |= part.ids
    for part in partials:
        merged.candidates += part.candidates
        merged.false_hits += part.false_hits
        merged.duplicates += part.duplicates
        merged.accepted_without_refinement += part.accepted_without_refinement
        merged.refinement_pages += part.refinement_pages
        _add_io(merged.io, part.io)
    return merged
