"""Vectorized and process-parallel :class:`EntryKeys` computation.

The build-time bottleneck of :class:`~repro.core.dual_index.DualIndex`
is key derivation: for every tuple, ``TOP``/``BOT`` at each of the k
slopes plus strip-assignment keys toward each neighbour — all scalar
support calls in :meth:`DualIndex.compute_keys`. The dual transform is a
bulk-friendly operation, so this module computes the same keys two
better ways:

* :func:`compute_keys_batch` evaluates *all* tuples at one slope per
  numpy pass via :class:`~repro.geometry.vectorized.DualSurface` — the
  2k-1 distinct probe slopes (k tree slopes + k-1 strip midpoints)
  replace ``O(k · n)`` scalar support calls.
* :func:`parallel_compute_keys` chunks the relation across a
  ``ProcessPoolExecutor``; each worker runs the vectorized batch on its
  chunk and the parent merges the per-chunk key maps.

Exactness: ``DualSurface`` values are bit-identical to the scalar
``dual.top``/``dual.bot`` (vertex-free tuples fall back to the scalar
engine inside the surface), and the assignment keys are the same
``max``/``min`` of the same endpoint values — so both paths stage keys
bit-identical to the serial scalar build, and the resulting index
layout is byte-identical.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Mapping

from repro.constraints.tuples import GeneralizedTuple
from repro.core.dual_index import _SIDES, EntryKeys
from repro.core.slope_set import SlopeSet
from repro.geometry.vectorized import DualSurface
from repro.obs import trace as obs
from repro.obs.metrics import MetricsRegistry, RegistrySnapshot, get_registry

#: Below this many tuples a process pool costs more than it saves
#: (pool spawn + pickling the chunks); the serial vectorized path runs.
MIN_PARALLEL_TUPLES = 64


def needed_slopes(slopes: SlopeSet) -> list[float]:
    """Every slope the key derivation probes: the k tree slopes followed
    by each distinct strip midpoint toward a neighbour (k-1 of them)."""
    out: list[float] = list(slopes)
    seen = set(out)
    for i in range(len(slopes)):
        for side in _SIDES:
            strip = slopes.strip(i, side)
            if strip is not None and strip[1] not in seen:
                seen.add(strip[1])
                out.append(strip[1])
    return out


def compute_keys_batch(
    items: Iterable[tuple[int, GeneralizedTuple]],
    slopes: SlopeSet,
) -> dict[int, EntryKeys | None]:
    """:class:`EntryKeys` for many tuples, one vectorized pass per slope.

    Returns ``tid -> EntryKeys`` with ``None`` marking unsatisfiable
    tuples (the build skips those). Values are bit-identical to
    :meth:`DualIndex.compute_keys` per tuple.
    """
    result: dict[int, EntryKeys | None] = {}
    sat: list[tuple[int, GeneralizedTuple]] = []
    for tid, t in items:
        if t.is_satisfiable():
            sat.append((tid, t))
        else:
            result[tid] = None
    if not sat:
        return result
    surface = DualSurface.from_items(sat)
    probe = needed_slopes(slopes)
    tops = {s: surface.top_at(s) for s in probe}
    bots = {s: surface.bot_at(s) for s in probe}
    strips = [
        {side: slopes.strip(i, side) for side in _SIDES}
        for i in range(len(slopes))
    ]
    for row, (tid, _t) in enumerate(sat):
        top = [float(tops[s][row]) for s in slopes]
        bot = [float(bots[s][row]) for s in slopes]
        assign_top: list[dict[str, float | None]] = []
        assign_bot: list[dict[str, float | None]] = []
        for per_side in strips:
            at: dict[str, float | None] = {}
            ab: dict[str, float | None] = {}
            for side, strip in per_side.items():
                if strip is None:
                    at[side] = None
                    ab[side] = None
                else:
                    a, b = strip
                    # strip_top_max/strip_bot_min: the extremum over the
                    # strip is attained at an endpoint (TOP convex, BOT
                    # concave), so max/min of the two probed values.
                    at[side] = max(float(tops[a][row]), float(tops[b][row]))
                    ab[side] = min(float(bots[a][row]), float(bots[b][row]))
            assign_top.append(at)
            assign_bot.append(ab)
        result[tid] = EntryKeys(top, bot, assign_top, assign_bot)
    return result


def _compute_chunk(
    payload: tuple[list[tuple[int, GeneralizedTuple]], SlopeSet],
) -> tuple[dict[int, EntryKeys | None], "RegistrySnapshot"]:
    """Process-pool worker: vectorized keys for one chunk.

    Returns the keys plus a :class:`RegistrySnapshot` of the worker's
    private registry (snapshots are plain data, so they pickle back
    across the pool boundary); the parent relabels it ``worker=j`` and
    absorbs it into the global registry.
    """
    import time

    items, slopes = payload
    registry = MetricsRegistry()
    start = time.perf_counter()
    keys = compute_keys_batch(items, slopes)
    registry.counter("tuples", "Tuples keyed by this build worker").inc(
        len(items)
    )
    registry.counter("chunks", "Chunks processed by this build worker").inc()
    registry.histogram(
        "seconds",
        "Per-chunk key-computation wall time in this build worker",
        buckets=(0.01, 0.1, 1.0, 10.0),
    ).observe(time.perf_counter() - start)
    return keys, registry.snapshot()


def parallel_compute_keys(
    relation: Iterable[tuple[int, GeneralizedTuple]],
    slopes: SlopeSet,
    workers: int,
    use_pool: bool | None = None,
) -> Mapping[int, EntryKeys | None]:
    """Chunk a relation across a process pool; each worker vectorizes.

    ``workers <= 1`` (or a tiny relation) short-circuits to the serial
    vectorized batch, as does a single-CPU host — there, forking and
    pickling chunks costs wall time without buying any concurrency, so
    the serial vectorized pass is strictly faster (``use_pool=True``
    forces the pool anyway, for tests; ``use_pool=False`` forbids it).
    Pool failures — fork or semaphores unavailable in a locked-down
    environment — also fall back serially; every path computes
    identical keys, so only throughput changes.
    """
    items = list(relation)
    workers = max(1, int(workers))
    if use_pool is None:
        use_pool = (os.cpu_count() or 1) > 1
    if workers == 1 or len(items) < MIN_PARALLEL_TUPLES or not use_pool:
        return compute_keys_batch(items, slopes)
    per = -(-len(items) // workers)
    chunks = [items[j : j + per] for j in range(0, len(items), per)]
    with obs.span(
        "build.parallel_keys", workers=workers, chunks=len(chunks)
    ):
        obs.incr("build_parallel.tuples", len(items))
        obs.incr("build_parallel.chunks", len(chunks))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                parts = list(
                    pool.map(_compute_chunk, [(c, slopes) for c in chunks])
                )
        except (OSError, BrokenProcessPool):
            obs.incr("build_parallel.fallbacks")
            return compute_keys_batch(items, slopes)
    merged: dict[int, EntryKeys | None] = {}
    registry = get_registry()
    for j, (part, snap) in enumerate(parts):
        merged.update(part)
        registry.absorb(
            snap.with_labels(prefix="build_worker_", worker=str(j))
        )
    return merged
