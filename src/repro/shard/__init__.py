"""Sharding and parallel-build subsystem.

* :mod:`repro.shard.keys` — vectorized + process-parallel
  :class:`EntryKeys` computation for the bulk build path.
* :mod:`repro.shard.sharded` — :class:`ShardedDualIndex`, N independent
  shards behind one planner-like facade with threaded query fan-out.
"""

from repro.shard.keys import (
    compute_keys_batch,
    needed_slopes,
    parallel_compute_keys,
)
from repro.shard.sharded import ShardedDualIndex, shard_of

__all__ = [
    "ShardedDualIndex",
    "compute_keys_batch",
    "needed_slopes",
    "parallel_compute_keys",
    "shard_of",
]
