"""The batch query execution engine.

Answering ``n`` half-plane selections one at a time costs ``n`` descents,
``n`` sweeps and up to ``n`` refinement fetches of the same heap pages.
:class:`BatchExecutor` answers the same batch with shared work:

* queries on a restricted slope are grouped by ``(slope index, type, θ)``
  — one group is one B+-tree and one sweep direction (Section 3), so the
  whole group is served by a *single* descent plus one merged range sweep
  (:meth:`repro.btree.tree.BPlusTree.sweep_up_multi`);
* boundary candidates of *all* exact groups are refined against one
  shared heap fetch (each distinct page read once per batch, pinned in
  the buffer pool while in use);
* queries on any other slope are answered from the vectorized dual
  surface (:class:`repro.geometry.vectorized.DualSurface`) — one numpy
  pass over the dual representation per distinct slope, not one
  tree traversal per query;
* identical queries hit an LRU result cache
  (:class:`repro.exec.cache.QueryResultCache`), invalidated whenever the
  index version changes.

Every answer set is identical to what :meth:`DualIndexPlanner.query`
returns sequentially (itself oracle-exact); only the page-access bill
changes. Batch I/O is accounted at batch scope (``BatchResult.io``)
because the whole point is that pages are *shared* between queries —
per-query ``QueryResult.io`` is left zero in batch mode.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

import numpy as np

from repro.constraints.tuples import GeneralizedTuple
from repro.core.query import ALL, HalfPlaneQuery, QueryResult
from repro.errors import QueryError
from repro.exec.cache import CacheKey, QueryResultCache, cache_key
from repro.exec.grouping import ExactGroup, VectorGroup, group_queries
from repro.geometry.predicates import all_halfplane, exist_halfplane
from repro.geometry.vectorized import DualSurface
from repro.obs import slopelog
from repro.obs import trace as obs
from repro.obs import tracer
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.storage.heap import rid_pages, unpack_rid
from repro.storage.serialize import decode_tuple
from repro.storage.stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.planner import DualIndexPlanner

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass
class BatchResult:
    """All answers of one batch plus the shared execution accounting."""

    #: Per-query results, aligned with the input query list.
    results: list[QueryResult] = field(default_factory=list)
    #: Page accounting for the *whole* batch (shared work included once).
    io: IOStats = field(default_factory=IOStats)
    cache_hits: int = 0
    cache_misses: int = 0
    exact_groups: int = 0
    vector_groups: int = 0
    #: Leaf pages visited by the merged sweeps.
    sweep_leaves: int = 0
    #: Distinct heap pages fetched by the shared refinement step.
    refinement_pages: int = 0

    @property
    def page_accesses(self) -> int:
        """Total pages the batch touched."""
        return self.io.logical_reads + self.io.logical_writes

    def __len__(self) -> int:
        return len(self.results)

    def __repr__(self) -> str:
        return (
            f"<BatchResult queries={len(self.results)} "
            f"pages={self.page_accesses} cache_hits={self.cache_hits} "
            f"groups={self.exact_groups}+{self.vector_groups}>"
        )


class BatchExecutor:
    """Executes batches of half-plane queries against one planner.

    Parameters
    ----------
    planner:
        The :class:`~repro.core.planner.DualIndexPlanner` whose index the
        batch runs against. Answers always equal ``planner.query``'s.
    cache_size:
        LRU result-cache capacity (0 disables caching).
    max_workers:
        When > 1, independent slope groups are processed by a thread
        pool. The storage stack is not thread-safe, so pager-touching
        sections run under one lock; only the in-memory classify/verify
        work actually overlaps. Defaults to 0 (fully sequential), which
        is also the deterministic mode the benchmarks use.
    registry:
        Metrics registry for cache/batch counters; defaults to the
        process-wide one.

    Example::

        >>> from repro import DualIndexPlanner, GeneralizedRelation, parse_tuple
        >>> from repro.core.query import HalfPlaneQuery
        >>> from repro.exec import BatchExecutor
        >>> r = GeneralizedRelation([parse_tuple("y >= x and y <= 4 and x >= 0")])
        >>> planner = DualIndexPlanner.build(r, slopes=[-1.0, 0.0, 1.0])
        >>> batch = BatchExecutor(planner).execute(
        ...     [HalfPlaneQuery("EXIST", 0.0, 2.0, ">="),
        ...      HalfPlaneQuery("EXIST", 0.0, 2.0, ">=")]
        ... )
        >>> [sorted(res.ids) for res in batch.results]
        [[0], [0]]
        >>> batch.cache_hits   # the duplicate was not re-executed
        1
    """

    def __init__(
        self,
        planner: "DualIndexPlanner",
        cache_size: int = 256,
        max_workers: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.planner = planner
        self.index = planner.index
        self.cache = QueryResultCache(cache_size)
        self.max_workers = max_workers
        self.registry = registry if registry is not None else get_registry()
        self._io_lock = threading.Lock()
        self._surface: DualSurface | None = None
        self._surface_version: int | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, queries: Sequence[HalfPlaneQuery]) -> BatchResult:
        """Answer every query in the batch; results align with inputs."""
        log_slopes = self.planner.slope_logging
        for query in queries:
            if query.dimension != 2:
                raise QueryError("BatchExecutor is 2-D; use DDimPlanner")
            if log_slopes:
                slopelog.record(query.slope_2d, query.query_type)
        if self.planner.index.dynamic and self.planner._has_dirty_leaves():
            with obs.span("maintain", pager=self.index.pager):
                self.index.refresh_handicaps()
        version = self.index.version
        batch = BatchResult(results=[None] * len(queries))  # type: ignore[list-item]
        hits0, misses0 = self.cache.hits, self.cache.misses
        with obs.span("batch", pager=self.index.pager,
                      index=self.index.name, queries=len(queries),
                      **_trace_meta()):
            with self.index.pager.measure() as scope:
                self._execute(list(queries), version, batch)
            batch.io = scope.delta
        batch.cache_hits = self.cache.hits - hits0
        batch.cache_misses = self.cache.misses - misses0
        self._record_metrics(batch)
        return batch

    # ------------------------------------------------------------------
    # batch pipeline
    # ------------------------------------------------------------------
    def _execute(
        self,
        queries: list[HalfPlaneQuery],
        version: int,
        batch: BatchResult,
    ) -> None:
        # 1. Resolve cache hits and intra-batch duplicates. The first
        # occurrence of each distinct query executes; later occurrences
        # are hits on the result being computed.
        pending: dict[CacheKey, list[int]] = {}
        fresh: list[tuple[int, HalfPlaneQuery]] = []
        for position, query in enumerate(queries):
            key = cache_key(query)
            if key in pending:
                self.cache.hits += 1
                pending[key].append(position)
                continue
            cached = self.cache.get(query, version)
            if cached is not None:
                batch.results[position] = _clone_cached(cached)
                continue
            pending[key] = [position]
            fresh.append((position, query))

        # 2. Group the fresh queries by shared work.
        exact_groups, vector_groups = group_queries(
            fresh, self.index.slopes, _slope_tol()
        )
        batch.exact_groups = len(exact_groups)
        batch.vector_groups = len(vector_groups)

        # 3. One merged sweep per exact group (fan-out optional).
        sweeps = self._map_groups(self._sweep_group, exact_groups)

        # 4. One shared refinement fetch for every boundary candidate of
        # every exact group, pages pinned while the verify loop runs.
        boundary_rids: set[int] = set()
        for _leaves, partials in sweeps:
            for _position, _query, _accepted, boundary in partials:
                if isinstance(boundary, np.ndarray):
                    boundary_rids.update(boundary.tolist())
                else:
                    boundary_rids.update(boundary)
        decoded = self._fetch_boundary(boundary_rids, batch)

        # 5. Per-query verify + assemble, exactly the sequential
        # refinement predicate on exactly the sequential boundary set.
        for leaves, partials in sweeps:
            batch.sweep_leaves += leaves
            for position, query, accepted, boundary in partials:
                result = self._assemble_exact(query, accepted, boundary, decoded)
                batch.results[position] = result

        # 6. Vectorized path: one dual-surface pass per distinct slope.
        for group in vector_groups:
            surface = self._surface_for(version)
            for position, query in zip(group.indices, group.queries):
                result = QueryResult(technique="vector")
                result.set_lazy_ids(
                    surface.answer_tids(
                        query.query_type,
                        query.slope_2d,
                        query.intercept,
                        query.theta,
                    )
                )
                result.candidates = len(surface)
                batch.results[position] = result

        # 7. Publish to the cache and materialise duplicates.
        for key, positions in pending.items():
            first = batch.results[positions[0]]
            assert first is not None
            self.cache.put(queries[positions[0]], first, version)
            for position in positions[1:]:
                batch.results[position] = _clone_cached(first)

    def execute_partials(self, queries: Sequence[HalfPlaneQuery]) -> "ShardPartials":
        """Answer a batch as compact :class:`ShardPartials` columns.

        Same grouping, sweeps, refinement and answers as
        :meth:`execute`, but per-query results stay numpy columns — no
        :class:`QueryResult` objects, no result cache. This is the lean
        path the process fan-out workers run: on a fanned-out batch the
        per-query Python assembly would otherwise be repeated on every
        shard, and it is exactly the cost that does not shrink with the
        shard count. Duplicate queries inside the batch are deduplicated
        the same way :meth:`execute` does, so page accounting matches
        the threaded fan-out bit for bit.
        """
        from repro.exec.partials import ShardPartials

        for query in queries:
            if query.dimension != 2:
                raise QueryError("BatchExecutor is 2-D; use DDimPlanner")
        if self.planner.index.dynamic and self.planner._has_dirty_leaves():
            with obs.span("maintain", pager=self.index.pager):
                self.index.refresh_handicaps()
        version = self.index.version
        queries = list(queries)
        n = len(queries)
        out = ShardPartials(
            extras=[None] * n,
            technique=np.zeros(n, dtype=np.uint8),
            candidates=np.zeros(n, dtype=np.int64),
            false_hits=np.zeros(n, dtype=np.int64),
            accepted_without_refinement=np.zeros(n, dtype=np.int64),
            refinement_pages_q=np.zeros(n, dtype=np.int64),
        )
        columns: list = [None] * n
        with obs.span("batch", pager=self.index.pager,
                      index=self.index.name, queries=n,
                      **_trace_meta()):
            with self.index.pager.measure() as scope:
                self._execute_partials(queries, version, out, columns)
            out.io = scope.delta
        sizes = np.fromiter(
            (c.size for c in columns), dtype=np.int64, count=n
        )
        out.offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(sizes, out=out.offsets[1:])
        out.tids = (
            np.concatenate(columns) if n else np.empty(0, dtype=np.int64)
        )
        return out

    def _execute_partials(
        self,
        queries: list[HalfPlaneQuery],
        version: int,
        out: "ShardPartials",
        columns: list,
    ) -> None:
        from repro.exec.partials import TECH_VECTOR

        empty = np.empty(0, dtype=np.int64)
        # 1. Intra-batch duplicates execute once (same dedup as
        # `_execute`, so sweeps and page accounting are identical); the
        # result cache is not consulted — fan-out workers answer cold.
        pending: dict[CacheKey, list[int]] = {}
        fresh: list[tuple[int, HalfPlaneQuery]] = []
        for position, query in enumerate(queries):
            key = cache_key(query)
            if key in pending:
                out.cache_hits += 1
                pending[key].append(position)
                continue
            out.cache_misses += 1
            pending[key] = [position]
            fresh.append((position, query))

        exact_groups, vector_groups = group_queries(
            fresh, self.index.slopes, _slope_tol()
        )
        out.exact_groups = len(exact_groups)
        out.vector_groups = len(vector_groups)

        sweeps = self._map_groups(self._sweep_group, exact_groups)
        boundary_rids: set[int] = set()
        for _leaves, partials in sweeps:
            for _position, _query, _accepted, boundary in partials:
                if isinstance(boundary, np.ndarray):
                    boundary_rids.update(boundary.tolist())
                else:
                    boundary_rids.update(boundary)
        scratch = BatchResult()
        decoded = self._fetch_boundary(boundary_rids, scratch)
        out.refinement_pages = scratch.refinement_pages

        scratch_result = QueryResult()
        for leaves, partials in sweeps:
            out.sweep_leaves += leaves
            for position, query, accepted, boundary in partials:
                out.candidates[position] = len(accepted) + len(boundary)
                out.accepted_without_refinement[position] = len(accepted)
                if isinstance(accepted, np.ndarray):
                    columns[position] = self.index.tids_for_rids(accepted)
                    boundary_list = boundary.tolist()
                    if boundary_list:
                        out.refinement_pages_q[position] = int(
                            rid_pages(boundary).size
                        )
                else:
                    # Scalar-path partials are Python sets: the tids ride
                    # in the extras set, the array column stays empty.
                    tid_of = self.index.tid_of
                    out.extras[position] = {tid_of[rid] for rid in accepted}
                    columns[position] = empty
                    boundary_list = boundary
                    out.refinement_pages_q[position] = len(
                        {unpack_rid(rid)[0] for rid in boundary}
                    )
                if boundary_list:
                    scratch_result.false_hits = 0
                    confirmed = self._verify_boundary(
                        query, boundary_list, decoded, scratch_result
                    )
                    out.false_hits[position] = scratch_result.false_hits
                    if confirmed:
                        if out.extras[position] is None:
                            out.extras[position] = confirmed
                        else:
                            out.extras[position] |= confirmed

        for group in vector_groups:
            surface = self._surface_for(version)
            for position, query in zip(group.indices, group.queries):
                out.technique[position] = TECH_VECTOR
                columns[position] = surface.answer_tids(
                    query.query_type,
                    query.slope_2d,
                    query.intercept,
                    query.theta,
                )
                out.candidates[position] = len(surface)

        # Duplicate positions share the first occurrence's columns.
        for positions in pending.values():
            first = positions[0]
            for position in positions[1:]:
                columns[position] = columns[first]
                out.extras[position] = out.extras[first]
                out.technique[position] = out.technique[first]
                out.candidates[position] = out.candidates[first]
                out.false_hits[position] = out.false_hits[first]
                out.accepted_without_refinement[position] = (
                    out.accepted_without_refinement[first]
                )
                out.refinement_pages_q[position] = (
                    out.refinement_pages_q[first]
                )

    # ------------------------------------------------------------------
    # exact groups
    # ------------------------------------------------------------------
    def _sweep_group(
        self, group: ExactGroup
    ) -> tuple[int, list[tuple[int, HalfPlaneQuery, set[int], set[int]]]]:
        """One shared descent + merged sweep; classify entries per query.

        Returns ``(leaf pages swept, partials)`` where each partial is
        ``(original position, query, accepted rids, boundary rids)`` —
        the same two candidate sets the sequential exact path builds
        with its own sweep (same quantized start and accept boundaries).
        On the columnar path accepted/boundary are int64 numpy arrays
        (one ``np.searchsorted`` split per query over the shared sweep);
        on the scalar path they are Python sets built entry by entry.
        """
        theta = group.queries[0].theta
        trees, upward = self.index.trees_for(group.query_type, theta)
        tree = trees[group.slope_index]
        margins = [self.index.margin(q.intercept) for q in group.queries]
        if upward:
            starts = [
                q.intercept - m for q, m in zip(group.queries, margins)
            ]
            accepts = [
                tree.quantize(q.intercept + m)
                for q, m in zip(group.queries, margins)
            ]
        else:
            starts = [
                q.intercept + m for q, m in zip(group.queries, margins)
            ]
            accepts = [
                tree.quantize(q.intercept - m)
                for q, m in zip(group.queries, margins)
            ]
        path = "columnar" if tree.columnar else "scalar"
        with self._io_lock, obs.span(
            "sweep.batch", tree=tree.name, queries=len(group), path=path
        ):
            sweep = (
                tree.sweep_up_multi(starts)
                if upward
                else tree.sweep_down_multi(starts)
            )
        if tree.columnar:
            return sweep.leaves, self._classify_columnar(
                group, sweep, accepts, upward
            )
        partials = []
        for j, (position, query) in enumerate(
            zip(group.indices, group.queries)
        ):
            keys, rids = sweep.entries_for(j)
            accepted: set[int] = set()
            boundary: set[int] = set()
            accept_key = accepts[j]
            if upward:
                for key, rid in zip(keys, rids):
                    if key >= accept_key:
                        accepted.add(rid)
                    else:
                        boundary.add(rid)
            else:
                for key, rid in zip(keys, rids):
                    if key <= accept_key:
                        accepted.add(rid)
                    else:
                        boundary.add(rid)
            partials.append((position, query, accepted, boundary))
        return sweep.leaves, partials

    def _classify_columnar(self, group, sweep, accepts, upward):
        """Array split of one merged sweep into per-query partials.

        A query's entries are the suffix ``keys[offsets[j]:]``; the
        accept boundary lands at one ``searchsorted`` index, so accepted
        is ``rids[split:]`` and boundary ``rids[offsets[j]:split]`` —
        the same membership the scalar per-entry loop produces (the
        sweep keys are sorted toward the accept region in both
        directions).
        """
        keys, rids = sweep.arrays()
        # Ascending comparison space: up-sweeps accept keys >= accept,
        # down-sweeps (descending keys) accept keys <= accept.
        base = keys if upward else -keys
        probes = np.asarray(accepts, dtype=np.float64)
        if not upward:
            probes = -probes
        splits = np.searchsorted(base, probes, side="left")
        partials = []
        for j, (position, query) in enumerate(
            zip(group.indices, group.queries)
        ):
            at = sweep.offsets[j]
            split = max(at, int(splits[j]))
            partials.append(
                (position, query, rids[split:], rids[at:split])
            )
        return partials

    def _fetch_boundary(
        self, boundary_rids: set[int], batch: BatchResult
    ) -> dict[int, tuple[int, GeneralizedTuple]]:
        """Fetch + decode all boundary candidates, each page once."""
        if not boundary_rids:
            return {}
        pages = {unpack_rid(rid)[0] for rid in boundary_rids}
        batch.refinement_pages = len(pages)
        with self._io_lock, self.index.pager.pinned(pages):
            with obs.span("fetch.batch", rids=len(boundary_rids)):
                records = self.index.heap.fetch_batch(boundary_rids)
        return {rid: decode_tuple(data) for rid, data in records.items()}

    def _assemble_exact(
        self,
        query: HalfPlaneQuery,
        accepted,
        boundary,
        decoded: dict[int, tuple[int, GeneralizedTuple]],
    ) -> QueryResult:
        result = QueryResult(technique="exact")
        result.accepted_without_refinement = len(accepted)
        result.candidates = len(accepted) + len(boundary)
        if isinstance(accepted, np.ndarray):
            # Columnar partial: vectorized rid -> tid translation, the
            # answer handed over as a lazy tid column (set membership is
            # identical to the scalar path, materialised on access).
            tids = self.index.tids_for_rids(accepted)
            if not len(boundary):
                result.set_lazy_ids(tids)
                return result
            result.refinement_pages = int(rid_pages(boundary).size)
            extra = self._verify_boundary(query, boundary.tolist(), decoded, result)
            result.set_lazy_ids(tids, extra)
            return result
        result.ids = {self.index.tid_of[rid] for rid in accepted}
        result.refinement_pages = len(
            {unpack_rid(rid)[0] for rid in boundary}
        )
        result.ids |= self._verify_boundary(query, boundary, decoded, result)
        return result

    def _verify_boundary(
        self,
        query: HalfPlaneQuery,
        boundary,
        decoded: dict[int, tuple[int, GeneralizedTuple]],
        result: QueryResult,
    ) -> set[int]:
        """Run the refinement predicate over one query's boundary rids;
        returns the confirmed tids and counts false hits on ``result``."""
        predicate = all_halfplane if query.query_type == ALL else exist_halfplane
        slope, intercept, theta = query.slope_2d, query.intercept, query.theta
        confirmed: set[int] = set()
        for rid in boundary:
            tid, t = decoded[rid]
            if predicate(t.extension(), slope, intercept, theta):
                confirmed.add(tid)
            else:
                result.false_hits += 1
        return confirmed

    # ------------------------------------------------------------------
    # vector path
    # ------------------------------------------------------------------
    def _surface_for(self, version: int) -> DualSurface:
        """The dual surface of the current index contents (memoised).

        Building it costs one heap scan (each heap page one logical
        read); the surface then answers any number of non-restricted
        slopes without further I/O until the index version changes.
        """
        if self._surface is None or self._surface_version != version:
            with self._io_lock, obs.span("surface.build"):
                self._surface = DualSurface.from_items(
                    decode_tuple(data) for _rid, data in self.index.heap.scan()
                )
            self._surface_version = version
        return self._surface

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _map_groups(
        self, fn: Callable[[_T], _R], groups: Sequence[_T]
    ) -> list[_R]:
        if self.max_workers > 1 and len(groups) > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(fn, groups))
        return [fn(group) for group in groups]

    def _record_metrics(self, batch: BatchResult) -> None:
        reg = self.registry
        reg.counter("exec_batches", "Batches executed").inc()
        reg.counter("exec_batch_queries", "Queries answered in batches").inc(
            len(batch.results)
        )
        reg.counter("exec_cache_hits", "Batch result-cache hits").inc(
            batch.cache_hits
        )
        reg.counter("exec_cache_misses", "Batch result-cache misses").inc(
            batch.cache_misses
        )
        reg.counter("exec_merged_sweeps", "Merged multi-key sweeps").inc(
            batch.exact_groups
        )
        reg.counter(
            "exec_vector_passes", "Vectorized dual-surface slope groups"
        ).inc(batch.vector_groups)
        reg.gauge("exec_cache_entries", "Resident cached results").set(
            len(self.cache)
        )

    def __repr__(self) -> str:
        return (
            f"<BatchExecutor index={self.index.name!r} cache={self.cache!r} "
            f"workers={self.max_workers}>"
        )


def _clone_cached(result: QueryResult) -> QueryResult:
    """An independent copy of a cached result, marked as served-from-cache.

    The I/O block is zeroed: a cache hit touches no pages.
    """
    return QueryResult(
        ids=set(result.ids),
        technique=result.technique,
        candidates=result.candidates,
        false_hits=result.false_hits,
        duplicates=result.duplicates,
        accepted_without_refinement=result.accepted_without_refinement,
        refinement_pages=result.refinement_pages,
        cached=True,
    )


def _slope_tol() -> float:
    from repro.core.planner import SLOPE_TOL

    return SLOPE_TOL


def _trace_meta() -> dict:
    """Span meta tagging the batch with the active request's trace id
    (empty when no request context is installed — the common case)."""
    ctx = tracer.context()
    return {"trace": ctx.trace_id} if ctx is not None else {}
