"""Batch query execution over the dual index.

One batch of half-plane selections, three sources of shared work:

* merged multi-key B+-tree sweeps for restricted-slope groups (one
  descent + one sweep per ``(slope, type, θ)`` group);
* a vectorized numpy pass over the dual representation for every other
  slope (one pass per slope, not per query);
* an LRU result cache keyed on the query identity, invalidated on every
  index version change.

Entry points: :class:`BatchExecutor` (or the convenience wrapper
:meth:`repro.core.planner.DualIndexPlanner.query_batch`) and the CLI's
``repro batch`` subcommand.
"""

from repro.exec.cache import QueryResultCache, cache_key
from repro.exec.executor import BatchExecutor, BatchResult
from repro.exec.grouping import ExactGroup, VectorGroup, group_queries

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "QueryResultCache",
    "cache_key",
    "ExactGroup",
    "VectorGroup",
    "group_queries",
]
