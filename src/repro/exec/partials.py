"""Compact, picklable per-shard batch answers (the process fan-out wire
format).

:class:`ShardPartials` is what one shard contributes to a fanned-out
batch: every query's accepted tids as one concatenated int64 column with
an offsets array (*columnar*, so S shards × Q queries cost S array
concatenations, not S×Q Python set unions), plus refined extras and the
per-query / batch-scope accounting the facade sums.

The layout is deliberately numpy-first: pickling a handful of large
arrays across a process boundary runs at memcpy speed, where pickling
Q Python sets would burn the very per-query overhead the process
fan-out exists to escape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.stats import IOStats

#: Technique codes used on the wire (uint8 per query).
TECH_EXACT = 0
TECH_VECTOR = 1
TECH_NAMES = ("exact", "vector")


@dataclass
class ShardPartials:
    """One shard's answers + accounting for a whole batch of queries."""

    #: Accepted tuple ids of all queries, concatenated in query order.
    tids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: ``tids[offsets[j]:offsets[j+1]]`` is query ``j``'s accepted column.
    offsets: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.int64)
    )
    #: Refinement-confirmed tids per query (``None`` when empty).
    extras: list = field(default_factory=list)
    #: Technique code per query (``TECH_EXACT`` / ``TECH_VECTOR``).
    technique: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint8)
    )
    #: Per-query diagnostics, aligned with the batch.
    candidates: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    false_hits: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    accepted_without_refinement: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    refinement_pages_q: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: Batch-scope accounting (same meaning as :class:`BatchResult`).
    io: IOStats = field(default_factory=IOStats)
    cache_hits: int = 0
    cache_misses: int = 0
    exact_groups: int = 0
    vector_groups: int = 0
    sweep_leaves: int = 0
    refinement_pages: int = 0

    def __len__(self) -> int:
        return int(self.technique.size)

    def tid_column(self, j: int) -> np.ndarray:
        """Query ``j``'s accepted tid column (a zero-copy view)."""
        return self.tids[self.offsets[j] : self.offsets[j + 1]]

    def __repr__(self) -> str:
        return (
            f"<ShardPartials queries={len(self)} tids={self.tids.size} "
            f"pages={self.io.logical_reads + self.io.logical_writes}>"
        )
