"""An LRU cache of query results, keyed on the query and index version.

Identical half-plane selections recur constantly in the paper's
workloads (Section 5 issues query batteries over a fixed grid of slopes
and intercepts), so the batch executor memoises answers. Keys are the
full query identity ``(query_type, slope, intercept, θ)``; entries are
implicitly scoped to one :attr:`DualIndex.version` — any build, insert
or delete bumps the version and drops every cached answer at the next
access.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.query import HalfPlaneQuery, QueryResult

#: (query_type, slope tuple, intercept, theta) — the query's identity.
CacheKey = tuple[str, tuple[float, ...], float, str]


def cache_key(query: HalfPlaneQuery) -> CacheKey:
    """The cache key of a query (its full mathematical identity)."""
    return (query.query_type, query.slope, query.intercept, query.theta.value)


class QueryResultCache:
    """LRU map from query identity to :class:`QueryResult`.

    ``capacity`` bounds the number of cached answers; 0 disables caching
    (every lookup misses). :meth:`get`/:meth:`put` take the current
    index version — a version change clears the cache, which is exactly
    "invalidated on index rebuild" with no per-entry bookkeeping.

    Example::

        >>> from repro.core.query import HalfPlaneQuery, QueryResult
        >>> from repro.exec.cache import QueryResultCache
        >>> cache = QueryResultCache(capacity=2)
        >>> q = HalfPlaneQuery("EXIST", 0.5, 1.0, ">=")
        >>> cache.get(q, version=1) is None
        True
        >>> cache.put(q, QueryResult(ids={3}), version=1)
        >>> sorted(cache.get(q, version=1).ids)
        [3]
        >>> cache.get(q, version=2) is None   # index changed: invalidated
        True
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, QueryResult] = OrderedDict()
        self._version: int | None = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _sync_version(self, version: int) -> None:
        if self._version != version:
            if self._entries:
                self.invalidations += 1
            self._entries.clear()
            self._version = version

    def get(self, query: HalfPlaneQuery, version: int) -> QueryResult | None:
        """The cached answer, or ``None`` (counts a hit or a miss)."""
        self._sync_version(version)
        entry = self._entries.get(cache_key(query))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(cache_key(query))
        return entry

    def put(
        self, query: HalfPlaneQuery, result: QueryResult, version: int
    ) -> None:
        """Store an answer (evicting LRU entries past capacity)."""
        if self.capacity == 0:
            return
        self._sync_version(version)
        key = cache_key(query)
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<QueryResultCache entries={len(self)}/{self.capacity} "
            f"hit_rate={self.hit_rate:.2f}>"
        )
