"""Batch planning: partition a query list into shared-work groups.

The batch executor's page-access savings come entirely from grouping:

* queries whose slope is in the restricted set ``S`` AND share the same
  ``(slope index, query type, θ)`` route to the *same* B+-tree and sweep
  direction (Section 3's four routing cases), so one merged multi-key
  sweep serves the whole group;
* queries at any other slope are answered from the vectorized dual
  surface — grouped per distinct slope so each slope costs one
  evaluation pass.

Intercepts within an exact group are processed in sorted order, which
makes the merged sweep's per-query offsets a monotone sequence over one
shared entry list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import HalfPlaneQuery
from repro.core.slope_set import SlopeSet


@dataclass
class ExactGroup:
    """Queries answered by one merged sweep of one restricted-slope tree.

    ``indices[j]`` is the position of ``queries[j]`` in the original
    batch; queries are kept sorted by intercept.
    """

    slope_index: int
    query_type: str
    theta_symbol: str
    indices: list[int] = field(default_factory=list)
    queries: list[HalfPlaneQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)


@dataclass
class VectorGroup:
    """Queries at one non-restricted slope, answered vectorized."""

    slope: float
    indices: list[int] = field(default_factory=list)
    queries: list[HalfPlaneQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)


def group_queries(
    queries: list[tuple[int, HalfPlaneQuery]],
    slopes: SlopeSet,
    slope_tol: float,
) -> tuple[list[ExactGroup], list[VectorGroup]]:
    """Partition ``(original index, query)`` pairs into execution groups.

    Returns ``(exact_groups, vector_groups)``; exact groups are sorted
    by intercept internally and both lists are ordered deterministically
    (by group key), so batch execution order is reproducible.
    """
    exact: dict[tuple[int, str, str], ExactGroup] = {}
    vector: dict[float, VectorGroup] = {}
    for position, query in queries:
        slope_index = slopes.index_of(query.slope_2d, slope_tol)
        if slope_index is not None:
            key = (slope_index, query.query_type, query.theta.value)
            group = exact.get(key)
            if group is None:
                group = exact[key] = ExactGroup(*key)
            group.indices.append(position)
            group.queries.append(query)
        else:
            vgroup = vector.get(query.slope_2d)
            if vgroup is None:
                vgroup = vector[query.slope_2d] = VectorGroup(query.slope_2d)
            vgroup.indices.append(position)
            vgroup.queries.append(query)
    for group in exact.values():
        order = sorted(
            range(len(group.queries)),
            key=lambda j: (group.queries[j].intercept, group.indices[j]),
        )
        group.queries = [group.queries[j] for j in order]
        group.indices = [group.indices[j] for j in order]
    return (
        [exact[key] for key in sorted(exact)],
        [vector[s] for s in sorted(vector)],
    )
