"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. Subclasses are split by subsystem
(constraint model, geometry, storage, indexing) to keep error handling
precise without forcing callers to import deep modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConstraintError(ReproError):
    """Malformed constraint, tuple, or relation."""


class ParseError(ConstraintError):
    """A constraint expression string could not be parsed."""


class GeometryError(ReproError):
    """Invalid geometric operation (e.g. dual of a vertical hyperplane)."""


class EmptyExtensionError(GeometryError):
    """An operation required a non-empty extension but got an empty one."""


class StorageError(ReproError):
    """Errors from the simulated disk, buffer pool, or heap file."""


class PageOverflowError(StorageError):
    """A record or node image did not fit in a page."""


class DoubleFreeError(StorageError):
    """A page already on the free list was freed again.

    Distinct from the generic "not allocated" :class:`StorageError` so a
    persistent free list can tell allocator bugs (double free corrupts
    the on-disk free chain) from plain bad page ids.
    """


class TruncatedRecordError(StorageError):
    """A serialized record or key buffer was shorter than its framing
    promised — the torn state left behind by a crash mid-page."""


class WalCorruptionError(StorageError):
    """A WAL or catalog file failed structural validation (bad magic,
    version, or CRC) somewhere recovery cannot simply truncate away."""


class RecoveryError(StorageError):
    """Crash recovery could not reconstruct a consistent state (e.g. a
    replayed allocation disagrees with the recomputed allocator)."""


class FaultInjectedError(StorageError):
    """A deliberately injected storage fault (``repro.verify.faults``).

    Raised by the fault-injection pager on a scheduled read/write so the
    test-suite can verify that every index surfaces storage failures as
    clean typed errors instead of corrupting state.
    """

    def __init__(
        self, message: str, op: str = "", page_id: int = -1, op_index: int = -1
    ) -> None:
        super().__init__(message)
        self.op = op
        self.page_id = page_id
        self.op_index = op_index


class VerificationError(ReproError):
    """A structural invariant or differential check failed
    (``repro.verify``)."""


class ServeError(ReproError):
    """Errors from the query service layer (``repro.serve``)."""


class ProtocolError(ServeError):
    """A wire frame violated the length-prefixed JSON protocol (bad
    magic, malformed payload, or an ill-typed request envelope)."""


class FrameTooLargeError(ProtocolError):
    """A frame header announced a payload above the configured limit.

    Raised *before* reading the payload, so a hostile or buggy client
    cannot make the server buffer unbounded input.
    """


class TruncatedFrameError(ProtocolError):
    """The connection ended mid-frame — the serving-layer analogue of
    :class:`TruncatedRecordError` for torn network reads."""


class OverloadedError(ServeError):
    """Admission control rejected a request because the server's bounded
    queue was full. Clients receive this as a typed ``OVERLOADED`` error
    frame and are expected to back off and retry."""


class IndexError_(ReproError):
    """Errors from index structures (B+-tree, R+-tree, dual index).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class SlopeSetError(IndexError_):
    """Invalid predefined slope set (empty, duplicated, or vertical)."""


class QueryError(IndexError_):
    """A query is malformed or unsupported by the chosen technique."""
