"""The slope-set learner: exact 1-D k-medoids over logged slopes.

Clustering happens in *angle* space (``atan`` of the slope): slope
space distorts badly toward vertical — the distance between slopes 10
and 100 is huge in slope units but tiny in sweep-cost terms — and the
paper's own default sets (:meth:`SlopeSet.uniform_angles`) are
angle-uniform for the same reason.

The optimiser is weighted 1-D k-medians solved exactly by dynamic
programming over breakpoints: for points on a line, optimal L1 clusters
are contiguous runs, so ``D[j][i] = min_l D[j-1][l] + cost(l, i)`` with
``cost`` the weighted-median absolute deviation of one run. Each
centre is then snapped to the nearest *observed* slope (medoids, not
synthetic means), which keeps hot exact-path slopes exactly in ``S``
(``SLOPE_TOL`` membership is ``1e-12`` — a mean would miss it).

Input comes from a :class:`~repro.obs.slopelog.SlopeLogSnapshot`: the
reservoir gives unbiased raw slopes; when the reservoir has sampled out
the exact angle histogram supplies the weights.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.slope_set import SlopeSet
from repro.errors import ReproError
from repro.obs.slopelog import SlopeLogSnapshot, bin_center_slope

#: Cap on distinct weighted points fed to the O(n^2 k) DP; beyond it,
#: points collapse into equal-frequency groups first.
MAX_POINTS = 512

#: Keep learned slopes inside atan-space margins, away from vertical
#: (matches :meth:`SlopeSet.uniform_angles`'s ``vertical_margin``).
VERTICAL_MARGIN = 0.05

#: Minimum separation between learned slopes, in angle space. Medoids
#: closer than this merge (a slope set with near-duplicate members
#: wastes trees without shrinking any sweep).
MIN_ANGLE_GAP = 1e-4


class TuneError(ReproError):
    """A slope set could not be learned from the given evidence."""


def _weighted_points(
    snapshot: SlopeLogSnapshot,
) -> tuple[np.ndarray, np.ndarray]:
    """(angles, weights) from a snapshot — reservoir samples weighted
    uniformly while lossless, histogram bins otherwise."""
    if snapshot.samples and snapshot.lossless:
        angles = np.arctan(np.asarray(snapshot.samples, dtype=np.float64))
        weights = np.ones(len(angles))
    elif snapshot.samples:
        # Sampled-out reservoir: still unbiased, but rescale each sample
        # by the true traffic volume so cost predictions stay absolute.
        angles = np.arctan(np.asarray(snapshot.samples, dtype=np.float64))
        weights = np.full(len(angles), snapshot.count / len(angles))
    else:
        centers = [bin_center_slope(i) for i in range(len(snapshot.bins))]
        angles = np.arctan(np.asarray(centers, dtype=np.float64))
        weights = np.asarray(snapshot.bins, dtype=np.float64)
        keep = weights > 0
        angles, weights = angles[keep], weights[keep]
    return angles, weights


def _compress(
    angles: np.ndarray, weights: np.ndarray, max_points: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sort, merge duplicates, and (if still too many) collapse into
    equal-frequency groups represented by their weighted medians."""
    order = np.argsort(angles, kind="stable")
    angles, weights = angles[order], weights[order]
    uniq, inverse = np.unique(angles, return_inverse=True)
    merged = np.zeros(len(uniq))
    np.add.at(merged, inverse, weights)
    angles, weights = uniq, merged
    if len(angles) <= max_points:
        return angles, weights
    cum = np.cumsum(weights)
    edges = np.searchsorted(
        cum, np.linspace(0, cum[-1], max_points + 1)[1:-1], side="left"
    )
    groups = np.split(np.arange(len(angles)), np.unique(edges + 1))
    out_a, out_w = [], []
    for g in groups:
        if len(g) == 0:
            continue
        w = weights[g]
        half = w.sum() / 2.0
        median = angles[g[np.searchsorted(np.cumsum(w), half)]]
        out_a.append(median)
        out_w.append(w.sum())
    return np.asarray(out_a), np.asarray(out_w)


def _segment_costs(angles: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """``C[l, r]`` = weighted L1 cost of serving points ``l..r``
    (inclusive) from their weighted median, for all segments at once."""
    n = len(angles)
    pw = np.concatenate([[0.0], np.cumsum(weights)])
    pwx = np.concatenate([[0.0], np.cumsum(weights * angles)])
    C = np.zeros((n, n))
    for left in range(n):
        w = pw[left + 1 :] - pw[left]  # noqa: E203 - numpy slice style
        half = w / 2.0
        cumw = np.cumsum(weights[left:])
        med_idx = left + np.searchsorted(cumw, half, side="left")
        m = angles[med_idx]
        # cost = m*(weight left of median) - (sum left) + (sum right) - m*(weight right)
        wl = pw[med_idx + 1] - pw[left]
        xl = pwx[med_idx + 1] - pwx[left]
        wr = (pw[left + 1 :] - pw[left]) - wl  # noqa: E203
        xr = (pwx[left + 1 :] - pwx[left]) - xl  # noqa: E203
        C[left, left:] = m * wl - xl + (xr - m * wr)
    return C


def _kmedians(
    angles: np.ndarray, weights: np.ndarray, k: int
) -> tuple[list[float], float]:
    """Exact weighted 1-D k-medians: returns (centres, total cost)."""
    n = len(angles)
    C = _segment_costs(angles, weights)
    # D[j][i]: best cost of covering points 0..i with j+1 clusters.
    D = np.full((k, n), np.inf)
    split = np.zeros((k, n), dtype=np.int64)
    D[0] = C[0]
    for j in range(1, k):
        for i in range(j, n):
            options = D[j - 1, j - 1 : i] + C[j:i + 1, i]  # noqa: E203
            best = int(np.argmin(options))
            D[j, i] = options[best]
            split[j, i] = best + j
    centres: list[float] = []
    i = n - 1
    for j in range(k - 1, -1, -1):
        left = int(split[j, i]) if j else 0
        seg_w = weights[left : i + 1]  # noqa: E203
        half = seg_w.sum() / 2.0
        med = angles[left + np.searchsorted(np.cumsum(seg_w), half)]
        centres.append(float(med))
        i = left - 1
    centres.reverse()
    return centres, float(D[k - 1, n - 1])


def learn_slopes(
    snapshot: SlopeLogSnapshot | Sequence[float],
    k: int = 4,
    vertical_margin: float = VERTICAL_MARGIN,
) -> SlopeSet:
    """Learn a ``k``-member slope set from logged traffic.

    ``snapshot`` is a :class:`SlopeLogSnapshot` (or, for convenience, a
    raw slope sequence). Returns a :class:`SlopeSet` of medoid slopes —
    every member is an actually observed slope (or a histogram bin
    centre once the reservoir has sampled out), so traffic concentrated
    on few slopes gets them *exactly*, turning those queries into
    zero-false-hit exact-path lookups.

    Raises :class:`TuneError` when there is no evidence to learn from
    or ``k < 2`` (T2's interior technique needs at least two slopes).

    >>> from repro.tune.learner import learn_slopes
    >>> s = learn_slopes([0.5] * 90 + [-2.0] * 10, k=2)
    >>> list(s)
    [-2.0, 0.5]
    """
    if k < 2:
        raise TuneError("a slope set needs at least 2 members (got k=%d)" % k)
    if isinstance(snapshot, SlopeLogSnapshot):
        angles, weights = _weighted_points(snapshot)
        observed = (
            snapshot.samples
            if snapshot.samples
            else [bin_center_slope(i) for i in range(len(snapshot.bins))
                  if snapshot.bins[i] > 0]
        )
    else:
        observed = [s for s in snapshot if math.isfinite(s)]
        angles = np.arctan(np.asarray(observed, dtype=np.float64))
        weights = np.ones(len(angles))
    if len(angles) == 0:
        raise TuneError("no logged slopes to learn from")
    limit = math.pi / 2.0 - vertical_margin
    angles = np.clip(angles, -limit, limit)
    angles, weights = _compress(angles, weights, MAX_POINTS)
    k_eff = min(k, len(angles))
    centres, _cost = _kmedians(angles, weights, k_eff)
    # Merge centres closer than the minimum gap, then pad back to >= 2
    # members if the traffic was degenerate (a single observed slope).
    kept: list[float] = []
    for c in centres:
        if not kept or c - kept[-1] > MIN_ANGLE_GAP:
            kept.append(c)
    while len(kept) < 2:
        probe = kept[0] + 0.5 if kept[0] + 0.5 < limit else kept[0] - 0.5
        kept.append(probe)
        kept.sort()
    return SlopeSet([_snap(a, observed) for a in kept])


def _snap(angle: float, observed: Sequence[float]) -> float:
    """The observed slope a medoid angle stands for.

    Medoids are picked in angle space, and ``tan(atan(s))`` loses a
    ULP — enough to cost exact-path membership only when the engine's
    ``SLOPE_TOL`` is tighter than the roundtrip error. Returning the
    *original* observed slope removes the roundtrip entirely; synthetic
    angles (vertical clipping, degenerate-traffic padding) fall back to
    ``tan``.
    """
    slope = math.tan(angle)
    best = min(observed, key=lambda s: abs(math.atan(s) - angle))
    return best if abs(math.atan(best) - angle) <= 1e-9 else slope
