"""Adaptive slope-set tuning from observed query traffic.

Theorems 4.1/4.2 price T1/T2 directly by the distance between a query's
slope and its nearest member of the restricted slope set ``S`` — a
build-time ``S`` is optimal only for the traffic the builder guessed.
This package closes the loop over the :mod:`repro.obs.slopelog` sink:

* :mod:`repro.tune.learner` — exact 1-D k-medoids (weighted L1
  breakpoint clustering in angle space) over logged slopes;
* :mod:`repro.tune.cost` — the predicted-cost model: expected
  nearest-anchor distance under the logged distribution, so
  ``repro tune`` reports the win *before* any rebuild;
* :mod:`repro.tune.retune` — offline rebuild-to-learned-``S``
  (``repro tune --apply`` via the checkpoint path) and the engine-side
  pieces the serve layer's ``--auto-tune`` hot-swap uses.

See ``docs/TUNING.md`` for the full lifecycle.
"""

from repro.tune.cost import expected_distance, predicted_improvement
from repro.tune.learner import learn_slopes
from repro.tune.retune import (
    TuneDecision,
    apply_tune,
    propose,
    rebuild_planner,
    relation_from_planner,
)

__all__ = [
    "TuneDecision",
    "apply_tune",
    "expected_distance",
    "learn_slopes",
    "predicted_improvement",
    "propose",
    "rebuild_planner",
    "relation_from_planner",
]
