"""The predicted-cost model: what a candidate slope set would cost.

Theorems 4.1/4.2 bound the T1/T2 overhead beyond the output size by
terms proportional to the distance between the query slope and its
nearest member of ``S`` (the extra sweep covers exactly the tuples
whose dual surfaces cross between the two slopes). The model therefore
scores a candidate ``S`` by the *expected nearest-anchor distance in
angle space* under the logged traffic distribution — cheap enough to
evaluate for many candidates, monotone in the quantity the theorems
price, and requiring no rebuild.

The model deliberately reports a dimensionless ratio rather than page
counts: the constant linking angle distance to pages depends on the
data distribution, and ``repro tune-bench`` measures that empirically.
Slopes within ``SLOPE_TOL`` of a member take the exact path (zero
extra sweep), which the expectation captures as a distance of 0.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.slope_set import SlopeSet
from repro.obs.slopelog import SlopeLogSnapshot


def _angle_points(
    snapshot: SlopeLogSnapshot | Sequence[float],
) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(snapshot, SlopeLogSnapshot):
        from repro.tune.learner import _weighted_points

        return _weighted_points(snapshot)
    finite = [s for s in snapshot if math.isfinite(s)]
    return np.arctan(np.asarray(finite, dtype=np.float64)), np.ones(len(finite))


def expected_distance(
    snapshot: SlopeLogSnapshot | Sequence[float],
    slopes: SlopeSet | Sequence[float],
) -> float:
    """Expected angle distance from a logged query slope to its nearest
    member of ``slopes`` — the per-query cost surrogate of Theorems
    4.1/4.2. Returns 0.0 when nothing was logged.

    >>> from repro.tune.cost import expected_distance
    >>> expected_distance([0.5, 0.5, 0.5], [0.5, 2.0])
    0.0
    >>> round(expected_distance([1.0], [0.0]), 6)
    0.785398
    """
    angles, weights = _angle_points(snapshot)
    if len(angles) == 0 or weights.sum() == 0:
        return 0.0
    anchors = np.arctan(np.asarray(list(slopes), dtype=np.float64))
    dist = np.abs(angles[:, None] - anchors[None, :]).min(axis=1)
    return float((dist * weights).sum() / weights.sum())


def nearest_anchor_distance(slope: float, anchors: Sequence[float]) -> float:
    """Angle distance from one query slope to its nearest anchor in
    ``S`` — the per-query quantity Theorems 4.1/4.2 price.

    >>> from repro.tune.cost import nearest_anchor_distance
    >>> nearest_anchor_distance(0.5, [0.5, 2.0])
    0.0
    >>> round(nearest_anchor_distance(1.0, [0.0]), 6)
    0.785398
    """
    finite = [a for a in anchors if math.isfinite(a)]
    if not finite or not math.isfinite(slope):
        return 0.0
    angle = math.atan(slope)
    return min(abs(angle - math.atan(a)) for a in finite)


class PageCostModel:
    """Online calibration of the theorems into *pages*: the serve-path
    cost watchdog.

    :func:`expected_distance` is deliberately dimensionless — the
    constant linking angle distance to pages depends on the data
    distribution. This model learns that constant live: each traced
    query contributes an ``(distance, observed pages)`` point to a
    running least-squares fit ``pages ≈ base + slope · distance``, and
    once ``min_samples`` points are in, :meth:`predict` prices new
    queries. The fit is clamped to be monotone (a negative fitted slope
    collapses to the running mean — distance then carries no signal in
    this deployment, and the watchdog degrades to a mean-based SLO).

    >>> from repro.tune.cost import PageCostModel
    >>> model = PageCostModel([0.0], min_samples=4)
    >>> for d_slope, pages in [(0.0, 10), (0.0, 12), (1.0, 30), (1.0, 32)]:
    ...     model.observe(d_slope, pages)
    >>> model.calibrated
    True
    >>> 8.0 < model.predict(0.0) < 14.0
    True
    >>> 26.0 < model.predict(1.0) < 36.0
    True
    """

    def __init__(self, anchors: Sequence[float], min_samples: int = 32) -> None:
        self.anchors = [float(a) for a in anchors if math.isfinite(a)]
        #: Anchor *angles*, precomputed: distance() runs once or twice
        #: per served query, so the atan over S must not be per-call.
        self._angles = [math.atan(a) for a in self.anchors]
        self.min_samples = max(2, min_samples)
        self.n = 0
        self._sum_d = 0.0
        self._sum_p = 0.0
        self._sum_dd = 0.0
        self._sum_dp = 0.0

    @property
    def calibrated(self) -> bool:
        return self.n >= self.min_samples

    def reset_anchors(self, anchors: Sequence[float]) -> None:
        """Re-anchor after a tune swap; the calibration restarts because
        the fitted constant belongs to the old ``S``."""
        self.anchors = [float(a) for a in anchors if math.isfinite(a)]
        self._angles = [math.atan(a) for a in self.anchors]
        self.n = 0
        self._sum_d = self._sum_p = self._sum_dd = self._sum_dp = 0.0

    def distance(self, slope: float) -> float:
        if not self._angles or not math.isfinite(slope):
            return 0.0
        angle = math.atan(slope)
        return min(abs(angle - a) for a in self._angles)

    def observe(
        self, slope: float, pages: float, distance: float | None = None
    ) -> None:
        """Feed one traced query's observed page cost into the fit.

        ``distance`` short-circuits the anchor scan when the caller
        already priced this slope (the serve path predicts *and*
        observes every query — one scan, not two).
        """
        d = self.distance(slope) if distance is None else distance
        self.n += 1
        self._sum_d += d
        self._sum_p += pages
        self._sum_dd += d * d
        self._sum_dp += d * pages

    def predict(
        self, slope: float, distance: float | None = None
    ) -> float | None:
        """Predicted pages for ``slope``; ``None`` until calibrated.
        Never below 1.0 — every query reads at least one page."""
        if not self.calibrated:
            return None
        var = self._sum_dd - self._sum_d * self._sum_d / self.n
        mean_p = self._sum_p / self.n
        if var <= 1e-12:
            return max(1.0, mean_p)
        beta = (self._sum_dp - self._sum_d * self._sum_p / self.n) / var
        if beta < 0.0:
            return max(1.0, mean_p)
        base = mean_p - beta * (self._sum_d / self.n)
        if distance is None:
            distance = self.distance(slope)
        return max(1.0, base + beta * distance)

    def state(self) -> dict:
        """JSON-ready snapshot (``repro top`` / the ``stats`` op)."""
        return {
            "anchors": list(self.anchors),
            "samples": self.n,
            "calibrated": self.calibrated,
            "mean_pages": (self._sum_p / self.n) if self.n else 0.0,
        }


def predicted_improvement(
    snapshot: SlopeLogSnapshot | Sequence[float],
    current: SlopeSet | Sequence[float],
    learned: SlopeSet | Sequence[float],
) -> dict:
    """Score ``learned`` against ``current`` under the logged traffic.

    Returns a JSON-ready report: both expected distances, the predicted
    cost ratio (``learned / current``; < 1 means the rebuild should
    win), and the fraction of logged traffic that would hit the exact
    path (distance ~ 0) under each set.
    """
    angles, weights = _angle_points(snapshot)
    report = {
        "expected_distance_current": expected_distance(snapshot, current),
        "expected_distance_learned": expected_distance(snapshot, learned),
    }
    cur = report["expected_distance_current"]
    new = report["expected_distance_learned"]
    report["predicted_cost_ratio"] = (new / cur) if cur > 0 else 1.0
    for label, slope_set in (("current", current), ("learned", learned)):
        if len(angles) == 0:
            report[f"exact_fraction_{label}"] = 0.0
            continue
        anchors = np.arctan(np.asarray(list(slope_set), dtype=np.float64))
        dist = np.abs(angles[:, None] - anchors[None, :]).min(axis=1)
        exact = weights[dist < 1e-9].sum()
        report[f"exact_fraction_{label}"] = float(exact / weights.sum())
    return report
