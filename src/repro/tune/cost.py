"""The predicted-cost model: what a candidate slope set would cost.

Theorems 4.1/4.2 bound the T1/T2 overhead beyond the output size by
terms proportional to the distance between the query slope and its
nearest member of ``S`` (the extra sweep covers exactly the tuples
whose dual surfaces cross between the two slopes). The model therefore
scores a candidate ``S`` by the *expected nearest-anchor distance in
angle space* under the logged traffic distribution — cheap enough to
evaluate for many candidates, monotone in the quantity the theorems
price, and requiring no rebuild.

The model deliberately reports a dimensionless ratio rather than page
counts: the constant linking angle distance to pages depends on the
data distribution, and ``repro tune-bench`` measures that empirically.
Slopes within ``SLOPE_TOL`` of a member take the exact path (zero
extra sweep), which the expectation captures as a distance of 0.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.slope_set import SlopeSet
from repro.obs.slopelog import SlopeLogSnapshot


def _angle_points(
    snapshot: SlopeLogSnapshot | Sequence[float],
) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(snapshot, SlopeLogSnapshot):
        from repro.tune.learner import _weighted_points

        return _weighted_points(snapshot)
    finite = [s for s in snapshot if math.isfinite(s)]
    return np.arctan(np.asarray(finite, dtype=np.float64)), np.ones(len(finite))


def expected_distance(
    snapshot: SlopeLogSnapshot | Sequence[float],
    slopes: SlopeSet | Sequence[float],
) -> float:
    """Expected angle distance from a logged query slope to its nearest
    member of ``slopes`` — the per-query cost surrogate of Theorems
    4.1/4.2. Returns 0.0 when nothing was logged.

    >>> from repro.tune.cost import expected_distance
    >>> expected_distance([0.5, 0.5, 0.5], [0.5, 2.0])
    0.0
    >>> round(expected_distance([1.0], [0.0]), 6)
    0.785398
    """
    angles, weights = _angle_points(snapshot)
    if len(angles) == 0 or weights.sum() == 0:
        return 0.0
    anchors = np.arctan(np.asarray(list(slopes), dtype=np.float64))
    dist = np.abs(angles[:, None] - anchors[None, :]).min(axis=1)
    return float((dist * weights).sum() / weights.sum())


def predicted_improvement(
    snapshot: SlopeLogSnapshot | Sequence[float],
    current: SlopeSet | Sequence[float],
    learned: SlopeSet | Sequence[float],
) -> dict:
    """Score ``learned`` against ``current`` under the logged traffic.

    Returns a JSON-ready report: both expected distances, the predicted
    cost ratio (``learned / current``; < 1 means the rebuild should
    win), and the fraction of logged traffic that would hit the exact
    path (distance ~ 0) under each set.
    """
    angles, weights = _angle_points(snapshot)
    report = {
        "expected_distance_current": expected_distance(snapshot, current),
        "expected_distance_learned": expected_distance(snapshot, learned),
    }
    cur = report["expected_distance_current"]
    new = report["expected_distance_learned"]
    report["predicted_cost_ratio"] = (new / cur) if cur > 0 else 1.0
    for label, slope_set in (("current", current), ("learned", learned)):
        if len(angles) == 0:
            report[f"exact_fraction_{label}"] = 0.0
            continue
        anchors = np.arctan(np.asarray(list(slope_set), dtype=np.float64))
        dist = np.abs(angles[:, None] - anchors[None, :]).min(axis=1)
        exact = weights[dist < 1e-9].sum()
        report[f"exact_fraction_{label}"] = float(exact / weights.sum())
    return report
