"""Rebuild-to-learned-``S``: the offline and online retune paths.

:func:`propose` turns a slope-log snapshot into a :class:`TuneDecision`
(learned set + predicted win, no side effects). :func:`rebuild_planner`
re-indexes a live planner's exact tuple set under a new slope set —
the answer-preserving step both paths share. :func:`apply_tune` is the
offline path (``repro tune --apply``): open a durable data-dir, rebuild
under the learned set, save to a *new* data-dir through the PR 7
checkpoint machinery (the original stays untouched — rollback is "keep
pointing at the old directory"). The serve layer's ``--auto-tune``
drives the same :func:`rebuild_planner` on a background thread and
hot-swaps the result behind the engine-thread drain (see
:mod:`repro.serve.server`).

Every rebuild preserves tuple ids bit-exactly: the new index answers
must be indistinguishable from the old (only page counts may change),
which :mod:`repro.verify.differential` enforces each fuzz round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.constraints.relation import GeneralizedRelation
from repro.core.planner import DualIndexPlanner
from repro.core.slope_set import SlopeSet
from repro.obs.metrics import get_registry
from repro.obs.slopelog import SlopeLogSnapshot
from repro.tune.cost import predicted_improvement
from repro.tune.learner import TuneError, learn_slopes


@dataclass
class TuneDecision:
    """A learned slope set plus the model's case for (not) applying it."""

    learned: SlopeSet
    current: SlopeSet
    prediction: dict = field(default_factory=dict)
    evidence: int = 0  #: logged queries backing the decision

    @property
    def worthwhile(self) -> bool:
        """True when the model predicts a real win (>= 5% cheaper)."""
        return self.prediction.get("predicted_cost_ratio", 1.0) <= 0.95

    def to_dict(self) -> dict:
        return {
            "learned_slopes": list(self.learned),
            "current_slopes": list(self.current),
            "evidence": self.evidence,
            "worthwhile": self.worthwhile,
            **self.prediction,
        }


def propose(
    snapshot: SlopeLogSnapshot,
    current: SlopeSet | Sequence[float],
    k: int | None = None,
) -> TuneDecision:
    """Learn a slope set from logged traffic and price it against the
    current one. Pure: no index is touched. ``k`` defaults to the
    current set's size (same tree count, so space stays comparable)."""
    current = current if isinstance(current, SlopeSet) else SlopeSet(current)
    k = k if k is not None else len(current)
    learned = learn_slopes(snapshot, k=k)
    decision = TuneDecision(
        learned=learned,
        current=current,
        prediction=predicted_improvement(snapshot, current, learned),
        evidence=snapshot.count,
    )
    get_registry().counter(
        "tune_proposals", "Slope-set tuning decisions computed"
    ).inc()
    return decision


def relation_from_planner(planner: DualIndexPlanner) -> GeneralizedRelation:
    """The planner's live tuple set, under its original tuple ids.

    Rebuilding from the heap (not from any retained build input) is
    what makes online retune correct for dynamic engines: inserts and
    deletes since build time are all in the heap and nowhere else.
    """
    index = planner.index
    relation = GeneralizedRelation(name=index.name)
    pairs = []
    for tid, rid in sorted(index.rid_of.items()):
        stored_tid, t = index.fetch_tuple(rid)
        if stored_tid != tid:
            raise TuneError(
                f"heap/catalog drift: rid {rid} stores tuple "
                f"{stored_tid}, catalog says {tid}"
            )
        pairs.append((tid, t))
    # Preserve sparse ids (the constructor renumbers densely).
    for tid, t in pairs:
        relation._tuples[tid] = t
        if relation._dimension is None:
            relation._dimension = t.dimension
    relation._next_id = (max(relation._tuples) + 1) if pairs else 0
    return relation


def rebuild_planner(
    planner: DualIndexPlanner,
    slopes: SlopeSet | Sequence[float],
    workers: int = 0,
    relation: GeneralizedRelation | None = None,
) -> DualIndexPlanner:
    """Re-index a planner's live tuples under a new slope set.

    The rebuilt planner keeps the original's technique, dynamic flag,
    key width, pivot and name; only ``S`` (and therefore the tree
    forest and sweep costs) changes. Tuple ids are preserved, so
    answers are bit-identical by construction — the differential
    fuzzer cross-checks that every round.

    ``relation`` accepts a pre-extracted tuple set (from
    :func:`relation_from_planner`). The serve layer's online retune
    uses this split: extraction runs on the engine thread (serialized
    with mutations), the rebuild itself on a background thread that
    touches nothing shared with the live engine.
    """
    if relation is None:
        relation = relation_from_planner(planner)
    rebuilt = DualIndexPlanner.build(
        relation,
        slopes,
        key_bytes=planner.index.codec.key_bytes,
        technique=planner.technique,
        dynamic=planner.index.dynamic,
        pivot_x=planner.pivot_x,
        workers=workers,
        name=planner.index.name,
        columnar=planner.index.columnar,
    )
    registry = get_registry()
    registry.counter(
        "tune_rebuilds", "Index rebuilds under a learned slope set"
    ).inc()
    registry.counter(
        "tune_rebuild_tuples", "Tuples re-indexed by slope-set rebuilds"
    ).inc(len(relation))
    return rebuilt


def apply_tune(
    data_dir: str,
    out_dir: str,
    slopes: SlopeSet | Sequence[float],
    columnar: bool | None = None,
) -> DualIndexPlanner:
    """Offline ``repro tune --apply``: open the durable engine in
    ``data_dir``, rebuild it under ``slopes``, and save the result as a
    fresh data-dir at ``out_dir`` (checkpointed snapshot; the source
    directory is never written). Returns the rebuilt planner, already
    homed at ``out_dir``."""
    from repro.storage.checkpoint import open_planner

    if data_dir == out_dir:
        raise TuneError(
            "apply_tune writes a new data-dir; out_dir must differ from "
            "data_dir (rollback = keep using the old directory)"
        )
    source = open_planner(data_dir, columnar=columnar)
    try:
        rebuilt = rebuild_planner(source, slopes)
        rebuilt.save(out_dir)
    finally:
        source.index.pager.disk.close()
    return rebuilt
