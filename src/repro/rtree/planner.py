"""Query planner for the R+-tree baseline.

Mirrors :class:`repro.core.planner.DualIndexPlanner` so benchmarks charge
both competitors identically: tree traversal page accesses plus one heap
page access per candidate record fetched for refinement.

The asymmetry the paper exploits is visible here: an ALL selection has no
native R+-tree algorithm — every object whose MBR meets the half-plane
must be fetched and tested — while the dual index answers ALL with the
same sweep machinery as EXIST. Unbounded tuples cannot be inserted at all
(:meth:`build` raises), which is the paper's Figure 1 argument.
"""

from __future__ import annotations

from repro.constraints.relation import GeneralizedRelation
from repro.core.query import ALL, EXIST, HalfPlaneQuery, QueryResult
from repro.errors import GeometryError, QueryError
from repro.geometry.predicates import all_halfplane, exist_halfplane
from repro.obs import trace as obs
from repro.rtree.base import RTreeBase
from repro.rtree.mbr import Rect
from repro.rtree.rplus import RPlusTree
from repro.storage.heap import HeapFile
from repro.storage.pager import Pager
from repro.storage.serialize import KeyCodec, decode_tuple, encode_tuple


def _tile_key(rect: Rect) -> tuple[float, float]:
    """STR-ish spatial sort key: coarse x-tile, then y."""
    cx, cy = rect.center()[0], rect.center()[1]
    return (cx // 20.0, cy)


def _make_refiner(tuple_of_rid: dict[int, object]):
    """Geometry-backed piece refiner for the R+-tree bulk load.

    A clipped piece becomes the bounding box of the *object* restricted
    to the piece domain (None when the object has no points there) —
    tight, sound for refinement-free confirms, and duplication-reducing.
    Works by Sutherland–Hodgman clipping of the object's cached vertex
    ring against the domain box — O(v) per clip, so the bulk load stays
    fast.
    """
    from repro.geometry.hull import clip_polygon_to_box

    vertex_cache: dict[int, list] = {}

    def refine(rid: int, domain: Rect) -> Rect | None:
        if rid not in vertex_cache:
            vertex_cache[rid] = tuple_of_rid[rid].extension().vertices()
        (lx, ly), (hx, hy) = domain.lows, domain.highs
        clipped = clip_polygon_to_box(vertex_cache[rid], lx, ly, hx, hy)
        if not clipped:
            return None
        new_lx = min(x for x, _ in clipped)
        new_hx = max(x for x, _ in clipped)
        new_ly = min(y for _, y in clipped)
        new_hy = max(y for _, y in clipped)
        # Clamp: numerical slack must not leak outside the domain; a
        # degenerate sliver may collapse to a point after clamping.
        lo_x, hi_x = max(new_lx, lx), min(new_hx, hx)
        lo_y, hi_y = max(new_ly, ly), min(new_hy, hy)
        if lo_x > hi_x:
            lo_x = hi_x = (lo_x + hi_x) / 2.0
        if lo_y > hi_y:
            lo_y = hi_y = (lo_y + hi_y) / 2.0
        return Rect((lo_x, lo_y), (hi_x, hi_y))

    return refine


class RTreePlanner:
    """Half-plane ALL/EXIST over an R-tree with refinement."""

    def __init__(self, tree: RTreeBase, heap: HeapFile) -> None:
        self.tree = tree
        self.heap = heap
        self.rid_of: dict[int, int] = {}
        self.tid_of: dict[int, int] = {}
        self.skipped: list[int] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        relation: GeneralizedRelation,
        pager: Pager | None = None,
        key_bytes: int = 4,
        fill: float = 0.7,
        tree_cls: type[RTreeBase] = RPlusTree,
    ) -> "RTreePlanner":
        """Bulk-build a tree+heap for a relation of *bounded* tuples.

        Unsatisfiable tuples are skipped (as in the dual index);
        unbounded tuples raise — the R-tree family cannot store them.
        """
        pager = pager if pager is not None else Pager()
        tree = tree_cls(pager, dimension=relation.dimension or 2,
                        key_codec=KeyCodec(key_bytes))
        heap = HeapFile(pager)
        planner = cls(tree, heap)
        staged: list[tuple[int, Rect]] = []
        tuples: dict[int, object] = {}
        for tid, t in relation:
            poly = t.extension()
            if poly.is_empty:
                planner.skipped.append(tid)
                continue
            if not poly.is_bounded:
                raise GeometryError(
                    f"tuple {tid} is unbounded: R-trees require finite "
                    f"objects (use the dual index)"
                )
            staged.append((tid, Rect.from_polyhedron(poly)))
            tuples[tid] = t
        # Cluster the heap spatially (STR-style tile order): the R+-tree's
        # refinement candidates are a band along the query line, so nearby
        # objects sharing pages keeps its fetches batched — the same
        # courtesy the dual index gets from key clustering.
        staged.sort(key=lambda it: _tile_key(it[1]))
        items: list[tuple[int, Rect]] = []
        tuple_of_rid: dict[int, object] = {}
        for tid, rect in staged:
            rid = heap.insert(encode_tuple(tid, tuples[tid]))
            planner.rid_of[tid] = rid
            planner.tid_of[rid] = tid
            tuple_of_rid[rid] = tuples[tid]
            items.append((rid, rect))
        if isinstance(tree, RPlusTree):
            tree.bulk_load(items, fill, piece_refiner=_make_refiner(tuple_of_rid))
        else:
            tree.bulk_load(items, fill)
        return planner

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, tid: int, t) -> None:
        """Dynamic insert of one bounded tuple."""
        poly = t.extension()
        if poly.is_empty or not poly.is_bounded:
            raise GeometryError("R-tree tuples must be non-empty and bounded")
        rid = self.heap.insert(encode_tuple(tid, t))
        self.rid_of[tid] = rid
        self.tid_of[rid] = tid
        self.tree.insert(rid, Rect.from_polyhedron(poly))

    def delete(self, tid: int) -> None:
        """Delete a tuple by id."""
        rid = self.rid_of.pop(tid, None)
        if rid is None:
            raise QueryError(f"tuple id {tid} is not indexed")
        del self.tid_of[rid]
        _stored, t = decode_tuple(self.heap.fetch(rid))
        self.tree.delete(rid, Rect.from_polyhedron(t.extension()))
        self.heap.delete(rid)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, query: HalfPlaneQuery) -> QueryResult:
        """Answer a half-plane query; result equals the exact oracle."""
        pager = self.tree.pager
        with obs.span(
            "query",
            pager=pager,
            type=query.query_type,
            intercept=f"{query.intercept:g}",
            structure=type(self.tree).__name__,
        ) as qspan:
            with pager.measure() as scope:
                result = self._execute(query)
            result.io = scope.delta
            if qspan is not None:
                qspan.incr("candidates", result.candidates)
                qspan.incr("results", len(result.ids))
                result.trace = qspan
        return result

    def exist(self, slope, intercept, theta=">=") -> QueryResult:
        """EXIST selection."""
        return self.query(HalfPlaneQuery(EXIST, slope, intercept, theta))

    def all(self, slope, intercept, theta=">=") -> QueryResult:
        """ALL selection (approximated by EXIST + refinement)."""
        return self.query(HalfPlaneQuery(ALL, slope, intercept, theta))

    def _execute(self, query: HalfPlaneQuery) -> QueryResult:
        with obs.span("sweep.rtree"):
            candidates = self.tree.search_halfplane(
                query.slope, query.intercept, query.theta, query.query_type
            )
        result = QueryResult(technique=f"{type(self.tree).__name__}")
        result.candidates = candidates.total
        result.accepted_without_refinement = len(candidates.confirmed)
        result.ids = {self.tid_of[rid] for rid in candidates.confirmed}
        predicate = (
            all_halfplane if query.query_type == ALL else exist_halfplane
        )
        false_hits = 0
        from repro.storage.heap import unpack_rid

        result.refinement_pages = len(
            {unpack_rid(rid)[0] for rid in candidates.to_refine}
        )
        with obs.span("fetch"):
            records = self.heap.fetch_batch(candidates.to_refine)
        with obs.span("verify"):
            for data in records.values():
                tid, t = decode_tuple(data)
                if predicate(
                    t.extension(), query.slope, query.intercept, query.theta
                ):
                    result.ids.add(tid)
                else:
                    false_hits += 1
            obs.incr("refine.false_hits", false_hits)
        result.false_hits = false_hits
        return result
