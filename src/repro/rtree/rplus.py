"""The R+-tree of Sellis, Roussopoulos & Faloutsos (1987) — the baseline.

Bulk construction follows the R+-tree's defining property: sibling
regions are *disjoint*; an object whose MBR straddles a cut is *clipped*
and stored in every region it overlaps (duplication instead of overlap).
The builder recursively partitions the object set with count-median cuts
(the "Pack/Partition" spirit of the original paper) and assembles nodes
bottom-up with uniform height.

Upper levels pack consecutive partition cells, so *leaf* regions are
exactly disjoint while sibling internal rectangles (unions of adjacent
cells) may overlap marginally. Dynamic inserts reuse the Guttman-style
path of :class:`RTreeBase` (single-path descent, quadratic split). Both
are documented deviations: Sellis' dynamic downward-split algorithm is
famously underspecified, and the paper's experiments run against
statically built trees.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import IndexError_
from repro.rtree.base import RTreeBase
from repro.rtree.mbr import Rect, spread_axis
from repro.rtree.node import INTERNAL_KIND, LEAF_KIND, RTreeNode


class RPlusTree(RTreeBase):
    """Disjoint-region R-tree with clipped (duplicated) entries."""

    def bulk_load(
        self,
        items: Iterable[tuple[int, Rect]],
        fill: float = 0.7,
        piece_refiner=None,
    ) -> None:
        """Build the tree from scratch over (rid, MBR) items.

        ``fill`` is the target node occupancy. Objects are clipped at
        partition boundaries, so the stored entry count (``self.size``)
        can exceed the number of distinct objects — this duplication is
        intrinsic to the R+-tree and is part of its space cost in
        Figure 10.

        ``piece_refiner(rid, domain: Rect) -> Rect | None`` optionally
        recomputes a clipped piece as the bounding box of the *object*
        geometry inside ``domain``. Without it, a piece is ``MBR ∩ cell``,
        which may contain no object point at all — then a piece lying
        inside a query half-plane cannot soundly confirm the object, and
        the search refines every candidate. With it, pieces are tight,
        object-empty pieces are dropped (less duplication), and
        refinement-free EXIST confirms are sound.
        """
        if self.root is not None:
            raise IndexError_("bulk_load on a non-empty tree")
        if not 0.3 <= fill <= 1.0:
            raise IndexError_("fill factor must be in [0.3, 1.0]")
        self.pieces_are_tight = piece_refiner is not None
        data = [(rid, rect) for rid, rect in items]
        if not data:
            return
        # Binary count-median recursion leaves groups in (budget/2, budget],
        # i.e. ~0.75·budget on average — compensate so the realised leaf
        # fill matches the requested one.
        leaf_budget = min(
            self.layout.capacity,
            max(2, int(self.layout.capacity * fill / 0.75)),
        )
        groups = _partition(data, leaf_budget, piece_refiner)
        level: list[tuple[Rect, int]] = []
        total = 0
        for group in groups:
            node = RTreeNode(
                LEAF_KIND,
                [rect for _, rect in group],
                [rid for rid, _ in group],
            )
            pid = self._alloc()
            self._write(pid, node)
            level.append((node.covering_rect(), pid))
            total += len(group)
        self.size = total
        self.height = 1
        fanout = max(2, int(self.layout.capacity * fill))
        while len(level) > 1:
            next_level: list[tuple[Rect, int]] = []
            for start in range(0, len(level), fanout):
                chunk = level[start : start + fanout]
                node = RTreeNode(
                    INTERNAL_KIND,
                    [rect for rect, _ in chunk],
                    [pid for _, pid in chunk],
                )
                pid = self._alloc()
                self._write(pid, node)
                next_level.append((node.covering_rect(), pid))
            level = next_level
            self.height += 1
        self.root = level[0][1]


#: A cut that would clip more than this fraction of the items is
#: rejected in favour of a non-clipping center split (regions then
#: overlap locally, like a plain R-tree). Objects comparable in size to
#: the partition cells would otherwise cascade: every clip creates two
#: entries that themselves straddle the next cut.
_MAX_STRADDLE_FRACTION = 0.45


def _partition(
    items: list[tuple[int, Rect]], budget: int, piece_refiner=None
) -> list[list[tuple[int, Rect]]]:
    """Recursively cut the item set into groups of at most ``budget``.

    Cuts are count-medians; straddling objects are *clipped* — each side
    receives the piece of its MBR on that side, preserving the R+-tree
    disjointness invariant. When no low-straddle cut exists (objects as
    large as the cells), the split assigns by center without clipping.
    """
    if len(items) <= budget:
        return [items]
    best: tuple[int, list, list] | None = None
    for axis in range(items[0][1].dimension):
        cut = _median_cut(items, axis)
        if cut is None:
            continue
        straddle = sum(
            1
            for _, rect in items
            if rect.lows[axis] < cut < rect.highs[axis]
        )
        if best is None or straddle < best[0]:
            left, right = _apply_cut(items, axis, cut, piece_refiner)
            if left and right and len(left) < len(items) and len(right) < len(items):
                best = (straddle, left, right)
    if best is not None and best[0] <= _MAX_STRADDLE_FRACTION * len(items):
        _straddle, left, right = best
    else:
        left, right = _center_split(items)
    return _partition(left, budget, piece_refiner) + _partition(
        right, budget, piece_refiner
    )


def _median_cut(items: list[tuple[int, Rect]], axis: int) -> float | None:
    centers = sorted(rect.center()[axis] for _, rect in items)
    if centers[0] == centers[-1]:
        return None
    mid = len(centers) // 2
    cut = (centers[mid - 1] + centers[mid]) / 2.0
    if cut <= centers[0]:
        cut = math.nextafter(centers[0], math.inf)
    return cut


def _apply_cut(
    items: list[tuple[int, Rect]], axis: int, cut: float, piece_refiner=None
) -> tuple[list[tuple[int, Rect]], list[tuple[int, Rect]]]:
    left: list[tuple[int, Rect]] = []
    right: list[tuple[int, Rect]] = []
    for rid, rect in items:
        if rect.highs[axis] <= cut:
            left.append((rid, rect))
        elif rect.lows[axis] >= cut:
            right.append((rid, rect))
        else:
            for side, piece in (
                (left, _clip(rect, axis, hi=cut)),
                (right, _clip(rect, axis, lo=cut)),
            ):
                if piece_refiner is not None:
                    refined = piece_refiner(rid, piece)
                    if refined is None:
                        continue  # no object points on this side
                    piece = refined
                side.append((rid, piece))
    return left, right


def _center_split(
    items: list[tuple[int, Rect]],
) -> tuple[list[tuple[int, Rect]], list[tuple[int, Rect]]]:
    """Non-clipping fallback: halve by center order along the best axis."""
    axis = spread_axis([rect for _, rect in items])
    ordered = sorted(items, key=lambda it: it[1].center()[axis])
    mid = len(ordered) // 2
    return ordered[:mid], ordered[mid:]


def _clip(rect: Rect, axis: int, lo: float | None = None, hi: float | None = None) -> Rect:
    lows = list(rect.lows)
    highs = list(rect.highs)
    if lo is not None:
        lows[axis] = max(lows[axis], lo)
    if hi is not None:
        highs[axis] = min(highs[axis], hi)
    return Rect(tuple(lows), tuple(highs))
