"""On-page R-tree / R+-tree node layout.

One node per page. Layout::

    u8 kind (0 leaf / 1 internal) | u8 pad | u16 count
    | count × (2d × key coords, u32 child-or-rid)

Coordinates use the tree's :class:`KeyCodec` width — 4 bytes reproduces
the paper's value size (so a 1024-byte page holds ~50 2-D entries).
Float32 coordinate quantisation is applied *outward* (lows rounded down,
highs rounded up) so stored MBRs always cover the true MBR and no
candidate is ever lost.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.rtree.mbr import Rect
from repro.storage.serialize import KeyCodec

_HEADER = struct.Struct("<BBH")
_RID = struct.Struct("<I")

LEAF_KIND = 0
INTERNAL_KIND = 1


@dataclass
class RTreeNode:
    """Decoded node: parallel rect/pointer lists."""

    kind: int
    rects: list[Rect] = field(default_factory=list)
    pointers: list[int] = field(default_factory=list)  # child pages or rids

    @property
    def count(self) -> int:
        return len(self.rects)

    @property
    def is_leaf(self) -> bool:
        return self.kind == LEAF_KIND

    def covering_rect(self) -> Rect:
        """Tight union of the entry rectangles."""
        return Rect.union_of(self.rects)


class RTreeLayout:
    """Capacity math and codec for a given page size / dimension."""

    def __init__(self, page_size: int, key_codec: KeyCodec, dimension: int) -> None:
        self.page_size = page_size
        self.key_codec = key_codec
        self.dimension = dimension
        entry_bytes = 2 * dimension * key_codec.key_bytes + _RID.size
        self.capacity = (page_size - _HEADER.size) // entry_bytes
        if self.capacity < 4:
            raise StorageError(
                f"page size {page_size} too small for {dimension}-D R-tree nodes"
            )

    def encode(self, node: RTreeNode) -> bytes:
        if node.count > self.capacity:
            raise StorageError("R-tree node overflow at encode time")
        out = bytearray(self.page_size)
        _HEADER.pack_into(out, 0, node.kind, 0, node.count)
        pos = _HEADER.size
        kb = self.key_codec.key_bytes
        for rect, pointer in zip(node.rects, node.pointers):
            if rect.dimension != self.dimension:
                raise StorageError("entry dimension mismatch")
            for lo in rect.lows:
                out[pos : pos + kb] = self.key_codec.encode(
                    self.key_codec.down(lo)
                )
                pos += kb
            for hi in rect.highs:
                out[pos : pos + kb] = self.key_codec.encode(
                    self.key_codec.up(hi)
                )
                pos += kb
            _RID.pack_into(out, pos, pointer)
            pos += _RID.size
        return bytes(out)

    def decode(self, data: bytes) -> RTreeNode:
        kind, _pad, count = _HEADER.unpack_from(data, 0)
        pos = _HEADER.size
        kb = self.key_codec.key_bytes
        rects: list[Rect] = []
        pointers: list[int] = []
        for _ in range(count):
            lows = []
            highs = []
            for _ in range(self.dimension):
                lows.append(self.key_codec.decode(data[pos : pos + kb]))
                pos += kb
            for _ in range(self.dimension):
                highs.append(self.key_codec.decode(data[pos : pos + kb]))
                pos += kb
            rects.append(Rect(tuple(lows), tuple(highs)))
            pointers.append(_RID.unpack_from(data, pos)[0])
            pos += _RID.size
        return RTreeNode(kind, rects, pointers)
