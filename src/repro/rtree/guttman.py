"""The classic Guttman R-tree (1984) — ablation baseline.

Same page layout and search machinery as :class:`RTreeBase`; trees are
built either by repeated dynamic insertion or by Sort-Tile-Recursive
(STR) packing. Unlike the R+-tree, sibling regions may overlap and
objects are never clipped, so EXIST traversals may follow several paths.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import IndexError_
from repro.rtree.base import RTreeBase
from repro.rtree.mbr import Rect
from repro.rtree.node import INTERNAL_KIND, LEAF_KIND, RTreeNode


class GuttmanRTree(RTreeBase):
    """Overlapping-region R-tree with STR bulk loading."""

    def bulk_load(
        self, items: Iterable[tuple[int, Rect]], fill: float = 0.7
    ) -> None:
        """Sort-Tile-Recursive packing (Leutenegger et al. 1997)."""
        if self.root is not None:
            raise IndexError_("bulk_load on a non-empty tree")
        data = [(rid, rect) for rid, rect in items]
        if not data:
            return
        target = max(2, int(self.layout.capacity * fill))
        level: list[tuple[Rect, int]] = []
        for chunk in _str_tiles(data, target, self.dimension):
            node = RTreeNode(
                LEAF_KIND,
                [rect for _, rect in chunk],
                [rid for rid, _ in chunk],
            )
            pid = self._alloc()
            self._write(pid, node)
            level.append((node.covering_rect(), pid))
        self.height = 1
        while len(level) > 1:
            wrapped = [(pid, rect) for rect, pid in level]
            next_level: list[tuple[Rect, int]] = []
            for chunk in _str_tiles(wrapped, target, self.dimension):
                node = RTreeNode(
                    INTERNAL_KIND,
                    [rect for _, rect in chunk],
                    [pid for pid, _ in chunk],
                )
                pid = self._alloc()
                self._write(pid, node)
                next_level.append((node.covering_rect(), pid))
            level = next_level
            self.height += 1
        self.root = level[0][1]
        self.size = len(data)


def _str_tiles(
    items: list[tuple[int, Rect]], target: int, dimension: int
) -> list[list[tuple[int, Rect]]]:
    """Group items into ~target-size tiles by recursive center sorting."""
    if len(items) <= target:
        return [items]
    if dimension == 1:
        ordered = sorted(items, key=lambda it: it[1].center()[0])
        return [ordered[i : i + target] for i in range(0, len(ordered), target)]
    pages = math.ceil(len(items) / target)
    slices = max(1, math.ceil(pages ** (1.0 / dimension)))
    per_slice = math.ceil(len(items) / slices)
    ordered = sorted(items, key=lambda it: it[1].center()[0])
    tiles: list[list[tuple[int, Rect]]] = []
    for i in range(0, len(ordered), per_slice):
        chunk = sorted(
            ordered[i : i + per_slice], key=lambda it: it[1].center()[1:]
        )
        tiles.extend(
            chunk[j : j + target] for j in range(0, len(chunk), target)
        )
    return tiles
