"""Minimum bounding rectangles (any dimension) and half-plane tests.

The R+-tree baseline approximates every tuple extension by its MBR —
exactly the approximation the paper criticises: unbounded objects cannot
be represented at all (:meth:`ConvexPolyhedron.bounding_box` raises), and
ALL selections must be answered through EXIST + refinement.

Half-plane/box predicates are exact and O(d): the query functional
``f(x) = x_d - s·x' - b`` is linear, so its extrema over a box are read
off the per-coordinate coefficient signs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.constraints.theta import Theta
from repro.errors import GeometryError, QueryError


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box ``lows ≤ x ≤ highs``."""

    lows: tuple[float, ...]
    highs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise GeometryError("Rect lows/highs length mismatch")
        if any(lo > hi for lo, hi in zip(self.lows, self.highs)):
            raise GeometryError(f"inverted Rect {self.lows} .. {self.highs}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_polyhedron(cls, poly) -> "Rect":
        """MBR of a bounded polyhedron (raises for unbounded/empty)."""
        lows, highs = poly.bounding_box()
        return cls(tuple(lows), tuple(highs))

    @classmethod
    def union_of(cls, rects: Sequence["Rect"]) -> "Rect":
        """Smallest box covering all inputs."""
        if not rects:
            raise GeometryError("union of no rectangles")
        dim = rects[0].dimension
        lows = tuple(min(r.lows[i] for r in rects) for i in range(dim))
        highs = tuple(max(r.highs[i] for r in rects) for i in range(dim))
        return cls(lows, highs)

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return len(self.lows)

    def area(self) -> float:
        """d-dimensional volume."""
        result = 1.0
        for lo, hi in zip(self.lows, self.highs):
            result *= hi - lo
        return result

    def margin(self) -> float:
        """Sum of side lengths."""
        return sum(hi - lo for lo, hi in zip(self.lows, self.highs))

    def center(self) -> tuple[float, ...]:
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lows, self.highs))

    def intersects(self, other: "Rect", tol: float = 0.0) -> bool:
        """Closed-box intersection test."""
        return all(
            lo - tol <= other_hi and other_lo - tol <= hi
            for lo, hi, other_lo, other_hi in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def contains_rect(self, other: "Rect", tol: float = 0.0) -> bool:
        return all(
            lo - tol <= other_lo and other_hi <= hi + tol
            for lo, hi, other_lo, other_hi in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def contains_point(self, point: Sequence[float], tol: float = 0.0) -> bool:
        return all(
            lo - tol <= v <= hi + tol
            for lo, hi, v in zip(self.lows, self.highs, point)
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect.union_of([self, other])

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap box, or None when disjoint."""
        lows = tuple(max(a, b) for a, b in zip(self.lows, other.lows))
        highs = tuple(min(a, b) for a, b in zip(self.highs, other.highs))
        if any(lo > hi for lo, hi in zip(lows, highs)):
            return None
        return Rect(lows, highs)

    def enlargement(self, other: "Rect") -> float:
        """Volume growth needed to absorb ``other``."""
        return self.union(other).area() - self.area()

    # ------------------------------------------------------------------
    # half-plane predicates (exact, O(d))
    # ------------------------------------------------------------------
    def _functional_range(self, slope: Sequence[float], intercept: float) -> tuple[float, float]:
        """Min and max of ``x_d - slope·x' - intercept`` over the box."""
        if len(slope) != self.dimension - 1:
            raise QueryError(
                f"slope of length {len(slope)} against {self.dimension}-D box"
            )
        fmin = self.lows[-1] - intercept
        fmax = self.highs[-1] - intercept
        for s, lo, hi in zip(slope, self.lows, self.highs):
            # coefficient of this coordinate is -s
            if s >= 0:
                fmax += -s * lo
                fmin += -s * hi
            else:
                fmax += -s * hi
                fmin += -s * lo
        return fmin, fmax

    def intersects_halfplane(
        self,
        slope: Sequence[float],
        intercept: float,
        theta: Theta,
        tol: float = 1e-9,
    ) -> bool:
        """Does the box meet ``x_d θ slope·x' + intercept``?"""
        fmin, fmax = self._functional_range(slope, intercept)
        if theta is Theta.GE:
            return fmax >= -tol
        if theta is Theta.LE:
            return fmin <= tol
        raise QueryError(f"half-plane theta must be >= or <=, got {theta}")

    def inside_halfplane(
        self,
        slope: Sequence[float],
        intercept: float,
        theta: Theta,
        tol: float = 1e-9,
    ) -> bool:
        """Is the box entirely inside the half-plane?"""
        fmin, fmax = self._functional_range(slope, intercept)
        if theta is Theta.GE:
            return fmin >= -tol
        if theta is Theta.LE:
            return fmax <= tol
        raise QueryError(f"half-plane theta must be >= or <=, got {theta}")

    def __repr__(self) -> str:
        coords = ", ".join(
            f"[{lo:g},{hi:g}]" for lo, hi in zip(self.lows, self.highs)
        )
        return f"Rect({coords})"


def rect_2d(xmin: float, ymin: float, xmax: float, ymax: float) -> Rect:
    """2-D convenience constructor."""
    return Rect((float(xmin), float(ymin)), (float(xmax), float(ymax)))


def spread_axis(rects: Sequence[Rect]) -> int:
    """The axis along which the rect centers spread the most."""
    if not rects:
        raise GeometryError("spread_axis of no rectangles")
    dim = rects[0].dimension
    best_axis = 0
    best_spread = -math.inf
    for axis in range(dim):
        centers = [r.center()[axis] for r in rects]
        spread = max(centers) - min(centers)
        if spread > best_spread:
            best_spread = spread
            best_axis = axis
    return best_axis
