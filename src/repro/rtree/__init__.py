"""R-tree family: the paper's R+-tree baseline and a Guttman R-tree.

Both operate on the simulated disk with the paper's page/value sizes so
page-access comparisons against the dual-representation index are
structurally faithful.
"""

from repro.rtree.base import HalfPlaneCandidates, RTreeBase
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.mbr import Rect, rect_2d, spread_axis
from repro.rtree.rplus import RPlusTree

__all__ = [
    "Rect",
    "rect_2d",
    "spread_axis",
    "RTreeBase",
    "RPlusTree",
    "GuttmanRTree",
    "HalfPlaneCandidates",
]
