"""Shared paged R-tree machinery: dynamic insert/delete and searches.

:class:`RTreeBase` implements the page I/O, Guttman-style dynamic
insertion (choose-least-enlargement descent, quadratic split), deletion,
and the two searches the benchmarks need — rectangle intersection and
half-plane candidate retrieval. :class:`repro.rtree.rplus.RPlusTree`
layers the disjoint bulk-packing of Sellis et al. on top;
:class:`repro.rtree.guttman.GuttmanRTree` is the classic overlapping
variant used in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.constraints.theta import Theta
from repro.errors import IndexError_, QueryError
from repro.obs import trace as obs
from repro.rtree.mbr import Rect
from repro.rtree.node import INTERNAL_KIND, LEAF_KIND, RTreeLayout, RTreeNode
from repro.storage.pager import Pager
from repro.storage.serialize import KeyCodec


@dataclass
class HalfPlaneCandidates:
    """Result of a half-plane search before refinement.

    ``confirmed`` can be accepted without fetching the record (their MBR
    piece lies entirely inside the half-plane — valid for EXIST only);
    ``to_refine`` must be checked against the exact geometry.
    """

    confirmed: set[int] = field(default_factory=set)
    to_refine: set[int] = field(default_factory=set)

    @property
    def total(self) -> int:
        return len(self.confirmed) + len(self.to_refine)


class RTreeBase:
    """Common R-tree engine over a :class:`Pager`."""

    def __init__(
        self,
        pager: Pager,
        dimension: int = 2,
        key_codec: KeyCodec | None = None,
        name: str = "rtree",
    ) -> None:
        self.pager = pager
        self.codec = key_codec if key_codec is not None else KeyCodec(4)
        self.layout = RTreeLayout(pager.page_size, self.codec, dimension)
        self.dimension = dimension
        self.name = name
        self.root: int | None = None
        self.height = 0
        self.size = 0  # stored entries (>= distinct objects when clipped)
        self.owned_pages: set[int] = set()
        #: True while every stored piece is guaranteed to contain object
        #: points (whole MBRs, or geometry-refined clips). Required for
        #: refinement-free EXIST confirms; R+ bulk loads without a piece
        #: refiner clear it.
        self.pieces_are_tight = True

    # ------------------------------------------------------------------
    # node I/O
    # ------------------------------------------------------------------
    def _alloc(self) -> int:
        pid = self.pager.allocate()
        self.owned_pages.add(pid)
        return pid

    def _free(self, pid: int) -> None:
        self.owned_pages.discard(pid)
        self.pager.free(pid)

    def _read(self, pid: int) -> RTreeNode:
        return self.layout.decode(self.pager.read(pid))

    def _write(self, pid: int, node: RTreeNode) -> None:
        self.pager.write(pid, self.layout.encode(node))

    @property
    def page_count(self) -> int:
        """Pages owned by this tree."""
        return len(self.owned_pages)

    # ------------------------------------------------------------------
    # insertion (Guttman descent + quadratic split)
    # ------------------------------------------------------------------
    def insert(self, rid: int, rect: Rect) -> None:
        """Insert one (rid, MBR) entry."""
        if rect.dimension != self.dimension:
            raise IndexError_("entry dimension mismatch")
        if self.root is None:
            pid = self._alloc()
            self._write(pid, RTreeNode(LEAF_KIND, [rect], [rid]))
            self.root = pid
            self.height = 1
            self.size = 1
            return
        split = self._insert_rec(self.root, self.height, rid, rect)
        if split is not None:
            pieces = split
            new_root = self._alloc()
            self._write(
                new_root,
                RTreeNode(
                    INTERNAL_KIND,
                    [r for r, _ in pieces],
                    [p for _, p in pieces],
                ),
            )
            self.root = new_root
            self.height += 1
        self.size += 1

    def _insert_rec(
        self, pid: int, level: int, rid: int, rect: Rect
    ) -> list[tuple[Rect, int]] | None:
        node = self._read(pid)
        if level == 1:
            node.rects.append(rect)
            node.pointers.append(rid)
            return self._write_or_split(pid, node)
        choice = self._choose_child(node, rect)
        split = self._insert_rec(node.pointers[choice], level - 1, rid, rect)
        if split is None:
            # Tighten/grow the child rect to cover the new entry.
            node.rects[choice] = node.rects[choice].union(rect)
            self._write(pid, node)
            return None
        left_rect, right = split[0], split[1:]
        node.rects[choice] = left_rect[0]
        node.pointers[choice] = left_rect[1]
        for r, p in right:
            node.rects.append(r)
            node.pointers.append(p)
        return self._write_or_split(pid, node)

    def _write_or_split(
        self, pid: int, node: RTreeNode
    ) -> list[tuple[Rect, int]] | None:
        if node.count <= self.layout.capacity:
            self._write(pid, node)
            return None
        group_a, group_b = _quadratic_split(node.rects, node.pointers)
        node_a = RTreeNode(node.kind, [r for r, _ in group_a], [p for _, p in group_a])
        node_b = RTreeNode(node.kind, [r for r, _ in group_b], [p for _, p in group_b])
        pid_b = self._alloc()
        self._write(pid, node_a)
        self._write(pid_b, node_b)
        return [
            (node_a.covering_rect(), pid),
            (node_b.covering_rect(), pid_b),
        ]

    @staticmethod
    def _choose_child(node: RTreeNode, rect: Rect) -> int:
        best = 0
        best_cost = None
        for i, child_rect in enumerate(node.rects):
            cost = (child_rect.enlargement(rect), child_rect.area())
            if best_cost is None or cost < best_cost:
                best = i
                best_cost = cost
        return best

    # ------------------------------------------------------------------
    # deletion (condense-free: empty nodes are pruned, no re-insert)
    # ------------------------------------------------------------------
    def delete(self, rid: int, rect: Rect) -> int:
        """Remove every stored piece of ``rid`` overlapping ``rect``.

        Returns the number of removed entries (clipped objects may have
        several). Nodes left empty are pruned; partial underflow is
        tolerated (documented deviation from Guttman's re-insertion).
        """
        if self.root is None:
            return 0
        removed = self._delete_rec(self.root, self.height, rid, rect)
        self.size -= removed
        if removed and self.height > 1:
            root_node = self._read(self.root)
            if root_node.count == 1 and root_node.kind == INTERNAL_KIND:
                old = self.root
                self.root = root_node.pointers[0]
                self.height -= 1
                self._free(old)
            elif root_node.count == 0:
                self._free(self.root)
                self.root = None
                self.height = 0
        elif removed and self.size == 0 and self.root is not None:
            self._free(self.root)
            self.root = None
            self.height = 0
        return removed

    def _delete_rec(self, pid: int, level: int, rid: int, rect: Rect) -> int:
        node = self._read(pid)
        removed = 0
        if level == 1:
            keep_rects: list[Rect] = []
            keep_ptrs: list[int] = []
            for r, p in zip(node.rects, node.pointers):
                if p == rid and r.intersects(rect):
                    removed += 1
                else:
                    keep_rects.append(r)
                    keep_ptrs.append(p)
            if removed:
                node.rects = keep_rects
                node.pointers = keep_ptrs
                self._write(pid, node)
            return removed
        keep_rects = []
        keep_ptrs = []
        changed = False
        for r, p in zip(node.rects, node.pointers):
            if r.intersects(rect):
                sub_removed = self._delete_rec(p, level - 1, rid, rect)
                if sub_removed:
                    removed += sub_removed
                    child = self._read(p)
                    if child.count == 0:
                        self._free(p)
                        changed = True
                        continue
                    keep_rects.append(child.covering_rect())
                    keep_ptrs.append(p)
                    changed = True
                    continue
            keep_rects.append(r)
            keep_ptrs.append(p)
        if changed:
            node.rects = keep_rects
            node.pointers = keep_ptrs
            self._write(pid, node)
        return removed

    # ------------------------------------------------------------------
    # searches
    # ------------------------------------------------------------------
    def search_rect(self, query: Rect) -> set[int]:
        """Rids whose stored MBR (piece) intersects the query box."""
        result: set[int] = set()
        if self.root is None:
            return result
        stack = [(self.root, self.height)]
        while stack:
            pid, level = stack.pop()
            node = self._read(pid)
            for r, p in zip(node.rects, node.pointers):
                if not r.intersects(query):
                    continue
                if level == 1:
                    result.add(p)
                else:
                    stack.append((p, level - 1))
        return result

    def search_halfplane(
        self,
        slope: Sequence[float] | float,
        intercept: float,
        theta: Theta,
        query_type: str = "EXIST",
    ) -> HalfPlaneCandidates:
        """Candidates for EXIST/ALL against ``x_d θ slope·x' + intercept``.

        As the paper observes, the R+-tree must approximate an ALL
        selection by an EXIST traversal: every object whose MBR meets the
        half-plane is a candidate and must be refined. For EXIST, pieces
        entirely inside the half-plane are confirmed for free.
        """
        if query_type not in ("ALL", "EXIST"):
            raise QueryError(f"query type must be ALL or EXIST, got {query_type!r}")
        if isinstance(slope, (int, float)):
            slope = (float(slope),)
        result = HalfPlaneCandidates()
        if self.root is None:
            return result
        stack = [(self.root, self.height)]
        while stack:
            pid, level = stack.pop()
            node = self._read(pid)
            obs.incr("rtree.node_visits")
            obs.incr("comparisons", node.count)
            for r, p in zip(node.rects, node.pointers):
                if not r.intersects_halfplane(slope, intercept, theta):
                    continue
                if level > 1:
                    stack.append((p, level - 1))
                elif (
                    query_type == "EXIST"
                    and self.pieces_are_tight
                    and r.inside_halfplane(
                        slope, intercept, theta,
                        tol=-self._confirm_margin(r, slope),
                    )
                ):
                    # Strictly inside by more than the float32 coordinate
                    # rounding of the stored MBR: safe to confirm without
                    # fetching the record.
                    result.confirmed.add(p)
                else:
                    result.to_refine.add(p)
        result.to_refine -= result.confirmed
        return result

    def _confirm_margin(self, rect: Rect, slope: Sequence[float]) -> float:
        """Upper bound on the query-functional error caused by the
        outward float32 rounding of stored MBR coordinates, plus the
        oracle tolerance — the safety band for refinement-free accepts."""
        if self.codec.key_bytes == 8:
            return 1e-6
        eps = 2.4e-7  # two float32 ULP steps, relative
        extent = sum(
            abs(s) * max(abs(lo), abs(hi))
            for s, lo, hi in zip(slope, rect.lows, rect.highs)
        )
        extent += max(abs(rect.lows[-1]), abs(rect.highs[-1]))
        return eps * extent + 1e-6

    # ------------------------------------------------------------------
    # introspection / verification
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[tuple[int, Rect]]:
        """All stored (rid, piece-MBR) entries."""
        if self.root is None:
            return
        stack = [(self.root, self.height)]
        while stack:
            pid, level = stack.pop()
            node = self._read(pid)
            if level == 1:
                yield from zip(node.pointers, node.rects)
            else:
                stack.extend((p, level - 1) for p in node.pointers)

    def check_invariants(self) -> None:
        """Verify covering rectangles and node fill on every path."""
        if self.root is None:
            if self.size != 0:
                raise IndexError_("empty tree with non-zero size")
            return
        self._check_node(self.root, self.height)

    def _check_node(self, pid: int, level: int) -> Rect:
        node = self._read(pid)
        if node.count == 0:
            raise IndexError_(f"empty node {pid}")
        if node.count > self.layout.capacity:
            raise IndexError_(f"overfull node {pid}")
        expected_kind = LEAF_KIND if level == 1 else INTERNAL_KIND
        if node.kind != expected_kind:
            raise IndexError_(f"node {pid} kind mismatch at level {level}")
        if level > 1:
            for i, (r, p) in enumerate(zip(node.rects, node.pointers)):
                actual = self._check_node(p, level - 1)
                if not r.contains_rect(actual, tol=1e-5):
                    raise IndexError_(
                        f"node {pid} child {i} rect does not cover subtree"
                    )
        return node.covering_rect()


def _quadratic_split(
    rects: list[Rect], pointers: list[int]
) -> tuple[list[tuple[Rect, int]], list[tuple[Rect, int]]]:
    """Guttman's quadratic split of an overfull entry list."""
    entries = list(zip(rects, pointers))
    n = len(entries)
    # Pick the pair wasting the most area as seeds.
    worst = (0, 1)
    worst_waste = None
    for i in range(n):
        for j in range(i + 1, n):
            waste = (
                entries[i][0].union(entries[j][0]).area()
                - entries[i][0].area()
                - entries[j][0].area()
            )
            if worst_waste is None or waste > worst_waste:
                worst_waste = waste
                worst = (i, j)
    group_a = [entries[worst[0]]]
    group_b = [entries[worst[1]]]
    rect_a = entries[worst[0]][0]
    rect_b = entries[worst[1]][0]
    rest = [e for idx, e in enumerate(entries) if idx not in worst]
    minimum = max(1, n // 3)
    for idx, entry in enumerate(rest):
        remaining = len(rest) - idx
        if len(group_a) + remaining <= minimum:
            group_a.append(entry)
            rect_a = rect_a.union(entry[0])
            continue
        if len(group_b) + remaining <= minimum:
            group_b.append(entry)
            rect_b = rect_b.union(entry[0])
            continue
        grow_a = rect_a.enlargement(entry[0])
        grow_b = rect_b.enlargement(entry[0])
        if (grow_a, rect_a.area(), len(group_a)) <= (
            grow_b,
            rect_b.area(),
            len(group_b),
        ):
            group_a.append(entry)
            rect_a = rect_a.union(entry[0])
        else:
            group_b.append(entry)
            rect_b = rect_b.union(entry[0])
    return group_a, group_b
