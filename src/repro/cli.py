"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library, configuration and experiment overview.
``demo``
    Run the Example 2.1 quickstart inline.
``figure --id 8a|8b|9a|9b|10 [--full]``
    Regenerate one of the paper's figures and print the series.
``query --tuples FILE --type ALL|EXIST --slope A --intercept B [--theta GE|LE]``
    Index a relation read from a text file (one generalized tuple per
    line, ``#`` comments allowed) and run a single half-plane query.
``trace ...``
    Same arguments as ``query``, but runs it under a
    :class:`repro.obs.QueryTrace` and prints the span tree — per-phase
    logical/physical I/O and wall times (``--json`` for the raw trace).
``batch --tuples FILE --queries FILE [--shards N --build-workers M]``
    Index a relation and answer a whole query file through the batch
    execution engine (:mod:`repro.exec`): merged sweeps for
    restricted-slope groups, vectorized dual evaluation elsewhere, LRU
    result caching — with a shared-work page-access summary.
    ``--shards N`` partitions the relation across N independent shards
    (:mod:`repro.shard`) and fans the batch out; ``--build-workers M``
    computes build keys on an M-process pool.
``explain [--workload fig9-medium | --tuples FILE --queries FILE] [--shards N]``
    Run one query workload under a trace and print the explain report:
    the span tree, exclusive per-phase page/time attribution (checked
    to sum to the inclusive total), B+-tree descent heights, buffer hit
    ratios, cache outcomes, and per-shard work rows. ``--chrome-out``
    exports a Perfetto-openable Chrome trace, ``--events-out`` a JSONL
    event dump.
``stats [--n N --size small|medium --k K --queries Q --shards S --build-workers W]``
    Run a query batch and print the metrics-registry snapshot
    (includes the batch executor's ``exec_*`` cache counters and, with
    ``--shards``/``--build-workers``, the merged ``shard=i``/
    ``worker=j`` fleet series). ``--format prom`` emits Prometheus text
    exposition instead of JSON.
``bench-diff BASELINE CURRENT [--threshold F --mode ceiling|floor]``
    Per-counter delta report between two bench/smoke JSON artifacts;
    exits non-zero when a counter regresses beyond the threshold.
    ``--mode floor`` inverts the gate for throughput counters
    (falling below baseline fails) — the CI QPS-floor leg runs it
    against ``benchmarks/baselines/qps.json``.
``overhead [--budget F --repeats N]``
    Measure traced vs untraced query wall time (best-of-N) and fail
    when tracing exceeds the fractional budget.
``smoke [--out FILE --baseline FILE --update-baseline --shards N --build-workers M]``
    The CI perf-smoke gate (see :mod:`repro.bench.smoke`). The baseline
    lives at ``benchmarks/baselines/smoke.json`` relative to the
    repository root; ``--baseline PATH`` overrides the convention.
``shard-bench [--out FILE --n N --size small|medium --k K --repeats R]``
    Build-throughput (1 vs 4 workers) and sharded query-side QPS
    (1/2/4 shards, wall + critical-path span) benchmark on the
    fig9-medium workload; writes ``BENCH_shard.json`` and fails unless
    4-shard critical-path QPS beats 1-shard
    (see :mod:`repro.bench.shard_bench`).
``vector-bench [--out FILE --n N --size small|medium --k K --repeats R]``
    Columnar-vs-scalar batch throughput on the fig9-medium slope-group
    fan; asserts identical answers and page accounting, writes
    ``BENCH_vector.json`` whose ``counters`` section feeds the CI
    QPS-floor gate (see :mod:`repro.bench.vector_bench`).
``tune --data-dir DIR (--queries FILE | --slope-log FILE) [--k K --apply --out DIR]``
    Adaptive slope-set tuning (:mod:`repro.tune`): learn a slope set
    from observed query slopes (a query file, or a slope-log snapshot
    JSON), price it against the engine's current set with the
    Theorem 4.1/4.2 cost model, and report the predicted win. With
    ``--apply``, rebuild the engine under the learned set into a *new*
    data directory ``--out`` (the source directory is untouched —
    rollback is keeping the old path). Answers are preserved
    bit-exactly; only page counts change.
``tune-bench [--out FILE --n N --size small|medium --k K --seed S --queries Q --repeats R]``
    Fixed-``S`` vs learned-``S`` ablation on fig9-medium under skewed
    and uniform slope traffic; asserts bit-identical answers, writes
    ``BENCH_tune.json`` whose ``counters`` feed the CI floor gate
    against ``benchmarks/baselines/tune.json``
    (see :mod:`repro.bench.tune_bench`).
``fuzz [--seed N --budget 30s --out DIR --replay FILE --fault-demo]``
    Differential fuzzing (:mod:`repro.verify`): cross-check every query
    path against the geometric and LP oracles on randomized +
    adversarial workloads within a time budget; failing cases are
    minimised to replayable JSON repros in ``--out``. ``--replay FILE``
    re-runs one repro; ``--fault-demo`` runs the fault-injection
    scenario. Exit code 1 on any disagreement.
``slowlog LOG [--by latency|pages --entry N --replay --data-dir DIR]``
    Inspect a slow-query log dump (the ``--slowlog-out`` JSONL a server
    writes on shutdown, or a ``kind=slowlog`` repro JSON). Default:
    worst-first listing. ``--replay`` re-executes the selected entry
    against its engine and exits 1 unless the recorded answer digest
    and page accounting reproduce bit-identically
    (:mod:`repro.verify.slowlog_replay`); ``--repro-out DIR`` converts
    the entry to the differential fuzzer's repro format instead.
``top --metrics-port P [--host H --interval S --iterations N --once]``
    Refresh-loop terminal view over a serving process's ``/metrics`` +
    ``/slowlog``: QPS, p50/p99, pages/query, predicted-vs-actual cost
    ratio, watchdog violations, WAL/checkpoint lag, tune status
    (:mod:`repro.serve.top`).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Dual-representation indexing for linear constraint databases "
            "(Bertino, Catania & Chidlovskii, ICDE 1999 — reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and experiment overview")
    sub.add_parser("demo", help="run the Example 2.1 quickstart")

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "--id",
        required=True,
        choices=["8a", "8b", "9a", "9b", "10"],
        help="figure identifier",
    )
    figure.add_argument(
        "--full", action="store_true", help="paper-scale parameter sweep"
    )
    figure.add_argument(
        "--chart", action="store_true", help="also render an ASCII chart"
    )

    for name, help_text in (
        ("query", "query a relation from a file"),
        ("trace", "query a relation from a file, printing the span tree"),
    ):
        cmd = sub.add_parser(
            name,
            help=help_text,
            description=(
                f"{help_text}. File paths are resolved relative to the "
                "current working directory (the conventional layout keeps "
                "tuple files under the repository root, next to "
                "benchmarks/baselines/ where the smoke gate keeps its "
                "baseline)."
            ),
        )
        cmd.add_argument(
            "--tuples", required=True,
            help="tuple file path (one generalized tuple per line, "
                 "# comments allowed)",
        )
        cmd.add_argument(
            "--type", required=True, choices=["ALL", "EXIST"],
            help="selection type",
        )
        cmd.add_argument(
            "--slope", type=float, required=True,
            help="query slope (the s of y θ s·x + b)",
        )
        cmd.add_argument(
            "--intercept", type=float, required=True,
            help="query intercept (the b of y θ s·x + b)",
        )
        cmd.add_argument(
            "--theta", default="GE", choices=["GE", "LE"],
            help="comparison operator (default GE)",
        )
        cmd.add_argument(
            "--slopes",
            default=None,
            help="comma-separated predefined slope set (default: 3 uniform)",
        )
    sub.choices["trace"].add_argument(
        "--json", action="store_true",
        help="emit the trace as JSON instead of the rendered tree",
    )

    batch = sub.add_parser(
        "batch",
        help="answer a whole query file through the batch engine",
        description=(
            "Index a relation and answer every query in a query file "
            "with the batch execution engine (merged B+-tree sweeps, "
            "vectorized dual evaluation, LRU result cache). Query file "
            "format: one query per line, `ALL|EXIST <slope> <intercept> "
            "<GE|LE>`, # comments allowed."
        ),
    )
    batch.add_argument(
        "--tuples", default=None,
        help="tuple file path (one generalized tuple per line); omit "
             "with --data-dir to reopen a saved engine instead",
    )
    batch.add_argument(
        "--queries", required=True,
        help="query file path (`ALL|EXIST <slope> <intercept> <GE|LE>` "
             "per line)",
    )
    batch.add_argument(
        "--data-dir", default=None,
        help="durable engine directory: with --tuples, save the built "
             "engine there after answering; without --tuples, open the "
             "saved engine from there (no rebuild)",
    )
    batch.add_argument(
        "--slopes", default=None,
        help="comma-separated predefined slope set (default: 3 uniform)",
    )
    batch.add_argument(
        "--workers", type=int, default=0,
        help="thread-pool width for independent slope groups (default 0 "
             "= sequential)",
    )
    batch.add_argument(
        "--json", action="store_true",
        help="emit per-query answers and the batch summary as JSON",
    )
    batch.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition the relation across N independent shards "
             "and fan the batch out (default 1 = single engine)",
    )
    batch.add_argument(
        "--build-workers", type=int, default=0,
        help="worker processes for the index build (default 0 = serial; "
             ">=2 computes keys on a process pool — same index bytes)",
    )

    explain = sub.add_parser(
        "explain",
        help="trace one workload and print checked per-phase attribution",
        description=(
            "Run a query workload under a QueryTrace and print the "
            "explain report: span tree, exclusive per-phase page/time "
            "attribution (asserted to sum to the inclusive total, "
            "per-shard pagers included), B+-tree descent heights, "
            "buffer hit ratios, and cache outcomes. Choose the workload "
            "with --workload (a named harness preset) or --tuples/"
            "--queries files."
        ),
    )
    explain.add_argument(
        "--workload", default=None, choices=["fig9-medium", "smoke"],
        help="named harness workload (fig9-medium: n=2000 medium; "
             "smoke: n=500 small)",
    )
    explain.add_argument(
        "--tuples", default=None,
        help="tuple file path (alternative to --workload)",
    )
    explain.add_argument(
        "--queries", default=None,
        help="query file path (`ALL|EXIST <slope> <intercept> <GE|LE>` "
             "per line); with --workload, harness queries are used",
    )
    explain.add_argument(
        "--count", type=int, default=1,
        help="harness queries per selection type (default 1)",
    )
    explain.add_argument(
        "--slopes", default=None,
        help="comma-separated predefined slope set (file workloads only)",
    )
    explain.add_argument(
        "--shards", type=int, default=1,
        help="run against a sharded engine with N shards (per-shard "
             "rows appear in the report)",
    )
    explain.add_argument(
        "--build-workers", type=int, default=0,
        help="worker processes for the index build",
    )
    explain.add_argument(
        "--batch", action="store_true",
        help="route through the batch executor instead of per-query",
    )
    explain.add_argument(
        "--chrome-out", default=None,
        help="also export a Chrome trace-event JSON (open in Perfetto)",
    )
    explain.add_argument(
        "--events-out", default=None,
        help="also dump the span events as JSONL",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the raw trace JSON instead of the rendered report",
    )
    explain.add_argument(
        "--data-dir", default=None,
        help="open a saved engine from this directory instead of "
             "building one (needs --queries; excludes --workload/"
             "--tuples)",
    )

    stats = sub.add_parser(
        "stats", help="run a query batch and print the metrics registry"
    )
    stats.add_argument("--n", type=int, default=500, help="relation size")
    stats.add_argument("--size", default="small", choices=["small", "medium"])
    stats.add_argument("--k", type=int, default=3, help="slope-set size")
    stats.add_argument(
        "--queries", type=int, default=4, help="queries per selection type"
    )
    stats.add_argument(
        "--format", default="json", choices=["json", "prom"],
        help="output format: registry JSON (default) or Prometheus "
             "text exposition",
    )
    stats.add_argument(
        "--shards", type=int, default=1,
        help="also run the sharded smoke leg; its per-shard series "
             "merge into the output as shard_*{shard=i}",
    )
    stats.add_argument(
        "--build-workers", type=int, default=0,
        help="worker processes for the build leg; pool workers report "
             "build_worker_*{worker=j} series",
    )
    stats.add_argument(
        "--data-dir", default=None,
        help="also run the durable save/open leg under this directory; "
             "its WAL/checkpoint counters (wal_appends, wal_fsyncs, "
             "checkpoint_pages) join the output",
    )

    smoke = sub.add_parser(
        "smoke",
        help="CI perf-smoke: fixed workload gated on a baseline",
        description=(
            "Run the fixed perf-smoke workload and gate its page-access "
            "counters on a checked-in baseline. By convention the "
            "baseline lives at benchmarks/baselines/smoke.json relative "
            "to the repository root (resolved from the working directory "
            "or the checkout); --baseline PATH overrides the convention."
        ),
    )
    smoke.add_argument(
        "--out", default=None,
        help="where to write the metrics JSON (default BENCH_smoke.json)",
    )
    smoke.add_argument(
        "--baseline", default=None,
        help="baseline file to gate against (default: the "
             "benchmarks/baselines/smoke.json convention)",
    )
    smoke.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    smoke.add_argument(
        "--shards", type=int, default=1,
        help="also run a sharded-engine smoke leg with N shards",
    )
    smoke.add_argument(
        "--build-workers", type=int, default=0,
        help="worker processes for the smoke build leg",
    )
    smoke.add_argument(
        "--data-dir", default=None,
        help="run the whole workload file-backed (REPRO_DATA_DIR) under "
             "this directory and add a durable save/open leg whose "
             "answers must match the live engine",
    )

    shard_bench = sub.add_parser(
        "shard-bench",
        help="build-throughput + sharded-QPS benchmark (BENCH_shard.json)",
        description=(
            "Benchmark the sharded dual-transform engine on the "
            "fig9-medium workload: full-index build wall time at 1 vs 4 "
            "workers, and batch query throughput at 1/2/4 shards with a "
            "correctness check against the unsharded planner. Writes "
            "BENCH_shard.json."
        ),
    )
    shard_bench.add_argument(
        "--out", default=None,
        help="where to write the JSON payload (default BENCH_shard.json)",
    )
    shard_bench.add_argument("--n", type=int, default=None,
                             help="relation size (default 2000)")
    shard_bench.add_argument("--size", default=None,
                             choices=["small", "medium"])
    shard_bench.add_argument("--k", type=int, default=None,
                             help="slope count (default 3)")
    shard_bench.add_argument("--seed", type=int, default=None,
                             help="workload seed")
    shard_bench.add_argument(
        "--repeats", type=int, default=None,
        help="timed build attempts per worker count (best-of; default 2)",
    )

    vector_bench = sub.add_parser(
        "vector-bench",
        help="columnar-vs-scalar batch QPS benchmark (BENCH_vector.json)",
        description=(
            "Benchmark the columnar B+-tree hot path against the scalar "
            "engine on the fig9-medium slope-group fan batch. Answers "
            "and page accounting are asserted identical between the two "
            "engines (exit 1 on divergence). Writes BENCH_vector.json; "
            "its counters section feeds `repro bench-diff --mode floor` "
            "in the CI QPS gate."
        ),
    )
    vector_bench.add_argument(
        "--out", default=None,
        help="where to write the JSON payload (default BENCH_vector.json)",
    )
    vector_bench.add_argument("--n", type=int, default=None,
                              help="relation size (default 2000)")
    vector_bench.add_argument("--size", default=None,
                              choices=["small", "medium"])
    vector_bench.add_argument("--k", type=int, default=None,
                              help="slope count (default 3)")
    vector_bench.add_argument("--seed", type=int, default=None,
                              help="workload seed")
    vector_bench.add_argument(
        "--repeats", type=int, default=None,
        help="timed attempts per engine (best-of; default 5)",
    )

    bench_diff = sub.add_parser(
        "bench-diff",
        help="diff two bench/smoke JSON artifacts, gate on regressions",
        description=(
            "Per-counter delta report between two bench artifacts "
            "(MetricsRegistry.collect() documents or flat key->number "
            "maps). A counter above baseline x (1 + threshold), or a "
            "baseline counter missing from the current run, is a "
            "regression (exit 1). New counters never fail."
        ),
    )
    bench_diff.add_argument("baseline", help="baseline artifact (JSON)")
    bench_diff.add_argument("current", help="current artifact (JSON)")
    bench_diff.add_argument(
        "--threshold", type=float, default=0.0,
        help="fractional regression allowance (default 0)",
    )
    bench_diff.add_argument(
        "--mode", choices=["ceiling", "floor"], default="ceiling",
        help="ceiling: rises fail (costs, default); floor: falls fail "
             "(throughput)",
    )

    overhead = sub.add_parser(
        "overhead",
        help="gate tracing wall-time overhead against a budget",
        description=(
            "Run the smoke query workload traced and untraced (best-of-N "
            "each) and fail when the traced run exceeds the untraced one "
            "by more than the fractional budget plus a small absolute "
            "slack."
        ),
    )
    overhead.add_argument("--budget", type=float, default=0.05,
                          help="max fractional overhead (default 0.05)")
    overhead.add_argument("--repeats", type=int, default=5,
                          help="best-of repeats per mode (default 5)")
    overhead.add_argument(
        "--serve", action="store_true",
        help="gate the serve path's request tracing (embedded server, "
             "closed-loop load) instead of the in-process span hooks",
    )
    overhead.add_argument(
        "--requests", type=int, default=400,
        help="--serve: closed-loop requests per timed run (default 400)",
    )
    overhead.add_argument(
        "--concurrency", type=int, default=8,
        help="--serve: closed-loop connections (default 8)",
    )
    overhead.add_argument(
        "--trace-sample", type=int, default=16,
        help="--serve: span-tree cadence in the traced run (default 16)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of all query paths vs two oracles",
        description=(
            "Run the repro.verify differential runner: randomized + "
            "adversarial workloads through the exact sweeps, T1/T2, the "
            "R+-tree baseline, the vectorized surface and the batch "
            "executor (cache cold and hot), cross-checked against the "
            "geometric and LP oracles, with invariant, mutation and "
            "fault-injection rounds. Failing cases are minimised to "
            "replayable JSON repro files."
        ),
    )
    fuzz.add_argument("--seed", type=int, default=0, help="master seed")
    fuzz.add_argument(
        "--budget", default="10s",
        help="time budget, e.g. 30s, 2m, 0.5h (default 10s)",
    )
    fuzz.add_argument(
        "--out", default="fuzz-repros",
        help="directory for minimised repro JSON files",
    )
    fuzz.add_argument(
        "--tuples", type=int, default=14, help="tuples per round"
    )
    fuzz.add_argument(
        "--queries", type=int, default=12, help="queries per round"
    )
    fuzz.add_argument(
        "--replay", default=None,
        help="re-run one repro JSON file instead of fuzzing",
    )
    fuzz.add_argument(
        "--fault-demo", action="store_true",
        help="run the fault-injection scenario and write its repro",
    )
    fuzz.add_argument(
        "--recovery-demo", action="store_true",
        help="crash a durable engine mid-WAL-append and mid-checkpoint, "
             "reopen each from disk, require the oracle to accept, and "
             "write replayable repros + the crashed data directories",
    )

    save = sub.add_parser(
        "save",
        help="build an index from a tuple file and persist it durably",
        description=(
            "Build a dual-index engine (or a sharded one with --shards) "
            "from a tuple file and save it to a data directory — page "
            "file, free list, WAL, and catalog (format: docs/"
            "STORAGE.md). The directory reopens with `repro open` or "
            "`repro batch --data-dir` without rebuilding."
        ),
    )
    save.add_argument(
        "--tuples", required=True,
        help="tuple file path (one generalized tuple per line)",
    )
    save.add_argument(
        "--data-dir", required=True,
        help="target directory for the durable engine",
    )
    save.add_argument(
        "--slopes", default=None,
        help="comma-separated predefined slope set (default: 3 uniform)",
    )
    save.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition across N shards (default 1)",
    )
    save.add_argument(
        "--build-workers", type=int, default=0,
        help="worker processes for the index build",
    )

    open_cmd = sub.add_parser(
        "open",
        help="open a saved engine from disk and print its catalog",
        description=(
            "Open a durable engine directory written by `repro save` (or "
            "the save APIs) without rebuilding: replay the WAL up to the "
            "catalog's commit point and print what was restored. With "
            "--queries, also answer a query file through the reopened "
            "engine."
        ),
    )
    open_cmd.add_argument(
        "--data-dir", required=True,
        help="durable engine directory to open",
    )
    open_cmd.add_argument(
        "--queries", default=None,
        help="optional query file (`ALL|EXIST <slope> <intercept> "
             "<GE|LE>` per line) to answer through the reopened engine",
    )
    open_cmd.add_argument(
        "--json", action="store_true",
        help="emit the summary (and any answers) as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="serve a saved engine over the length-prefixed JSON protocol",
        description=(
            "Run the asyncio query server over an engine directory "
            "written by `repro save`: concurrent queries coalesce into "
            "batch-executor calls, a bounded queue answers OVERLOADED "
            "past capacity, SIGHUP reloads the index with draining, and "
            "the WAL auto-checkpoints past a size threshold. Protocol "
            "spec and semantics: docs/SERVING.md."
        ),
    )
    serve.add_argument(
        "--data-dir", required=True,
        help="durable engine directory to serve",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7399,
        help="query port (0 binds an ephemeral port; default 7399)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="HTTP sidecar port for GET /metrics (Prometheus text) "
             "and /healthz; off unless given",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="coalesce at most N queries per executor batch (default 64)",
    )
    serve.add_argument(
        "--max-delay", type=float, default=0.002,
        help="hold a query at most S seconds awaiting batch-mates "
             "(default 0.002)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=256,
        help="in-flight requests beyond this get OVERLOADED (default 256)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=5.0,
        help="drop a connection whose partial frame stalls S seconds",
    )
    serve.add_argument(
        "--wal-checkpoint-mb", type=float, default=4.0,
        help="auto-checkpoint when the WAL exceeds this many MiB "
             "(default 4)",
    )
    serve.add_argument(
        "--events-out", default=None,
        help="write the event ring as JSONL on shutdown (trace artifact)",
    )
    serve.add_argument(
        "--auto-tune", action="store_true",
        help="periodically learn a slope set from served traffic and "
             "hot-swap a rebuilt engine when the cost model predicts "
             "a win (the tune op stays available either way)",
    )
    serve.add_argument(
        "--tune-interval", type=float, default=5.0,
        help="seconds between auto-tune checks (default 5)",
    )
    serve.add_argument(
        "--tune-min-evidence", type=int, default=64,
        help="logged queries required before a tune decision (default 64)",
    )
    serve.add_argument(
        "--trace-sample", type=int, default=0,
        help="request tracing: 0 = off (bit-identical request path); "
             "N >= 1 traces every request (id + cost watchdog + "
             "slow-query log) and records a span tree every Nth",
    )
    serve.add_argument(
        "--slowlog-capacity", type=int, default=32,
        help="slow-query log worst-N capacity per ranking (default 32)",
    )
    serve.add_argument(
        "--slowlog-out", default=None,
        help="write the slow-query log as JSONL on shutdown "
             "(replayable via `repro slowlog --replay`)",
    )
    serve.add_argument(
        "--trace-out", default=None,
        help="write the most recent sampled span tree as JSON on "
             "shutdown (CI artifact)",
    )
    serve.add_argument(
        "--cost-budget", type=float, default=4.0,
        help="cost watchdog: actual/predicted page ratio above this "
             "counts a violation (default 4.0)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running server and report QPS + latency as JSON",
        description=(
            "Closed-loop (default): N connections each wait for their "
            "answer before the next query — the model CI pins. "
            "Open-loop: fire at a fixed --rate regardless of "
            "completions, which is what pushes the server into "
            "OVERLOADED backpressure."
        ),
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument(
        "--mode", choices=("closed", "open"), default="closed")
    loadgen.add_argument(
        "--requests", type=int, default=1000,
        help="total requests to issue (default 1000)",
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop connections / open-loop pool size (default 8)",
    )
    loadgen.add_argument(
        "--rate", type=float, default=1000.0,
        help="open-loop arrival rate in requests/s (default 1000)",
    )
    loadgen.add_argument(
        "--warmup", type=int, default=0,
        help="unmeasured warmup requests before the clock starts",
    )
    loadgen.add_argument(
        "--queries", default=None,
        help="query file (`ALL|EXIST <slope> <intercept> <GE|LE>` per "
             "line); default: the fig9-medium workload's query mix",
    )
    loadgen.add_argument(
        "--workload", choices=sorted(_EXPLAIN_WORKLOADS),
        default="fig9-medium",
        help="built-in query mix when --queries is absent",
    )
    loadgen.add_argument(
        "--out", default=None,
        help="also write the JSON report to this path",
    )
    loadgen.add_argument(
        "--trace", action="store_true",
        help="attach a client-minted trace id to every request (the "
             "server echoes it and links it into /metrics exemplars "
             "and the slow-query log)",
    )
    loadgen.add_argument(
        "--trace-sample", type=int, default=0,
        help="with --trace, ask for span-tree sampling every Nth "
             "request (default 0: server decides)",
    )

    slowlog = sub.add_parser(
        "slowlog",
        help="inspect or replay a slow-query log",
        description=(
            "Read a slow-query log written by `repro serve "
            "--slowlog-out` (or a /slowlog fetch saved to disk) and "
            "list its worst entries; with --replay, re-run an entry's "
            "query cold against its recorded engine and verify the "
            "answer digest, technique and per-query accounting "
            "bit-for-bit (exit 1 on divergence)."
        ),
    )
    slowlog.add_argument(
        "log", help="slow-query log JSONL (or a kind=slowlog repro JSON)")
    slowlog.add_argument(
        "--by", choices=("latency", "pages"), default="latency",
        help="ranking used for listing and --entry selection",
    )
    slowlog.add_argument(
        "--entry", type=int, default=0,
        help="entry index under the chosen ranking (default 0 = worst)",
    )
    slowlog.add_argument(
        "--replay", action="store_true",
        help="re-run the selected entry and compare against the record",
    )
    slowlog.add_argument(
        "--data-dir", default=None,
        help="engine directory override (default: the entry's recorded "
             "data_dir)",
    )
    slowlog.add_argument(
        "--repro-out", default=None,
        help="write the selected entry as a kind=slowlog repro JSON "
             "into this directory (replayable via `repro fuzz "
             "--replay`)",
    )
    slowlog.add_argument(
        "--json", action="store_true",
        help="print the selected entry (or replay findings) as JSON",
    )

    top = sub.add_parser(
        "top",
        help="live terminal view over a serving process",
        description=(
            "Refresh-loop view over the metrics sidecar (/metrics + "
            "/slowlog): QPS, p50/p99 latency, pages per query, the "
            "cost watchdog's predicted-vs-actual ratio, WAL/checkpoint "
            "lag, tune status and the worst slow-log entry. Rates are "
            "window-local (deltas between refreshes)."
        ),
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument(
        "--metrics-port", type=int, required=True,
        help="the server's --metrics-port",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N frames (default: run until interrupted)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single cumulative frame and exit",
    )

    tune = sub.add_parser(
        "tune",
        help="learn a slope set from observed traffic, optionally "
             "rebuild to it",
        description=(
            "Learn a slope set from observed query slopes, price it "
            "against the saved engine's current set, and report the "
            "predicted win. --apply rebuilds into a new --out data "
            "directory through the checkpoint path; the source "
            "directory is never written."
        ),
    )
    tune.add_argument(
        "--data-dir", required=True,
        help="saved engine directory to tune (read-only unless --apply)",
    )
    tune.add_argument(
        "--queries", default=None,
        help="query file (`ALL|EXIST <slope> <intercept> <GE|LE>` per "
             "line) as slope evidence",
    )
    tune.add_argument(
        "--slope-log", default=None,
        help="slope-log snapshot JSON (SlopeLogSnapshot.to_dict form) "
             "as slope evidence",
    )
    tune.add_argument(
        "--k", type=int, default=None,
        help="learned slope-set size (default: match the current set)",
    )
    tune.add_argument(
        "--apply", action="store_true",
        help="rebuild the engine under the learned set into --out",
    )
    tune.add_argument(
        "--out", default=None,
        help="target data directory for --apply (must not exist or be "
             "empty; must differ from --data-dir)",
    )
    tune.add_argument(
        "--json", action="store_true", help="emit the report as JSON",
    )

    tune_bench = sub.add_parser(
        "tune-bench",
        help="fixed-S vs learned-S ablation benchmark (BENCH_tune.json)",
        description=(
            "Answer skewed and uniform slope traffic on the fig9-medium "
            "relation with both the build-time slope set and one learned "
            "from that traffic's slope log; report page accesses, T1/T2 "
            "false hits and batch QPS per cell. Its counters section "
            "feeds `repro bench-diff --mode floor` against "
            "benchmarks/baselines/tune.json."
        ),
    )
    tune_bench.add_argument(
        "--out", default=None, help="write the JSON artifact here")
    tune_bench.add_argument("--n", type=int, default=None,
                            help="relation size (default 2000)")
    tune_bench.add_argument("--size", default=None,
                            choices=["small", "medium"])
    tune_bench.add_argument("--k", type=int, default=None,
                            help="slope-set size (default 3)")
    tune_bench.add_argument("--seed", type=int, default=None)
    tune_bench.add_argument("--queries", type=int, default=None,
                            help="queries per family (default 240)")
    tune_bench.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats, best-of (default 3)")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="end-to-end serve benchmark: build, save, serve, loadgen",
        description=(
            "Build the fig9-medium engine, save it to a temporary data "
            "directory, stand up an in-process server, run a "
            "closed-loop loadgen against it, and emit BENCH_serve.json "
            "(gated in CI via `repro bench-diff --mode floor` against "
            "benchmarks/baselines/serve.json)."
        ),
    )
    serve_bench.add_argument(
        "--out", default=None, help="write the metrics JSON here")
    serve_bench.add_argument(
        "--requests", type=int, default=2000,
        help="measured closed-loop requests (default 2000)",
    )
    serve_bench.add_argument(
        "--concurrency", type=int, default=16,
        help="closed-loop connections (default 16)",
    )
    serve_bench.add_argument(
        "--p99-budget-ms", type=float, default=250.0,
        help="fail if closed-loop p99 exceeds this (default 250 ms)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _info()
    if args.command == "demo":
        return _demo()
    if args.command == "figure":
        return _figure(args)
    if args.command == "query":
        return _query(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "batch":
        return _batch(args)
    if args.command == "explain":
        return _explain(args)
    if args.command == "stats":
        return _stats(args)
    if args.command == "bench-diff":
        from repro.bench import diff

        return diff.main(
            [args.baseline, args.current, "--threshold",
             str(args.threshold), "--mode", args.mode]
        )
    if args.command == "overhead":
        from repro.bench import overhead

        forwarded = [
            "--budget", str(args.budget), "--repeats", str(args.repeats)]
        if args.serve:
            forwarded += [
                "--serve", "--requests", str(args.requests),
                "--concurrency", str(args.concurrency),
                "--trace-sample", str(args.trace_sample)]
        return overhead.main(forwarded)
    if args.command == "smoke":
        return _smoke(args)
    if args.command == "shard-bench":
        return _shard_bench(args)
    if args.command == "vector-bench":
        return _vector_bench(args)
    if args.command == "tune":
        return _tune(args)
    if args.command == "tune-bench":
        return _tune_bench(args)
    if args.command == "fuzz":
        return _fuzz(args)
    if args.command == "save":
        return _save(args)
    if args.command == "open":
        return _open(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "loadgen":
        return _loadgen(args)
    if args.command == "slowlog":
        return _slowlog(args)
    if args.command == "top":
        return _top(args)
    if args.command == "serve-bench":
        from repro.bench import serve_bench

        return serve_bench.main(
            ["--requests", str(args.requests),
             "--concurrency", str(args.concurrency),
             "--p99-budget-ms", str(args.p99_budget_ms)]
            + (["--out", args.out] if args.out else [])
        )
    return 2  # pragma: no cover - argparse enforces choices


def _info() -> int:
    from repro.bench import PAPER_K_VALUES, PAPER_N_VALUES

    print(f"repro {__version__} — dual-representation constraint-database "
          f"indexing (ICDE 1999 reproduction)")
    print("subsystems: constraints, geometry, storage, btree, rtree, core, "
          "intervals, workloads, bench")
    print(f"paper sweep: N ∈ {PAPER_N_VALUES}, k ∈ {PAPER_K_VALUES}, "
          f"object classes small/medium, selectivity 10–15%")
    print("experiments: figures 8a 8b 9a 9b 10, Table 1 check, "
          "ablations A1–A7 (see benchmarks/)")
    return 0


def _demo() -> int:
    import runpy

    candidates = [
        os.path.join(os.getcwd(), "examples", "quickstart.py"),
        os.path.abspath(
            os.path.join(
                os.path.dirname(__file__), "..", "..", "examples",
                "quickstart.py",
            )
        ),
    ]
    for path in candidates:
        if os.path.exists(path):
            runpy.run_path(path, run_name="__main__")
            return 0
    print("examples/quickstart.py not found", file=sys.stderr)
    return 1


def _figure(args) -> int:
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    from repro.bench import (
        figure_8_9,
        figure_10,
        render_figure,
        render_figure_10,
    )
    from repro.core import ALL, EXIST

    if args.id == "10":
        print(render_figure_10(figure_10("small")))
        return 0
    size = "small" if args.id.startswith("8") else "medium"
    query_type = EXIST if args.id.endswith("a") else ALL
    series = figure_8_9(size, query_type)
    label = {"8a": "Figure 8(a)", "8b": "Figure 8(b)",
             "9a": "Figure 9(a)", "9b": "Figure 9(b)"}[args.id]
    print(
        render_figure(
            f"{label} — {query_type} selections, {size} objects "
            f"(index page accesses)",
            series,
        )
    )
    print()
    print(
        render_figure(
            f"{label} — total accesses incl. refinement",
            series,
            metric="total_accesses",
        )
    )
    if args.chart:
        from repro.bench.plotting import chart_figure

        print()
        print(chart_figure(series))
    return 0


def _load_workload(args):
    """Shared by ``query`` and ``trace``: (relation, planner, query)."""
    from repro.constraints import GeneralizedRelation, parse_tuple
    from repro.core import DualIndexPlanner, HalfPlaneQuery, SlopeSet

    relation = GeneralizedRelation(name=os.path.basename(args.tuples))
    with open(args.tuples) as handle:
        for line_no, line in enumerate(handle, 1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            relation.add(parse_tuple(text, dimension=2, label=f"line {line_no}"))
    if len(relation) == 0:
        return None, None, None
    if args.slopes:
        slopes = SlopeSet(float(v) for v in args.slopes.split(","))
    else:
        slopes = SlopeSet.uniform_angles(3)
    planner = DualIndexPlanner.build(relation, slopes)
    theta = ">=" if args.theta == "GE" else "<="
    query = HalfPlaneQuery(args.type, args.slope, args.intercept, theta)
    return relation, planner, query


def _query(args) -> int:
    relation, planner, query = _load_workload(args)
    if relation is None:
        print("no tuples found", file=sys.stderr)
        return 1
    result = planner.query(query)
    theta = query.theta.value
    print(f"query    : {args.type}(y {theta} {args.slope}·x + {args.intercept})")
    print(f"technique: {result.technique}")
    print(f"answers  : {len(result.ids)} of {len(relation)} tuples")
    for tid in sorted(result.ids):
        print(f"  - tuple {tid} ({relation.get(tid).label})")
    print(
        f"cost     : {result.page_accesses} page accesses "
        f"({result.candidates} candidates, {result.false_hits} false hits)"
    )
    return 0


def _trace(args) -> int:
    from repro.obs import QueryTrace, tracing

    relation, planner, query = _load_workload(args)
    if relation is None:
        print("no tuples found", file=sys.stderr)
        return 1
    trace = QueryTrace(
        pager=planner.index.pager,
        name=f"{args.type.lower()}({args.slope:g},{args.intercept:g})",
    )
    with tracing(trace):
        result = planner.query(query)
    if args.json:
        print(trace.export_json())
    else:
        print(trace.render())
        print()
        print(f"technique: {result.technique}; "
              f"{len(result.ids)} of {len(relation)} tuples; "
              f"{result.page_accesses} page accesses")
    return 0


def _load_relation(
    path: str,
    slopes_arg: str | None,
    build_workers: int = 0,
    shards: int = 1,
):
    """Parse a tuple file and build an engine (shared loader).

    Returns ``(relation, engine)`` where the engine is a
    :class:`DualIndexPlanner` or, with ``shards > 1``, a
    :class:`repro.shard.ShardedDualIndex` (same query surface)."""
    from repro.constraints import GeneralizedRelation, parse_tuple
    from repro.core import DualIndexPlanner, SlopeSet

    relation = GeneralizedRelation(name=os.path.basename(path))
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            relation.add(parse_tuple(text, dimension=2, label=f"line {line_no}"))
    if len(relation) == 0:
        return None, None
    if slopes_arg:
        slopes = SlopeSet(float(v) for v in slopes_arg.split(","))
    else:
        slopes = SlopeSet.uniform_angles(3)
    if shards > 1:
        from repro.shard import ShardedDualIndex

        return relation, ShardedDualIndex.build(
            relation, slopes, shards=shards, workers=build_workers
        )
    return relation, DualIndexPlanner.build(
        relation, slopes, workers=build_workers
    )


def _parse_query_file(path: str):
    """One query per line: ``ALL|EXIST <slope> <intercept> <GE|LE>``."""
    from repro.core import HalfPlaneQuery

    queries = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            parts = text.split()
            if len(parts) != 4 or parts[0] not in ("ALL", "EXIST"):
                raise SystemExit(
                    f"{path}:{line_no}: expected "
                    f"'ALL|EXIST <slope> <intercept> <GE|LE>', got {text!r}"
                )
            theta = {"GE": ">=", "LE": "<=", ">=": ">=", "<=": "<="}.get(
                parts[3]
            )
            if theta is None:
                raise SystemExit(
                    f"{path}:{line_no}: theta must be GE or LE, got "
                    f"{parts[3]!r}"
                )
            queries.append(
                HalfPlaneQuery(parts[0], float(parts[1]), float(parts[2]), theta)
            )
    return queries


def _batch(args) -> int:
    import json as json_mod

    from repro.exec import BatchExecutor

    if args.tuples is None:
        if args.data_dir is None:
            print("batch: need --tuples or --data-dir", file=sys.stderr)
            return 2
        from repro.storage import open_engine

        planner = open_engine(args.data_dir)
    else:
        relation, planner = _load_relation(
            args.tuples, args.slopes,
            build_workers=args.build_workers, shards=args.shards,
        )
        if relation is None:
            print("no tuples found", file=sys.stderr)
            return 1
        if args.data_dir is not None:
            from repro.storage import save_engine

            save_engine(planner, args.data_dir)
            print(f"saved engine to {args.data_dir}", file=sys.stderr)
    queries = _parse_query_file(args.queries)
    if not queries:
        print("no queries found", file=sys.stderr)
        return 1
    if hasattr(planner, "planners"):
        # The sharded facade owns per-shard batch executors and merges
        # their results/accounting.
        batch = planner.query_batch(queries)
    else:
        executor = BatchExecutor(planner, max_workers=args.workers)
        batch = executor.execute(queries)
    if args.json:
        print(json_mod.dumps(
            {
                "queries": [
                    {
                        "query": repr(query),
                        "ids": sorted(result.ids),
                        "technique": result.technique,
                        "cached": result.cached,
                    }
                    for query, result in zip(queries, batch.results)
                ],
                "page_accesses": batch.page_accesses,
                "cache_hits": batch.cache_hits,
                "cache_misses": batch.cache_misses,
                "exact_groups": batch.exact_groups,
                "vector_groups": batch.vector_groups,
                "sweep_leaves": batch.sweep_leaves,
                "refinement_pages": batch.refinement_pages,
            },
            indent=2,
        ))
        return 0
    for query, result in zip(queries, batch.results):
        suffix = " (cached)" if result.cached else ""
        print(f"{query!r} -> {sorted(result.ids)} "
              f"[{result.technique}{suffix}]")
    print(
        f"batch    : {len(queries)} queries, {batch.exact_groups} merged-"
        f"sweep groups + {batch.vector_groups} vectorized slope groups"
    )
    print(
        f"cost     : {batch.page_accesses} page accesses total "
        f"({batch.sweep_leaves} sweep leaves, "
        f"{batch.refinement_pages} refinement pages)"
    )
    print(f"cache    : {batch.cache_hits} hits, {batch.cache_misses} misses")
    return 0


#: Named harness workloads for ``repro explain``.
_EXPLAIN_WORKLOADS = {
    "fig9-medium": (2000, "medium", 3),
    "smoke": (500, "small", 3),
}


def _explain(args) -> int:
    import json as json_mod

    from repro.obs import explain as run_explain
    from repro.obs import render_explain
    from repro.obs.events import EventLog, log_trace
    from repro.obs.export import write_chrome_trace

    sources = [
        s for s in (args.workload, args.tuples, args.data_dir)
        if s is not None
    ]
    if len(sources) != 1:
        print("explain: give exactly one of --workload, --tuples or "
              "--data-dir", file=sys.stderr)
        return 2
    if args.data_dir is not None:
        if args.queries is None:
            print("explain: --data-dir needs --queries", file=sys.stderr)
            return 2
        from repro.storage import open_engine

        engine = open_engine(args.data_dir)
        queries = _parse_query_file(args.queries)
    elif args.workload is not None:
        from repro.bench import harness
        from repro.core import DualIndexPlanner, SlopeSet
        from repro.workloads import make_relation

        n, size, k = _EXPLAIN_WORKLOADS[args.workload]
        queries = []
        for qtype in ("EXIST", "ALL"):
            queries.extend(
                harness.queries_for(n, size, qtype, k, count=args.count)
            )
        if args.queries is not None:
            queries = _parse_query_file(args.queries)
        relation = make_relation(n, size, seed=harness.SEED)
        if args.shards > 1:
            from repro.shard import ShardedDualIndex

            engine = ShardedDualIndex.build(
                relation, SlopeSet.uniform_angles(k),
                shards=args.shards, workers=args.build_workers,
            )
        else:
            engine = DualIndexPlanner.build(
                relation, SlopeSet.uniform_angles(k),
                workers=args.build_workers,
            )
    else:
        if args.queries is None:
            print("explain: --tuples needs --queries", file=sys.stderr)
            return 2
        relation, engine = _load_relation(
            args.tuples, args.slopes,
            build_workers=args.build_workers, shards=args.shards,
        )
        if relation is None:
            print("no tuples found", file=sys.stderr)
            return 1
        queries = _parse_query_file(args.queries)
    if not queries:
        print("no queries found", file=sys.stderr)
        return 1

    report = run_explain(engine, queries, batch=args.batch)
    if args.json:
        print(json_mod.dumps(report.root.to_dict(), indent=2))
    else:
        print(render_explain(report))
    if args.chrome_out:
        write_chrome_trace(report.root, args.chrome_out)
        print(f"\nwrote chrome trace: {args.chrome_out} (open in Perfetto)")
    if args.events_out:
        log = EventLog()
        count = log_trace(log, report.root)
        log.write_jsonl(args.events_out)
        print(f"wrote {count} events: {args.events_out}")
    return 0


def _stats(args) -> int:
    from repro.bench.smoke import run_smoke
    from repro.obs import get_registry

    # The process-global registry, so fleet series merged from shard
    # and build-worker registries land in the same snapshot we print.
    registry = run_smoke(
        get_registry(), n=args.n, size=args.size, k=args.k,
        count=args.queries, shards=args.shards,
        build_workers=args.build_workers, data_dir=args.data_dir,
    )
    if args.format == "prom":
        sys.stdout.write(registry.export_prom())
    else:
        print(registry.export_json())
    return 0


def parse_budget(text: str) -> float:
    """Parse a time budget: plain seconds or ``30s`` / ``2m`` / ``0.5h``."""
    text = text.strip().lower()
    factor = 1.0
    if text and text[-1] in "smh":
        factor = {"s": 1.0, "m": 60.0, "h": 3600.0}[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise SystemExit(f"invalid --budget {text!r} (e.g. 30s, 2m, 0.5h)")
    if value <= 0:
        raise SystemExit("--budget must be positive")
    return value * factor


def _fuzz(args) -> int:
    from repro.verify import (
        FuzzConfig,
        replay_repro,
        run_fault_scenario,
        run_fuzz,
    )

    if args.replay:
        findings = replay_repro(args.replay)
        if findings:
            print(f"repro still fails: {len(findings)} finding(s)")
            for finding in findings:
                print(f"  - {finding}")
            return 1
        print("repro no longer reproduces (fixed, or fault fired cleanly)")
        return 0
    if args.fault_demo:
        error, path = run_fault_scenario(seed=args.seed, out_dir=args.out)
        print(f"injected fault surfaced as {type(error).__name__}: {error}")
        print(f"repro written: {path}")
        return 0
    if args.recovery_demo:
        from repro.verify import run_recovery_scenario

        paths = run_recovery_scenario(seed=args.seed, out_dir=args.out)
        print("crashed mid-WAL-append and mid-checkpoint; both reopened "
              "from disk and the differential oracle accepted")
        for path in paths:
            print(f"repro written: {path}")
        return 0
    config = FuzzConfig(
        seed=args.seed,
        budget_seconds=parse_budget(args.budget),
        n_tuples=args.tuples,
        queries_per_round=args.queries,
        out_dir=args.out,
    )
    report = run_fuzz(config)
    print(report.summary())
    for path in report.repro_paths:
        print(f"  repro: {path}")
    return 0 if report.ok else 1


def _smoke(args) -> int:
    from repro.bench import smoke

    argv: list[str] = []
    if args.out:
        argv += ["--out", args.out]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.shards != 1:
        argv += ["--shards", str(args.shards)]
    if args.build_workers:
        argv += ["--build-workers", str(args.build_workers)]
    if args.data_dir:
        argv += ["--data-dir", args.data_dir]
    return smoke.main(argv)


def _save(args) -> int:
    from repro.storage import save_engine

    relation, engine = _load_relation(
        args.tuples, args.slopes,
        build_workers=args.build_workers, shards=args.shards,
    )
    if relation is None:
        print("no tuples found", file=sys.stderr)
        return 1
    save_engine(engine, args.data_dir)
    kind = "sharded" if hasattr(engine, "planners") else "planner"
    print(f"saved {kind} engine ({len(relation)} tuples) to "
          f"{args.data_dir}")
    return 0


def _open(args) -> int:
    import json as json_mod

    from repro.storage import open_engine, read_catalog

    payload, seq, generation = read_catalog(args.data_dir)
    engine = open_engine(args.data_dir)
    if hasattr(engine, "planners"):
        planners = engine.planners
        summary = {
            "kind": "sharded",
            "shards": len(planners),
            "size": sum(p.index.size for p in planners),
            "pages": sum(
                p.index.pager.disk.allocated_pages for p in planners
            ),
        }
    else:
        planners = [engine]
        summary = {
            "kind": "planner",
            "technique": engine.technique,
            "size": engine.index.size,
            "pages": engine.index.pager.disk.allocated_pages,
            "slopes": list(engine.index.slopes),
            "commit_seq": seq,
            "catalog_generation": generation,
        }
    answers = None
    if args.queries:
        queries = _parse_query_file(args.queries)
        answers = [
            {"query": repr(q), "ids": sorted(engine.query(q).ids)}
            for q in queries
        ]
    if args.json:
        doc = dict(summary)
        if answers is not None:
            doc["answers"] = answers
        print(json_mod.dumps(doc, indent=2))
    else:
        for key, value in summary.items():
            print(f"{key:18}: {value}")
        if answers is not None:
            for entry in answers:
                print(f"{entry['query']} -> {entry['ids']}")
    if hasattr(engine, "close"):
        engine.close()
    for planner in planners:
        planner.index.pager.disk.close()
    return 0


def _shard_bench(args) -> int:
    from repro.bench import shard_bench

    argv: list[str] = []
    if args.out:
        argv += ["--out", args.out]
    if args.n is not None:
        argv += ["--n", str(args.n)]
    if args.size is not None:
        argv += ["--size", args.size]
    if args.k is not None:
        argv += ["--k", str(args.k)]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.repeats is not None:
        argv += ["--repeats", str(args.repeats)]
    return shard_bench.main(argv)


def _vector_bench(args) -> int:
    from repro.bench import vector_bench

    argv: list[str] = []
    if args.out:
        argv += ["--out", args.out]
    if args.n is not None:
        argv += ["--n", str(args.n)]
    if args.size is not None:
        argv += ["--size", args.size]
    if args.k is not None:
        argv += ["--k", str(args.k)]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.repeats is not None:
        argv += ["--repeats", str(args.repeats)]
    return vector_bench.main(argv)


def _tune(args) -> int:
    import json

    from repro.obs.slopelog import SlopeLog, SlopeLogSnapshot
    from repro.storage.checkpoint import open_planner
    from repro.tune import apply_tune, propose

    if bool(args.queries) == bool(args.slope_log):
        print("tune needs exactly one evidence source: --queries FILE "
              "or --slope-log FILE", file=sys.stderr)
        return 2
    if args.apply and not args.out:
        print("--apply needs --out DIR (the new data directory)",
              file=sys.stderr)
        return 2
    if args.slope_log:
        with open(args.slope_log, encoding="utf-8") as handle:
            snapshot = SlopeLogSnapshot.from_dict(json.load(handle))
    else:
        log = SlopeLog()
        for query in _parse_query_file(args.queries):
            for slope in query.slope:
                log.record(slope, query.query_type)
        snapshot = log.snapshot()
    planner = open_planner(args.data_dir)
    try:
        decision = propose(snapshot, planner.index.slopes, k=args.k)
    finally:
        planner.index.pager.disk.close()
    report = decision.to_dict()
    if args.apply:
        apply_tune(args.data_dir, args.out, decision.learned)
        report["applied_to"] = args.out
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    pred = decision.prediction
    print(f"current S: {', '.join(f'{s:g}' for s in decision.current)}")
    print(f"learned S: {', '.join(f'{s:g}' for s in decision.learned)}")
    print(f"evidence: {decision.evidence} logged slopes")
    print(f"predicted cost ratio: {pred['predicted_cost_ratio']:.3f} "
          f"(expected nearest-anchor distance "
          f"{pred['expected_distance_current']:.4f} -> "
          f"{pred['expected_distance_learned']:.4f} rad)")
    print(f"worthwhile: {decision.worthwhile}")
    if args.apply:
        print(f"rebuilt into {args.out} (answers preserved; source "
              f"directory untouched)")
    elif decision.worthwhile:
        print("run again with --apply --out DIR to rebuild")
    return 0


def _tune_bench(args) -> int:
    from repro.bench import tune_bench

    argv = []
    if args.out is not None:
        argv += ["--out", args.out]
    if args.n is not None:
        argv += ["--n", str(args.n)]
    if args.size is not None:
        argv += ["--size", args.size]
    if args.k is not None:
        argv += ["--k", str(args.k)]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.queries is not None:
        argv += ["--queries", str(args.queries)]
    if args.repeats is not None:
        argv += ["--repeats", str(args.repeats)]
    return tune_bench.main(argv)


def _serve(args) -> int:  # pragma: no cover - run-forever loop (CI leg)
    import asyncio

    from repro.serve.server import ServeConfig, serve_until_interrupted

    config = ServeConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        metrics_port=args.metrics_port,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        max_queue_depth=args.max_queue_depth,
        read_timeout=args.read_timeout,
        wal_checkpoint_bytes=int(args.wal_checkpoint_mb * (1 << 20)),
        auto_tune=args.auto_tune,
        tune_interval=args.tune_interval,
        tune_min_evidence=args.tune_min_evidence,
        trace_sample=args.trace_sample,
        slowlog_capacity=args.slowlog_capacity,
        slowlog_out=args.slowlog_out,
        trace_out=args.trace_out,
        cost_budget=args.cost_budget,
    )
    asyncio.run(serve_until_interrupted(config, events_out=args.events_out))
    return 0


def _loadgen_queries(args):
    if args.queries:
        return _parse_query_file(args.queries)
    from repro.bench.harness import queries_for

    n, size, k = _EXPLAIN_WORKLOADS[args.workload]
    return (queries_for(n, size, "EXIST", k, count=8)
            + queries_for(n, size, "ALL", k, count=8))


def _loadgen(args) -> int:
    import asyncio
    import json

    from repro.serve.loadgen import run_loadgen

    report = asyncio.run(run_loadgen(
        args.host,
        args.port,
        _loadgen_queries(args),
        mode=args.mode,
        requests=args.requests,
        concurrency=args.concurrency,
        rate=args.rate,
        warmup=args.warmup,
        trace=args.trace,
        trace_sample=args.trace_sample,
    ))
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0 if report["errors"] == 0 else 1


def _slowlog(args) -> int:
    import json

    from repro.verify.differential import write_repro
    from repro.verify.slowlog_replay import (
        entry_to_repro,
        load_entry,
        replay_entry,
    )

    entry = load_entry(args.log, index=args.entry, by=args.by)
    if args.repro_out:
        safe = "".join(
            ch if ch.isalnum() or ch in "-._" else "_"
            for ch in entry.trace_id)
        path = write_repro(
            entry_to_repro(entry, data_dir=args.data_dir),
            args.repro_out,
            f"slowlog-{safe}",
        )
        print(f"wrote {path}")
        return 0
    if args.replay:
        findings = replay_entry(entry, data_dir=args.data_dir)
        if args.json:
            print(json.dumps(findings, indent=2, sort_keys=True))
        elif findings:
            for finding in findings:
                print(json.dumps(finding, sort_keys=True))
        else:
            print(
                f"replayed {entry.trace_id}: answer "
                f"{entry.answer.get('count', '?')} ids "
                f"(digest {entry.answer.get('digest', '?')}), technique "
                f"{entry.technique}, accounting bit-identical")
        return 1 if findings else 0
    if args.json:
        print(json.dumps(entry.to_json(), indent=2, sort_keys=True))
        return 0
    print(f"{'trace_id':<22} {'lat_ms':>9} {'pages':>8} {'tech':>7} "
          f"{'ratio':>7}  reason")
    from repro.obs.slowlog import load_jsonl

    try:
        entries = load_jsonl(args.log)
    except (json.JSONDecodeError, KeyError):
        entries = [entry]
    key = {"latency": lambda e: e.latency_s,
           "pages": lambda e: e.pages}[args.by]
    for row in sorted(entries, key=key, reverse=True):
        ratio = f"{row.ratio:.2f}" if row.ratio is not None else "-"
        print(f"{row.trace_id:<22} {row.latency_s * 1e3:>9.2f} "
              f"{row.pages:>8.1f} {row.technique or '-':>7} "
              f"{ratio:>7}  {row.reason}")
    return 0


def _top(args) -> int:
    from repro.serve.top import run_top

    iterations = 1 if args.once else args.iterations
    try:
        return run_top(
            args.host, args.metrics_port,
            interval=args.interval, iterations=iterations,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    except OSError as exc:
        print(f"top: cannot reach {args.host}:{args.metrics_port}: {exc}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
