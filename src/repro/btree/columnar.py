"""Columnar decode cache for B+-tree pages (the vectorized hot path).

The scalar tree decodes every page it touches into Python lists —
``decode_leaf``/``decode_internal`` plus one ``.tolist()`` per column —
and then walks the lists entry by entry. On the batch query path that
per-entry Python work dominates; the actual page *reads* are cheap
dictionary lookups in the simulated disk.

The columnar path keeps the logical access model untouched and only
changes what happens *after* a read: page images decode into read-only
numpy arrays (:class:`repro.btree.node.LeafArrays` /
:class:`repro.btree.node.InternalArrays`) exactly once, cached by page
id, and every later touch of the same page re-issues the counted
``pager.read`` but reuses the decoded columns. Writers invalidate before
writing, so the cache can never serve stale columns.

Two invariants keep accounting bit-identical to the scalar path:

* every node touch still calls ``Pager.read`` (one logical read each —
  the paper's metric), the cache only skips the *decode*;
* invalidation happens in ``_write_leaf``/``_write_internal``/``_free``
  before the pager operation, so a failed write cannot leave a stale
  decoded page behind (fault-injection safe).

``REPRO_SCALAR=1`` in the environment disables the columnar path
process-wide (every tree built after that point runs the legacy scalar
code); it exists so differential tests can cross-check both engines.
"""

from __future__ import annotations

import os

from repro.btree.node import InternalArrays, LeafArrays, NodeLayout

#: Environment escape hatch: set to "1" to force the scalar path.
SCALAR_ENV = "REPRO_SCALAR"


def columnar_default() -> bool:
    """Whether new trees should use the columnar path (env-gated)."""
    return os.environ.get(SCALAR_ENV, "").strip().lower() not in (
        "1", "true", "yes",
    )


class ColumnarCache:
    """Per-tree cache ``page id -> decoded columns`` with FIFO eviction.

    Bounded so a huge tree cannot pin every decoded page in memory; the
    bound is a pure performance knob (eviction just means re-decoding on
    the next touch, never a different answer).
    """

    def __init__(self, layout: NodeLayout, capacity: int = 1024) -> None:
        self._layout = layout
        self._capacity = max(1, capacity)
        self._leaves: dict[int, LeafArrays] = {}
        self._internals: dict[int, InternalArrays] = {}

    def leaf(self, pid: int, data: bytes) -> LeafArrays:
        """Decoded columns of leaf page ``pid`` (``data`` is its image)."""
        hit = self._leaves.get(pid)
        if hit is None:
            hit = self._layout.decode_leaf_arrays(data)
            if len(self._leaves) >= self._capacity:
                self._leaves.pop(next(iter(self._leaves)))
            self._leaves[pid] = hit
        return hit

    def internal(self, pid: int, data: bytes) -> InternalArrays:
        """Decoded columns of internal page ``pid``."""
        hit = self._internals.get(pid)
        if hit is None:
            hit = self._layout.decode_internal_arrays(data)
            if len(self._internals) >= self._capacity:
                self._internals.pop(next(iter(self._internals)))
            self._internals[pid] = hit
        return hit

    def invalidate(self, pid: int) -> None:
        """Drop any decoded columns for ``pid`` (page about to change)."""
        self._leaves.pop(pid, None)
        self._internals.pop(pid, None)

    def clear(self) -> None:
        self._leaves.clear()
        self._internals.clear()

    def __len__(self) -> int:
        return len(self._leaves) + len(self._internals)

    def __repr__(self) -> str:
        return (
            f"<ColumnarCache leaves={len(self._leaves)} "
            f"internals={len(self._internals)} cap={self._capacity}>"
        )
