"""A disk-based B+-tree with duplicate keys and leaf handicap slots.

Every node is one page of the simulated disk; every node touch is a
counted page access. The tree orders entries by the composite
``(key, rid)`` so duplicate keys — very common here, many tuples share a
``TOP``/``BOT`` value — keep a total order: separators are composite,
deletes are exact, and the locate-left descent never has to chain-walk.

Features: point/range search, ascending and descending leaf sweeps
(``sweep_up``/``sweep_down``), insert with splits, delete with
borrow/merge rebalancing, O(N) bottom-up bulk loading, per-leaf auxiliary
"handicap" slots (Sections 4.2–4.3 of the paper) with a validity flag, and
an invariant checker used by the test-suite.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import IndexError_
from repro.obs import trace as obs
from repro.storage.disk import NULL_PAGE
from repro.storage.pager import Pager
from repro.storage.serialize import KeyCodec
from repro.btree.columnar import ColumnarCache, columnar_default
from repro.btree.node import (
    InternalArrays,
    InternalNode,
    LeafArrays,
    LeafNode,
    NodeLayout,
)

Composite = tuple[float, int]
_MAX_RID = 0xFFFFFFFF


@dataclass
class LeafVisit:
    """One leaf delivered by a sweep: its page id and decoded node."""

    page_id: int
    leaf: LeafNode


@dataclass
class MultiSweep:
    """The result of a merged multi-key sweep (batch execution).

    ``keys``/``rids`` are parallel entry lists in sweep order (ascending
    for :meth:`BPlusTree.sweep_up_multi`, descending for
    :meth:`BPlusTree.sweep_down_multi`). ``offsets`` aligns with the
    ``starts`` argument: the entries serving ``starts[i]`` are the suffix
    ``keys[offsets[i]:]`` — for an up-sweep those are the keys
    ``>= starts[i]``, for a down-sweep the keys ``<= starts[i]``.
    ``leaves`` is the number of leaf pages the shared sweep touched.

    On the columnar path ``keys``/``rids`` are numpy arrays (float64 /
    int64); callers wanting arrays regardless of path use
    :meth:`arrays`, while :meth:`entries_for` always returns plain
    lists.
    """

    keys: "list[float] | np.ndarray" = field(default_factory=list)
    rids: "list[int] | np.ndarray" = field(default_factory=list)
    offsets: list[int] = field(default_factory=list)
    leaves: int = 0

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, rids)`` as numpy arrays (no copy on the columnar
        path; one conversion on the scalar path)."""
        if isinstance(self.keys, np.ndarray):
            return self.keys, self.rids  # type: ignore[return-value]
        return (
            np.asarray(self.keys, dtype=np.float64),
            np.asarray(self.rids, dtype=np.int64),
        )

    def entries_for(self, i: int) -> tuple[list[float], list[int]]:
        """The (keys, rids) slice serving the i-th start key."""
        at = self.offsets[i]
        keys, rids = self.keys[at:], self.rids[at:]
        if isinstance(keys, np.ndarray):
            return keys.tolist(), rids.tolist()  # type: ignore[union-attr]
        return keys, rids  # type: ignore[return-value]


class BPlusTree:
    """B+-tree over a :class:`Pager`.

    Parameters
    ----------
    pager:
        Storage stack the nodes live on.
    key_codec:
        Key width codec; defaults to the paper's 4-byte keys.
    aux_slots:
        Number of per-leaf auxiliary float slots (handicap values). 0 for
        plain trees.
    name:
        Diagnostic label.
    columnar:
        When True (the default unless ``REPRO_SCALAR=1`` is set in the
        environment), descent and merged sweeps run on cached numpy
        columns (``np.searchsorted`` over per-node key arrays) instead
        of per-entry Python comparisons. Logical page accounting is
        bit-identical either way — the flag only changes in-memory work.
        Pass ``False`` explicitly to force the scalar path (used by the
        differential verifier to cross-check both engines).
    """

    def __init__(
        self,
        pager: Pager,
        key_codec: KeyCodec | None = None,
        aux_slots: int = 0,
        name: str = "btree",
        columnar: bool | None = None,
    ) -> None:
        self.pager = pager
        self.codec = key_codec if key_codec is not None else KeyCodec(4)
        self.layout = NodeLayout(pager.page_size, self.codec, aux_slots)
        self.name = name
        self.columnar = (
            columnar_default() if columnar is None else bool(columnar)
        )
        self._columns = ColumnarCache(self.layout)
        self.root: int | None = None
        self.height = 0
        self.size = 0
        self.first_leaf: int = NULL_PAGE
        self.last_leaf: int = NULL_PAGE
        self.owned_pages: set[int] = set()
        #: Leaves whose handicap aggregates were invalidated by updates.
        #: In-memory bookkeeping only (the durable truth is the leaf flag);
        #: maintenance layers consume this to avoid full-chain scans.
        self.dirty_leaves: set[int] = set()

    # ------------------------------------------------------------------
    # snapshot state (checkpoint/restore)
    # ------------------------------------------------------------------
    def state_payload(self) -> dict:
        """The tree's non-page state, JSON-serialisable.

        Everything else a live tree holds — node images — is already in
        the pager; together with this payload a tree reopens from disk
        without a rebuild (``repro.storage.checkpoint``).
        """
        return {
            "root": self.root,
            "height": self.height,
            "size": self.size,
            "first_leaf": self.first_leaf,
            "last_leaf": self.last_leaf,
            "owned_pages": sorted(self.owned_pages),
            "dirty_leaves": sorted(self.dirty_leaves),
        }

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_payload` (columnar cache starts cold)."""
        self.root = payload["root"]
        self.height = payload["height"]
        self.size = payload["size"]
        self.first_leaf = payload["first_leaf"]
        self.last_leaf = payload["last_leaf"]
        self.owned_pages = set(payload["owned_pages"])
        self.dirty_leaves = set(payload["dirty_leaves"])
        self._columns = ColumnarCache(self.layout)

    # ------------------------------------------------------------------
    # node I/O
    # ------------------------------------------------------------------
    def _alloc(self) -> int:
        pid = self.pager.allocate()
        self.owned_pages.add(pid)
        return pid

    def _free(self, pid: int) -> None:
        self.owned_pages.discard(pid)
        self.dirty_leaves.discard(pid)
        self._columns.invalidate(pid)
        self.pager.free(pid)

    def _read_leaf(self, pid: int) -> LeafNode:
        return self.layout.decode_leaf(self.pager.read(pid))

    def _read_internal(self, pid: int) -> InternalNode:
        return self.layout.decode_internal(self.pager.read(pid))

    def _leaf_arrays(self, pid: int) -> LeafArrays:
        """Columnar leaf view. The ``pager.read`` is issued per touch —
        one logical read, exactly like :meth:`_read_leaf` — only the
        decode is cached."""
        return self._columns.leaf(pid, self.pager.read(pid))

    def _internal_arrays(self, pid: int) -> InternalArrays:
        """Columnar internal view (counted read per touch, cached decode)."""
        return self._columns.internal(pid, self.pager.read(pid))

    def _write_leaf(self, pid: int, node: LeafNode) -> None:
        if self.layout.aux_slots:
            if node.handicaps_valid:
                self.dirty_leaves.discard(pid)
            else:
                self.dirty_leaves.add(pid)
        # Invalidate before the write: if the write faults, the cache
        # must not keep serving the page's old columns.
        self._columns.invalidate(pid)
        self.pager.write(pid, self.layout.encode_leaf(node))

    def _write_internal(self, pid: int, node: InternalNode) -> None:
        self._columns.invalidate(pid)
        self.pager.write(pid, self.layout.encode_internal(node))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    @property
    def page_count(self) -> int:
        """Pages owned by this tree (Figure 10's space accounting)."""
        return len(self.owned_pages)

    def quantize(self, key: float) -> float:
        """The stored representation of a key."""
        return self.codec.quantize(float(key))

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _descend_left(self, target: Composite) -> int:
        """Leaf that would contain the smallest entry >= target."""
        assert self.root is not None
        pid = self.root
        if self.columnar:
            for _ in range(self.height - 1):
                arrs = self._internal_arrays(pid)
                obs.incr("btree.node_visits")
                at = _searchsorted_composite(
                    arrs.keys, arrs.rids, target, right=False
                )
                pid = int(arrs.children[at])
            return pid
        for _ in range(self.height - 1):
            node = self._read_internal(pid)
            obs.incr("btree.node_visits")
            pid = node.children[_bisect_left(node.seps, target)]
        return pid

    def _descend_right(self, target: Composite) -> int:
        """Leaf that would contain the largest entry <= target."""
        assert self.root is not None
        pid = self.root
        if self.columnar:
            for _ in range(self.height - 1):
                arrs = self._internal_arrays(pid)
                obs.incr("btree.node_visits")
                at = _searchsorted_composite(
                    arrs.keys, arrs.rids, target, right=True
                )
                pid = int(arrs.children[at])
            return pid
        for _ in range(self.height - 1):
            node = self._read_internal(pid)
            obs.incr("btree.node_visits")
            pid = node.children[_bisect_right(node.seps, target)]
        return pid

    def search(self, key: float) -> list[int]:
        """All rids stored under exactly this (quantised) key."""
        if self.root is None:
            return []
        qkey = self.quantize(key)
        pid = self._descend_left((qkey, -1))
        result: list[int] = []
        while pid != NULL_PAGE:
            leaf = self._read_leaf(pid)
            for k, rid in zip(leaf.keys, leaf.rids):
                if k == qkey:
                    result.append(rid)
                elif k > qkey:
                    return result
            pid = leaf.next
        return result

    def contains(self, key: float, rid: int) -> bool:
        """Exact composite membership."""
        return rid in self.search(key)

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def sweep_up(self, from_key: float | None = None) -> Iterator[LeafVisit]:
        """Visit leaves left→right starting at the leaf that would hold
        ``from_key`` (or the first leaf). Every yielded leaf counts as one
        page access; the caller filters entries and decides when to stop.
        """
        if self.root is None:
            return
        if from_key is None:
            pid = self.first_leaf
        else:
            with obs.span("descend", tree=self.name, height=self.height,
                          descent_vectorized=self.columnar):
                pid = self._descend_left((self.quantize(from_key), -1))
        while pid != NULL_PAGE:
            leaf = self._read_leaf(pid)
            obs.incr("btree.leaf_visits")
            yield LeafVisit(pid, leaf)
            pid = leaf.next

    def sweep_down(self, from_key: float | None = None) -> Iterator[LeafVisit]:
        """Visit leaves right→left starting at the leaf that would hold
        ``from_key`` (or the last leaf)."""
        if self.root is None:
            return
        if from_key is None:
            pid = self.last_leaf
        else:
            with obs.span("descend", tree=self.name, height=self.height,
                          descent_vectorized=self.columnar):
                pid = self._descend_right((self.quantize(from_key), _MAX_RID))
        while pid != NULL_PAGE:
            leaf = self._read_leaf(pid)
            obs.incr("btree.leaf_visits")
            yield LeafVisit(pid, leaf)
            pid = leaf.prev

    def sweep_up_multi(self, starts: Sequence[float]) -> MultiSweep:
        """Serve many ascending range sweeps with ONE descent + ONE sweep.

        ``starts`` are the per-query start keys (any order, duplicates
        allowed). The tree is descended once to the smallest start and
        swept once to the last leaf; every entry with key ``>=
        min(starts)`` is collected. The i-th query's entries are the
        suffix ``keys[offsets[i]:]`` (its keys ``>= quantize(starts[i])``)
        — exactly what ``sweep_up(starts[i])`` would have delivered, at
        the page cost of the single widest sweep instead of one descent
        and one overlapping sweep per query.
        """
        if self.columnar:
            return self._sweep_up_multi_columnar(starts)
        qstarts = [self.quantize(s) for s in starts]
        out = MultiSweep()
        if self.root is None or not qstarts:
            out.offsets = [0] * len(qstarts)
            return out
        lo = min(qstarts)
        for visit in self.sweep_up(lo):
            out.leaves += 1
            obs.incr("comparisons", len(visit.leaf.keys))
            for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
                if key >= lo:
                    out.keys.append(key)
                    out.rids.append(rid)
        out.offsets = [bisect.bisect_left(out.keys, q) for q in qstarts]
        return out

    def _sweep_up_multi_columnar(self, starts: Sequence[float]) -> MultiSweep:
        """Vectorized :meth:`sweep_up_multi`: same descent, same leaf
        chain (one counted read per leaf), but entries are gathered as
        array segments and per-query offsets come from one
        ``np.searchsorted`` over the merged key column."""
        out = MultiSweep()
        if self.root is None or len(starts) == 0:
            out.offsets = [0] * len(starts)
            return out
        qstarts = self.codec.quantize_many(starts)
        lo = float(qstarts.min())
        with obs.span("descend", tree=self.name, height=self.height,
                      descent_vectorized=True):
            pid = self._descend_left((lo, -1))
        key_segs: list[np.ndarray] = []
        rid_segs: list[np.ndarray] = []
        while pid != NULL_PAGE:
            arrs = self._leaf_arrays(pid)
            obs.incr("btree.leaf_visits")
            out.leaves += 1
            obs.incr("comparisons", int(arrs.keys.size))
            # Keys below ``lo`` can only exist in the descent leaf (the
            # chain is globally sorted); the searchsorted trim is a no-op
            # on every later leaf.
            cut = int(np.searchsorted(arrs.keys, lo, side="left"))
            if cut < arrs.keys.size:
                key_segs.append(arrs.keys[cut:])
                rid_segs.append(arrs.rids[cut:])
            pid = arrs.next
        if key_segs:
            out.keys = np.concatenate(key_segs)
            out.rids = np.concatenate(rid_segs)
            out.offsets = np.searchsorted(
                out.keys, qstarts, side="left"
            ).tolist()
        else:
            out.offsets = [0] * len(starts)
        return out

    def sweep_down_multi(self, starts: Sequence[float]) -> MultiSweep:
        """Descending counterpart of :meth:`sweep_up_multi`.

        One descent to the largest start, one right-to-left sweep; the
        i-th query's entries are the suffix ``keys[offsets[i]:]`` of the
        *descending* entry list (its keys ``<= quantize(starts[i])``).
        """
        if self.columnar:
            return self._sweep_down_multi_columnar(starts)
        qstarts = [self.quantize(s) for s in starts]
        out = MultiSweep()
        if self.root is None or not qstarts:
            out.offsets = [0] * len(qstarts)
            return out
        hi = max(qstarts)
        for visit in self.sweep_down(hi):
            out.leaves += 1
            obs.incr("comparisons", len(visit.leaf.keys))
            for key, rid in zip(
                reversed(visit.leaf.keys), reversed(visit.leaf.rids)
            ):
                if key <= hi:
                    out.keys.append(key)
                    out.rids.append(rid)
        # Keys are descending: the suffix for start q begins at the first
        # index whose key is <= q, found by bisecting the negated keys.
        negated = [-k for k in out.keys]
        out.offsets = [bisect.bisect_left(negated, -q) for q in qstarts]
        return out

    def _sweep_down_multi_columnar(
        self, starts: Sequence[float]
    ) -> MultiSweep:
        """Vectorized :meth:`sweep_down_multi`: right-to-left chain walk
        with reversed array segments; offsets bisect the negated
        (ascending) key column, matching the scalar path exactly."""
        out = MultiSweep()
        if self.root is None or len(starts) == 0:
            out.offsets = [0] * len(starts)
            return out
        qstarts = self.codec.quantize_many(starts)
        hi = float(qstarts.max())
        with obs.span("descend", tree=self.name, height=self.height,
                      descent_vectorized=True):
            pid = self._descend_right((hi, _MAX_RID))
        key_segs: list[np.ndarray] = []
        rid_segs: list[np.ndarray] = []
        while pid != NULL_PAGE:
            arrs = self._leaf_arrays(pid)
            obs.incr("btree.leaf_visits")
            out.leaves += 1
            obs.incr("comparisons", int(arrs.keys.size))
            # Keys above ``hi`` can only exist in the descent leaf.
            cut = int(np.searchsorted(arrs.keys, hi, side="right"))
            if cut > 0:
                key_segs.append(arrs.keys[cut - 1 :: -1])
                rid_segs.append(arrs.rids[cut - 1 :: -1])
            pid = arrs.prev
        if key_segs:
            out.keys = np.concatenate(key_segs)
            out.rids = np.concatenate(rid_segs)
            out.offsets = np.searchsorted(
                -out.keys, -qstarts, side="left"
            ).tolist()
        else:
            out.offsets = [0] * len(starts)
        return out

    def items_from(
        self, from_key: float, inclusive: bool = True
    ) -> Iterator[tuple[float, int]]:
        """Entries with key ≥ (or >) ``from_key``, ascending."""
        qkey = self.quantize(from_key)
        for visit in self.sweep_up(from_key):
            for k, rid in zip(visit.leaf.keys, visit.leaf.rids):
                if k > qkey or (inclusive and k == qkey):
                    yield (k, rid)

    def items_to(
        self, to_key: float, inclusive: bool = True
    ) -> Iterator[tuple[float, int]]:
        """Entries with key ≤ (or <) ``to_key``, descending."""
        qkey = self.quantize(to_key)
        for visit in self.sweep_down(to_key):
            for k, rid in zip(
                reversed(visit.leaf.keys), reversed(visit.leaf.rids)
            ):
                if k < qkey or (inclusive and k == qkey):
                    yield (k, rid)

    def items(self) -> Iterator[tuple[float, int]]:
        """All entries, ascending."""
        for visit in self.sweep_up(None):
            yield from zip(visit.leaf.keys, visit.leaf.rids)

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, key: float, rid: int) -> None:
        """Insert one entry (duplicates of both key and (key,rid) allowed;
        identical composites simply coexist)."""
        qkey = self.quantize(key)
        if self.root is None:
            pid = self._alloc()
            leaf = LeafNode([qkey], [rid])
            self._write_leaf(pid, leaf)
            self.root = pid
            self.first_leaf = self.last_leaf = pid
            self.height = 1
            self.size = 1
            return
        split = self._insert_rec(self.root, self.height, qkey, rid)
        if split is not None:
            sep, right_pid = split
            new_root = self._alloc()
            self._write_internal(
                new_root, InternalNode([sep], [self.root, right_pid])
            )
            self.root = new_root
            self.height += 1
        self.size += 1

    def _insert_rec(
        self, pid: int, level: int, key: float, rid: int
    ) -> tuple[Composite, int] | None:
        if level == 1:
            return self._insert_leaf(pid, key, rid)
        node = self._read_internal(pid)
        i = _bisect_right(node.seps, (key, rid))
        split = self._insert_rec(node.children[i], level - 1, key, rid)
        if split is None:
            return None
        sep, right_pid = split
        node.seps.insert(i, sep)
        node.children.insert(i + 1, right_pid)
        if node.count <= self.layout.internal_capacity:
            self._write_internal(pid, node)
            return None
        mid = node.count // 2
        promoted = node.seps[mid]
        right = InternalNode(node.seps[mid + 1 :], node.children[mid + 1 :])
        node.seps = node.seps[:mid]
        node.children = node.children[: mid + 1]
        right_pid2 = self._alloc()
        self._write_internal(pid, node)
        self._write_internal(right_pid2, right)
        return promoted, right_pid2

    def _insert_leaf(
        self, pid: int, key: float, rid: int
    ) -> tuple[Composite, int] | None:
        leaf = self._read_leaf(pid)
        i = _bisect_right_entries(leaf.keys, leaf.rids, (key, rid))
        leaf.keys.insert(i, key)
        leaf.rids.insert(i, rid)
        leaf.invalidate_handicaps()
        if i == 0:
            # The leaf's first key moved: the predecessor's handicap
            # ownership range changed too, so its aggregates go stale.
            self._invalidate_prev(leaf)
        if leaf.count <= self.layout.leaf_capacity:
            self._write_leaf(pid, leaf)
            return None
        mid = leaf.count // 2
        right = LeafNode(
            leaf.keys[mid:], leaf.rids[mid:], prev=pid, next=leaf.next
        )
        right.aux = [0.0] * self.layout.aux_slots
        leaf.keys = leaf.keys[:mid]
        leaf.rids = leaf.rids[:mid]
        right_pid = self._alloc()
        if leaf.next != NULL_PAGE:
            after = self._read_leaf(leaf.next)
            after.prev = right_pid
            self._write_leaf(leaf.next, after)
        else:
            self.last_leaf = right_pid
        leaf.next = right_pid
        self._write_leaf(pid, leaf)
        self._write_leaf(right_pid, right)
        return (right.keys[0], right.rids[0]), right_pid

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def delete(self, key: float, rid: int) -> bool:
        """Delete the entry with this exact composite; False if absent."""
        if self.root is None:
            return False
        qkey = self.quantize(key)
        found = self._delete_rec(self.root, self.height, (qkey, rid))
        if not found:
            return False
        self.size -= 1
        # Shrink the root when it degenerates.
        while self.height > 1:
            root_node = self._read_internal(self.root)
            if root_node.count > 0:
                break
            old_root = self.root
            self.root = root_node.children[0]
            self.height -= 1
            self._free(old_root)
        if self.size == 0:
            self._free(self.root)
            self.root = None
            self.height = 0
            self.first_leaf = self.last_leaf = NULL_PAGE
        return True

    def _delete_rec(self, pid: int, level: int, target: Composite) -> bool:
        if level == 1:
            leaf = self._read_leaf(pid)
            i = _bisect_left_entries(leaf.keys, leaf.rids, target)
            if (
                i >= leaf.count
                or leaf.keys[i] != target[0]
                or leaf.rids[i] != target[1]
            ):
                return False
            del leaf.keys[i]
            del leaf.rids[i]
            leaf.invalidate_handicaps()
            if i == 0:
                self._invalidate_prev(leaf)
            self._write_leaf(pid, leaf)
            return True
        node = self._read_internal(pid)
        i = _bisect_right(node.seps, target)
        found = self._delete_rec(node.children[i], level - 1, target)
        if not found:
            return False
        self._rebalance_child(pid, node, i, level - 1)
        return True

    def _rebalance_child(
        self, pid: int, node: InternalNode, i: int, child_level: int
    ) -> None:
        child_pid = node.children[i]
        if child_level == 1:
            child = self._read_leaf(child_pid)
            minimum = self.layout.leaf_capacity // 2
            if child.count >= minimum:
                return
            self._fix_leaf(pid, node, i, child)
        else:
            child = self._read_internal(child_pid)
            minimum = self.layout.internal_capacity // 2
            if child.count >= minimum:
                return
            self._fix_internal(pid, node, i, child, child_level)

    def _fix_leaf(
        self, parent_pid: int, parent: InternalNode, i: int, child: LeafNode
    ) -> None:
        child_pid = parent.children[i]
        minimum = self.layout.leaf_capacity // 2
        # Try borrowing from the right sibling, then the left one.
        if i + 1 <= parent.count:
            right_pid = parent.children[i + 1]
            right = self._read_leaf(right_pid)
            if right.count > minimum:
                child.keys.append(right.keys.pop(0))
                child.rids.append(right.rids.pop(0))
                child.invalidate_handicaps()
                right.invalidate_handicaps()
                parent.seps[i] = (right.keys[0], right.rids[0])
                self._write_leaf(child_pid, child)
                self._write_leaf(right_pid, right)
                self._write_internal(parent_pid, parent)
                return
            # Merge child <- right.
            child.keys.extend(right.keys)
            child.rids.extend(right.rids)
            child.invalidate_handicaps()
            self._unlink_after(child_pid, child, right)
            del parent.seps[i]
            del parent.children[i + 1]
            self._write_leaf(child_pid, child)
            self._write_internal(parent_pid, parent)
            self._free(right_pid)
            return
        # Child is the rightmost: use the left sibling.
        left_pid = parent.children[i - 1]
        left = self._read_leaf(left_pid)
        if left.count > minimum:
            child.keys.insert(0, left.keys.pop())
            child.rids.insert(0, left.rids.pop())
            child.invalidate_handicaps()
            left.invalidate_handicaps()
            parent.seps[i - 1] = (child.keys[0], child.rids[0])
            self._write_leaf(child_pid, child)
            self._write_leaf(left_pid, left)
            self._write_internal(parent_pid, parent)
            return
        # Merge left <- child.
        left.keys.extend(child.keys)
        left.rids.extend(child.rids)
        left.invalidate_handicaps()
        self._unlink_after(left_pid, left, child)
        del parent.seps[i - 1]
        del parent.children[i]
        self._write_leaf(left_pid, left)
        self._write_internal(parent_pid, parent)
        self._free(child_pid)

    def _invalidate_prev(self, leaf: LeafNode) -> None:
        """Invalidate the handicaps of the leaf before ``leaf`` (if any)."""
        if self.layout.aux_slots == 0 or leaf.prev == NULL_PAGE:
            return
        before = self._read_leaf(leaf.prev)
        if before.handicaps_valid:
            before.invalidate_handicaps()
            self._write_leaf(leaf.prev, before)
        else:
            self.dirty_leaves.add(leaf.prev)

    def _unlink_after(self, left_pid: int, left: LeafNode, right: LeafNode) -> None:
        """Splice ``right`` (the leaf after ``left``) out of the chain."""
        left.next = right.next
        if right.next != NULL_PAGE:
            after = self._read_leaf(right.next)
            after.prev = left_pid
            self._write_leaf(right.next, after)
        else:
            self.last_leaf = left_pid

    def _fix_internal(
        self,
        parent_pid: int,
        parent: InternalNode,
        i: int,
        child: InternalNode,
        child_level: int,
    ) -> None:
        child_pid = parent.children[i]
        minimum = self.layout.internal_capacity // 2
        if i + 1 <= parent.count:
            right_pid = parent.children[i + 1]
            right = self._read_internal(right_pid)
            if right.count > minimum:
                child.seps.append(parent.seps[i])
                child.children.append(right.children.pop(0))
                parent.seps[i] = right.seps.pop(0)
                self._write_internal(child_pid, child)
                self._write_internal(right_pid, right)
                self._write_internal(parent_pid, parent)
                return
            child.seps.append(parent.seps[i])
            child.seps.extend(right.seps)
            child.children.extend(right.children)
            del parent.seps[i]
            del parent.children[i + 1]
            self._write_internal(child_pid, child)
            self._write_internal(parent_pid, parent)
            self._free(right_pid)
            return
        left_pid = parent.children[i - 1]
        left = self._read_internal(left_pid)
        if left.count > minimum:
            child.seps.insert(0, parent.seps[i - 1])
            child.children.insert(0, left.children.pop())
            parent.seps[i - 1] = left.seps.pop()
            self._write_internal(child_pid, child)
            self._write_internal(left_pid, left)
            self._write_internal(parent_pid, parent)
            return
        left.seps.append(parent.seps[i - 1])
        left.seps.extend(child.seps)
        left.children.extend(child.children)
        del parent.seps[i - 1]
        del parent.children[i]
        self._write_internal(left_pid, left)
        self._write_internal(parent_pid, parent)
        self._free(child_pid)

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def bulk_load(
        self, entries: Iterable[tuple[float, int]], fill: float = 0.9
    ) -> None:
        """Bottom-up O(N) build from entries (any order; sorted internally).

        ``fill`` is the target leaf/internal occupancy. The tree must be
        empty.
        """
        if self.root is not None:
            raise IndexError_("bulk_load on a non-empty tree")
        if not 0.3 <= fill <= 1.0:
            raise IndexError_("fill factor must be in [0.3, 1.0]")
        data = sorted(
            ((self.quantize(k), rid) for k, rid in entries)
        )
        if not data:
            return
        leaf_target = max(
            2, self.layout.leaf_capacity // 2, int(self.layout.leaf_capacity * fill)
        )
        chunks = _chunk(
            data,
            leaf_target,
            minimum=self.layout.leaf_capacity // 2,
            capacity=self.layout.leaf_capacity,
        )
        leaf_pids = [self._alloc() for _ in chunks]
        level: list[tuple[Composite, int]] = []
        for idx, chunk in enumerate(chunks):
            leaf = LeafNode(
                [k for k, _ in chunk],
                [r for _, r in chunk],
                prev=leaf_pids[idx - 1] if idx > 0 else NULL_PAGE,
                next=leaf_pids[idx + 1] if idx + 1 < len(chunks) else NULL_PAGE,
            )
            leaf.aux = [0.0] * self.layout.aux_slots
            self._write_leaf(leaf_pids[idx], leaf)
            level.append((chunk[0], leaf_pids[idx]))
        self.first_leaf = leaf_pids[0]
        self.last_leaf = leaf_pids[-1]
        self.size = len(data)
        self.height = 1
        while len(level) > 1:
            internal_target = max(
                2,
                self.layout.internal_capacity // 2 + 1,
                int(self.layout.internal_capacity * fill),
            )
            groups = _chunk(
                level,
                internal_target + 1,
                minimum=self.layout.internal_capacity // 2 + 1,
                capacity=self.layout.internal_capacity + 1,
            )
            next_level: list[tuple[Composite, int]] = []
            for group in groups:
                pid = self._alloc()
                node = InternalNode(
                    [sep for sep, _ in group[1:]],
                    [child for _, child in group],
                )
                self._write_internal(pid, node)
                next_level.append((group[0][0], pid))
            level = next_level
            self.height += 1
        self.root = level[0][1]

    # ------------------------------------------------------------------
    # handicap support
    # ------------------------------------------------------------------
    def leaf_pids(self) -> Iterator[int]:
        """Leaf page ids, left to right (reads each leaf)."""
        pid = self.first_leaf
        while pid != NULL_PAGE:
            leaf = self._read_leaf(pid)
            yield pid
            pid = leaf.next

    def read_leaf(self, pid: int) -> LeafNode:
        """Public leaf read (counted access) for maintenance layers."""
        return self._read_leaf(pid)

    def write_leaf(self, pid: int, leaf: LeafNode) -> None:
        """Public leaf write (counted) for maintenance layers."""
        self._write_leaf(pid, leaf)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`IndexError_` on any structural violation.

        Checks ordering, separator correctness, fill bounds, leaf-chain
        consistency and size. Test-suite helper; O(N) page reads.
        """
        if self.root is None:
            if self.size != 0 or self.height != 0:
                raise IndexError_("empty tree with non-zero size/height")
            return
        seen: list[Composite] = []
        chain: list[int] = []
        self._check_node(self.root, self.height, None, None, seen, chain,
                         is_root=True)
        if seen != sorted(seen):
            raise IndexError_("entries out of order")
        if len(seen) != self.size:
            raise IndexError_(f"size {self.size} but {len(seen)} entries")
        if chain and (chain[0] != self.first_leaf or chain[-1] != self.last_leaf):
            raise IndexError_("first/last leaf pointers wrong")
        forward = list(self.leaf_pids())
        if forward != chain:
            raise IndexError_("leaf chain disagrees with tree structure")

    def _check_node(
        self,
        pid: int,
        level: int,
        lo: Composite | None,
        hi: Composite | None,
        seen: list[Composite],
        chain: list[int],
        is_root: bool,
    ) -> None:
        if level == 1:
            leaf = self._read_leaf(pid)
            if not is_root and leaf.count < self.layout.leaf_capacity // 2:
                raise IndexError_(f"leaf {pid} underfull: {leaf.count}")
            if leaf.count > self.layout.leaf_capacity:
                raise IndexError_(f"leaf {pid} overfull")
            for entry in zip(leaf.keys, leaf.rids):
                if lo is not None and entry < lo:
                    raise IndexError_(f"leaf {pid} entry below separator")
                if hi is not None and entry >= hi:
                    raise IndexError_(f"leaf {pid} entry above separator")
                seen.append(entry)
            chain.append(pid)
            return
        node = self._read_internal(pid)
        if not is_root and node.count < self.layout.internal_capacity // 2:
            raise IndexError_(f"internal {pid} underfull: {node.count}")
        if node.count > self.layout.internal_capacity:
            raise IndexError_(f"internal {pid} overfull")
        bounds = [lo] + list(node.seps) + [hi]
        for idx, child in enumerate(node.children):
            self._check_node(
                child, level - 1, bounds[idx], bounds[idx + 1], seen, chain,
                is_root=False,
            )


# ----------------------------------------------------------------------
# composite bisect helpers (parallel key/rid lists)
# ----------------------------------------------------------------------
def _searchsorted_composite(
    keys: np.ndarray, rids: np.ndarray, target: Composite, right: bool
) -> int:
    """Vectorized composite bisect over parallel key/rid columns.

    Equivalent to ``_bisect_left``/``_bisect_right`` on the zipped
    ``(key, rid)`` pairs: the key column locates the equal-key run, the
    rid column (int64, so sentinel targets -1 and ``0xFFFFFFFF`` compare
    correctly) breaks the tie inside it.
    """
    key, rid = target
    lo = int(np.searchsorted(keys, key, side="left"))
    hi = int(np.searchsorted(keys, key, side="right"))
    if lo == hi:
        return lo
    side = "right" if right else "left"
    return lo + int(np.searchsorted(rids[lo:hi], rid, side=side))



def _bisect_left(seps: Sequence[Composite], target: Composite) -> int:
    lo, hi = 0, len(seps)
    while lo < hi:
        mid = (lo + hi) // 2
        if seps[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(seps: Sequence[Composite], target: Composite) -> int:
    lo, hi = 0, len(seps)
    while lo < hi:
        mid = (lo + hi) // 2
        if seps[mid] <= target:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_left_entries(
    keys: Sequence[float], rids: Sequence[int], target: Composite
) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if (keys[mid], rids[mid]) < target:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right_entries(
    keys: Sequence[float], rids: Sequence[int], target: Composite
) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if (keys[mid], rids[mid]) <= target:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _chunk(
    data: list, target: int, minimum: int, capacity: int
) -> list[list]:
    """Split into chunks of ~target, keeping the final chunk >= minimum.

    The last two chunks are rebalanced when the tail falls below the
    minimum fill; if even their union cannot be split into two legal
    chunks, they are merged into one (never exceeding ``capacity``).
    """
    if not data:
        return []
    chunks = [data[i : i + target] for i in range(0, len(data), target)]
    if len(chunks) > 1 and len(chunks[-1]) < minimum:
        merged = chunks.pop()
        merged = chunks.pop() + merged
        if len(merged) <= capacity:
            chunks.append(merged)
        else:
            half = max(minimum, len(merged) // 2)
            chunks.append(merged[:half])
            chunks.append(merged[half:])
    return chunks
