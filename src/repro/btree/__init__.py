"""Disk-based B+-tree with leaf handicap slots.

The workhorse of the dual-representation index: every ``B^up``/``B^down``
structure of Sections 3–4, and the handicap directories used for dynamic
maintenance, are instances of :class:`BPlusTree`.
"""

from repro.btree.node import (
    FLAG_HANDICAPS_VALID,
    InternalNode,
    LeafNode,
    NodeLayout,
)
from repro.btree.tree import BPlusTree, LeafVisit

__all__ = [
    "BPlusTree",
    "LeafVisit",
    "LeafNode",
    "InternalNode",
    "NodeLayout",
    "FLAG_HANDICAPS_VALID",
]
