"""Disk-based B+-tree with leaf handicap slots.

The workhorse of the dual-representation index: every ``B^up``/``B^down``
structure of Sections 3–4, and the handicap directories used for dynamic
maintenance, are instances of :class:`BPlusTree`.
"""

from repro.btree.columnar import ColumnarCache, columnar_default
from repro.btree.node import (
    FLAG_HANDICAPS_VALID,
    InternalArrays,
    InternalNode,
    LeafArrays,
    LeafNode,
    NodeLayout,
)
from repro.btree.tree import BPlusTree, LeafVisit, MultiSweep

__all__ = [
    "BPlusTree",
    "LeafVisit",
    "LeafNode",
    "LeafArrays",
    "InternalNode",
    "InternalArrays",
    "MultiSweep",
    "NodeLayout",
    "ColumnarCache",
    "columnar_default",
    "FLAG_HANDICAPS_VALID",
]
