"""On-page B+-tree node layouts.

Every node lives in exactly one page of the simulated disk. Entries are
``(key, rid)`` pairs — the tree orders by the *composite* ``(key, rid)``
so duplicate keys (many tuples sharing a ``TOP``/``BOT`` value) keep a
total order and deletes stay unambiguous.

Leaf layout::

    u8 kind=0 | u8 flags | u16 count | u32 prev | u32 next
    | aux_slots × key   (handicap values, Section 4.2/4.3)
    | count × (key, u32 rid)

Internal layout::

    u8 kind=1 | u8 flags | u16 count
    | (count+1) × u32 child
    | count × (key, u32 rid)       (composite separators)

``key`` is 4 or 8 bytes according to the tree's :class:`KeyCodec` —
4 bytes reproduces the paper's value size and fan-out.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StorageError
from repro.storage.disk import NULL_PAGE
from repro.storage.serialize import KeyCodec

_LEAF_KIND = 0
_INTERNAL_KIND = 1
_HEADER = struct.Struct("<BBH")
_LINKS = struct.Struct("<II")
_RID = struct.Struct("<I")

#: Packed (key, rid) entry layouts — itemsize matches the on-page
#: ``key_bytes + 4`` stride exactly (no alignment padding).
_ENTRY_DTYPES = {
    4: np.dtype([("k", "<f4"), ("r", "<u4")]),
    8: np.dtype([("k", "<f8"), ("r", "<u4")]),
}

#: flags bit 0: leaf handicap aggregates are valid.
FLAG_HANDICAPS_VALID = 0x01


@dataclass
class LeafNode:
    """Decoded leaf node."""

    keys: list[float] = field(default_factory=list)
    rids: list[int] = field(default_factory=list)
    prev: int = NULL_PAGE
    next: int = NULL_PAGE
    aux: list[float] = field(default_factory=list)
    flags: int = 0

    @property
    def count(self) -> int:
        return len(self.keys)

    @property
    def handicaps_valid(self) -> bool:
        return bool(self.flags & FLAG_HANDICAPS_VALID)

    def set_handicaps(self, values: list[float]) -> None:
        """Install handicap aggregates and mark them valid."""
        self.aux = list(values)
        self.flags |= FLAG_HANDICAPS_VALID

    def invalidate_handicaps(self) -> None:
        self.flags &= ~FLAG_HANDICAPS_VALID

    def entries(self) -> list[tuple[float, int]]:
        return list(zip(self.keys, self.rids))


@dataclass
class LeafArrays:
    """Columnar view of one leaf page (see ``docs/ARCHITECTURE.md``).

    ``keys`` is float64 ascending, ``rids`` int64 — the same values
    :class:`LeafNode` holds as Python lists, but as read-only numpy
    arrays so descent and sweeps can use ``np.searchsorted`` and slice
    instead of per-entry comparisons. Decoded once per page image and
    cached (:class:`repro.btree.columnar.ColumnarCache`); the page read
    itself is still counted per touch, so logical accounting is
    unchanged.
    """

    keys: np.ndarray
    rids: np.ndarray
    prev: int
    next: int


@dataclass
class InternalArrays:
    """Columnar view of one internal page: separator key/rid columns
    plus the child page-id array (``len(children) == len(keys) + 1``)."""

    keys: np.ndarray
    rids: np.ndarray
    children: np.ndarray


@dataclass
class InternalNode:
    """Decoded internal node.

    ``seps`` holds composite separators ``(key, rid)``; ``children`` has
    ``len(seps) + 1`` page ids. ``seps[i]`` is a copy of the smallest
    composite entry in ``children[i+1]``'s subtree.
    """

    seps: list[tuple[float, int]] = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.seps)


class NodeLayout:
    """Capacity math and page codecs for one tree's configuration."""

    def __init__(self, page_size: int, key_codec: KeyCodec, aux_slots: int) -> None:
        self.page_size = page_size
        self.key_codec = key_codec
        self.aux_slots = aux_slots
        kb = key_codec.key_bytes
        leaf_fixed = _HEADER.size + _LINKS.size + aux_slots * kb
        self.leaf_capacity = (page_size - leaf_fixed) // (kb + _RID.size)
        internal_fixed = _HEADER.size + _RID.size  # header + first child
        self.internal_capacity = (page_size - internal_fixed) // (
            kb + 2 * _RID.size
        )
        if self.leaf_capacity < 4 or self.internal_capacity < 4:
            raise StorageError(
                f"page size {page_size} too small for B+-tree nodes"
            )
        self._leaf_fixed = leaf_fixed
        self._entry_dtype = _ENTRY_DTYPES[kb]

    def _encode_entries(
        self, out: bytearray, pos: int, keys, rids
    ) -> None:
        """Pack ``(key, rid)`` pairs into ``out`` at ``pos`` in one
        vectorized write (byte-identical to the per-entry codec)."""
        entries = np.empty(len(keys), dtype=self._entry_dtype)
        with np.errstate(over="ignore"):
            entries["k"] = self.key_codec.saturate_array(keys)
        entries["r"] = rids
        raw = entries.tobytes()
        out[pos : pos + len(raw)] = raw

    def _decode_entries(
        self, data: bytes, pos: int, count: int
    ) -> tuple[list[float], list[int]]:
        entries = np.frombuffer(data, dtype=self._entry_dtype,
                                count=count, offset=pos)
        keys = entries["k"].astype(np.float64).tolist()
        rids = entries["r"].tolist()
        return keys, rids

    # ------------------------------------------------------------------
    # leaf codec
    # ------------------------------------------------------------------
    def encode_leaf(self, node: LeafNode) -> bytes:
        if node.count > self.leaf_capacity:
            raise StorageError("leaf overflow at encode time")
        if len(node.aux) not in (0, self.aux_slots):
            raise StorageError(
                f"leaf has {len(node.aux)} aux values, layout expects "
                f"{self.aux_slots}"
            )
        out = bytearray(self.page_size)
        _HEADER.pack_into(out, 0, _LEAF_KIND, node.flags, node.count)
        _LINKS.pack_into(out, _HEADER.size, node.prev, node.next)
        pos = _HEADER.size + _LINKS.size
        kb = self.key_codec.key_bytes
        aux = node.aux if node.aux else [0.0] * self.aux_slots
        raw_aux = self.key_codec.encode_keys(aux)
        out[pos : pos + len(raw_aux)] = raw_aux
        pos += self.aux_slots * kb
        self._encode_entries(out, pos, node.keys, node.rids)
        return bytes(out)

    def decode_leaf(self, data: bytes) -> LeafNode:
        kind, flags, count = _HEADER.unpack_from(data, 0)
        if kind != _LEAF_KIND:
            raise StorageError("page is not a leaf node")
        prev, nxt = _LINKS.unpack_from(data, _HEADER.size)
        pos = _HEADER.size + _LINKS.size
        kb = self.key_codec.key_bytes
        aux = self.key_codec.decode_keys(data, self.aux_slots, pos)
        pos += self.aux_slots * kb
        keys, rids = self._decode_entries(data, pos, count)
        return LeafNode(keys, rids, prev, nxt, aux, flags)

    def decode_leaf_arrays(self, data: bytes) -> LeafArrays:
        """Decode a leaf page into read-only numpy columns.

        Carries exactly the information the read paths need (keys, rids,
        chain links); aux slots and flags are write-path concerns and
        stay on :meth:`decode_leaf`. Key values are bit-identical to the
        scalar decoder's (same widening cast, no re-rounding).
        """
        kind, _flags, count = _HEADER.unpack_from(data, 0)
        if kind != _LEAF_KIND:
            raise StorageError("page is not a leaf node")
        prev, nxt = _LINKS.unpack_from(data, _HEADER.size)
        pos = (
            _HEADER.size
            + _LINKS.size
            + self.aux_slots * self.key_codec.key_bytes
        )
        entries = np.frombuffer(data, dtype=self._entry_dtype,
                                count=count, offset=pos)
        keys = entries["k"].astype(np.float64)
        rids = entries["r"].astype(np.int64)
        keys.flags.writeable = False
        rids.flags.writeable = False
        return LeafArrays(keys, rids, prev, nxt)

    def decode_internal_arrays(self, data: bytes) -> InternalArrays:
        """Decode an internal page into read-only numpy columns.

        ``rids`` widen to int64 so composite-descent targets with
        sentinel rids (-1, ``0xFFFFFFFF``) compare correctly.
        """
        kind, _flags, count = _HEADER.unpack_from(data, 0)
        if kind != _INTERNAL_KIND:
            raise StorageError("page is not an internal node")
        pos = _HEADER.size
        children = np.frombuffer(
            data, dtype="<u4", count=count + 1, offset=pos
        ).astype(np.int64)
        pos += (count + 1) * _RID.size
        entries = np.frombuffer(data, dtype=self._entry_dtype,
                                count=count, offset=pos)
        keys = entries["k"].astype(np.float64)
        rids = entries["r"].astype(np.int64)
        for arr in (keys, rids, children):
            arr.flags.writeable = False
        return InternalArrays(keys, rids, children)

    # ------------------------------------------------------------------
    # internal codec
    # ------------------------------------------------------------------
    def encode_internal(self, node: InternalNode) -> bytes:
        if node.count > self.internal_capacity:
            raise StorageError("internal overflow at encode time")
        if len(node.children) != node.count + 1:
            raise StorageError("internal node children/separator mismatch")
        out = bytearray(self.page_size)
        _HEADER.pack_into(out, 0, _INTERNAL_KIND, 0, node.count)
        pos = _HEADER.size
        raw_children = np.asarray(node.children, dtype="<u4").tobytes()
        out[pos : pos + len(raw_children)] = raw_children
        pos += len(node.children) * _RID.size
        if node.seps:
            keys, rids = zip(*node.seps)
            self._encode_entries(out, pos, list(keys), list(rids))
        return bytes(out)

    def decode_internal(self, data: bytes) -> InternalNode:
        kind, _flags, count = _HEADER.unpack_from(data, 0)
        if kind != _INTERNAL_KIND:
            raise StorageError("page is not an internal node")
        pos = _HEADER.size
        children = np.frombuffer(
            data, dtype="<u4", count=count + 1, offset=pos
        ).tolist()
        pos += (count + 1) * _RID.size
        keys, rids = self._decode_entries(data, pos, count)
        return InternalNode(list(zip(keys, rids)), children)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    @staticmethod
    def page_kind(data: bytes) -> int:
        """0 for leaf pages, 1 for internal pages."""
        return data[0]
