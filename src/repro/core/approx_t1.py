"""Technique T1: approximate a query by two app-queries (Section 4.1).

A query half-plane whose slope is not in ``S`` is covered by the union of
two half-planes with neighbouring slopes from ``S``, both passing through
a common pivot point on the query line. Operators follow Table 1; query
types follow Section 4.1:

* an EXIST query becomes two EXIST app-queries;
* an ALL query becomes one ALL app-query (on ``q1``) and one EXIST
  app-query (on ``q2``) — two ALL app-queries would be incorrect
  (Figure 4).

Every tuple retrieved by an app-query is only a *candidate* for the
original query: the caller refines against the exact predicate. Tuples
found by both app-queries are the technique's *duplicates*.
"""

from __future__ import annotations

from repro.core.dual_index import DualIndex
from repro.core.query import ALL, EXIST, AppQuery, HalfPlaneQuery
from repro.core.slope_set import SlopeCase
from repro.errors import QueryError
from repro.obs import trace as obs


def build_app_queries(
    index: DualIndex, query: HalfPlaneQuery, pivot_x: float = 0.0
) -> tuple[AppQuery, AppQuery]:
    """The two app-queries covering ``query`` (Table 1 + Section 4.1).

    ``pivot_x`` selects the pivot point ``P = (pivot_x, a·pivot_x + b)``
    on the query line; the paper leaves the optimal choice open, so it is
    a tunable (ablation A5).
    """
    a = query.slope_2d
    b = query.intercept
    info = index.slopes.classify(a)
    if info.case is SlopeCase.EXACT:
        raise QueryError("T1 called for a slope that is in S")
    slopes = index.slopes

    def intercept_for(slope_index: int) -> float:
        # Line through P = (pivot_x, a*pivot_x + b) with slope s_i.
        return b + (a - slopes[slope_index]) * pivot_x

    theta1 = slopes.app_theta(query.theta, info.flip1)
    theta2 = slopes.app_theta(query.theta, info.flip2)
    if query.query_type == EXIST:
        type1 = type2 = EXIST
    else:
        # ALL → one ALL app-query plus one EXIST app-query: any tuple
        # contained in q ⊆ q1 ∪ q2 either meets q1 or lies inside q2.
        type1, type2 = EXIST, ALL
    q1 = AppQuery(type1, info.index1, intercept_for(info.index1), theta1)
    q2 = AppQuery(type2, info.index2, intercept_for(info.index2), theta2)
    return q1, q2


def run_app_query(index: DualIndex, app: AppQuery) -> set[int]:
    """Execute one app-query with the restricted technique (Section 3).

    Returns candidate RIDs. No early accepts: satisfying the app-query
    says nothing final about the original query.
    """
    trees, upward = index.trees_for(app.query_type, app.theta)
    tree = trees[app.slope_index]
    margin = index.margin(app.intercept)
    rids: set[int] = set()
    with obs.span("sweep.app", tree=tree.name, type=app.query_type):
        if upward:
            start = app.intercept - margin
            threshold = tree.quantize(start)
            for visit in tree.sweep_up(start):
                obs.incr("comparisons", len(visit.leaf.keys))
                for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
                    if key >= threshold:
                        rids.add(rid)
        else:
            start = app.intercept + margin
            threshold = tree.quantize(start)
            for visit in tree.sweep_down(start):
                obs.incr("comparisons", len(visit.leaf.keys))
                for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
                    if key <= threshold:
                        rids.add(rid)
    return rids


def t1_candidates(
    index: DualIndex, query: HalfPlaneQuery, pivot_x: float = 0.0
) -> tuple[set[int], int]:
    """Candidate RIDs for ``query`` plus the duplicate count."""
    q1, q2 = build_app_queries(index, query, pivot_x)
    rids1 = run_app_query(index, q1)
    rids2 = run_app_query(index, q2)
    duplicates = len(rids1 & rids2)
    obs.incr("t1.duplicates", duplicates)
    return rids1 | rids2, duplicates
