"""The dual-representation index structure (Sections 3, 4.2, 4.3).

For every slope ``s_i`` in the predefined set ``S``, two B+-trees index
the relation: ``B^up_i`` keyed by ``TOP^P(s_i)`` and ``B^down_i`` keyed by
``BOT^P(s_i)``. Tuple records live in a heap file; tree entries point at
record RIDs. Every leaf carries four handicap aggregates::

    aux[0] = low_prev,  aux[1] = low_next    (min of tree keys of tuples
             assigned to the leaf by their strip TOP-maximum — used by
             EXIST(q(>=)) in B^up and ALL(q(>=)) in B^down)
    aux[2] = high_prev, aux[3] = high_next   (max of tree keys of tuples
             assigned by their strip BOT-minimum — used by ALL(q(<=)) in
             B^up and EXIST(q(<=)) in B^down)

Assignment keys are intercept-axis values, so one pair of *handicap
directories* per (slope, side) — B+-trees keyed by assignment key —
serves both the up and the down tree during dynamic maintenance.
Statically built indexes compute all aggregates in one merge pass and
need no directories.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.btree.columnar import columnar_default
from repro.btree.tree import BPlusTree
from repro.constraints.relation import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.errors import IndexError_, QueryError
from repro.geometry import dual
from repro.obs import trace as obs
from repro.storage.heap import HeapFile
from repro.storage.pager import Pager
from repro.storage.serialize import KeyCodec, decode_tuple, encode_tuple
from repro.core.slope_set import SlopeSet

#: Leaf aux slot layout.
AUX_LOW_PREV = 0
AUX_LOW_NEXT = 1
AUX_HIGH_PREV = 2
AUX_HIGH_NEXT = 3
AUX_SLOTS = 4

#: Sentinels meaning "no tuple assigned to this leaf/strip".
NO_LOW = math.inf
NO_HIGH = -math.inf

_SIDES = ("prev", "next")

#: Largest packed-RID value for which the rid -> tid translation keeps a
#: dense gather table (32 MB of int64 at the limit); sparser rid spaces
#: fall back to binary search over the sorted translation arrays.
_DENSE_LUT_LIMIT = 1 << 22


@dataclass
class EntryKeys:
    """All index keys derived from one tuple's geometry.

    ``top``/``bot`` are the tree keys per slope; ``assign_top``/
    ``assign_bot`` are the strip assignment keys per (slope, side) —
    ``None`` when the slope has no neighbour on that side.
    """

    top: list[float]
    bot: list[float]
    assign_top: list[dict[str, float | None]]
    assign_bot: list[dict[str, float | None]]


class KeysLRU:
    """Bounded LRU map ``rid -> EntryKeys`` for the catalog key cache.

    The cache is purely an optimisation: :meth:`DualIndex._tree_key_of`
    re-derives evicted entries from the heap record, so eviction can
    never change an answer — only cost extra record fetches. A bound
    matters because sustained insert/delete traffic would otherwise grow
    the dict without limit.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise IndexError_("keys cache capacity must be >= 1")
        self.capacity = capacity
        self._data: OrderedDict[int, EntryKeys] = OrderedDict()

    def get(self, rid: int) -> "EntryKeys | None":
        keys = self._data.get(rid)
        if keys is not None:
            self._data.move_to_end(rid)
        return keys

    def __setitem__(self, rid: int, keys: "EntryKeys") -> None:
        self._data[rid] = keys
        self._data.move_to_end(rid)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def pop(self, rid: int, default: "EntryKeys | None" = None):
        return self._data.pop(rid, default)

    def __contains__(self, rid: int) -> bool:
        return rid in self._data

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class IndexSpace:
    """Page breakdown for Figure 10."""

    tree_pages: int
    directory_pages: int
    heap_pages: int

    @property
    def index_pages(self) -> int:
        """Query-structure pages (what Figure 10 compares)."""
        return self.tree_pages

    @property
    def total_pages(self) -> int:
        return self.tree_pages + self.directory_pages + self.heap_pages


class DualIndex:
    """The per-slope B+-tree forest with handicap maintenance.

    For every slope ``s_i`` of the predefined set ``S``, one tree keyed
    by ``TOP^P(s_i)`` (``up[i]``) and one by ``BOT^P(s_i)``
    (``down[i]``); records live in a heap file behind the same pager.
    Most callers go through :class:`~repro.core.planner.DualIndexPlanner`
    rather than using the index directly.

    Example::

        >>> from repro import GeneralizedRelation, parse_tuple
        >>> from repro.core.dual_index import DualIndex
        >>> r = GeneralizedRelation([
        ...     parse_tuple("y >= x and y <= 4 and x >= 0"),
        ... ])
        >>> index = DualIndex(slopes=[-1.0, 0.0, 1.0])
        >>> index.build(r)
        >>> index.size, len(index.up), len(index.down)
        (1, 3, 3)
        >>> index.up[1].search(4.0)          # TOP at slope 0 is max y = 4
        [0]
        >>> index.version                    # bumped by build/insert/delete
        1

    Parameters
    ----------
    pager:
        Storage stack shared by trees, directories, and the heap file.
    slopes:
        The predefined slope set ``S``.
    key_codec:
        Key width; the default 4 bytes matches the paper.
    dynamic:
        When True, handicap directories are maintained so inserts and
        deletes keep handicaps repairable in ``O(log_B n)`` amortised
        page accesses (Section 4.2 Step 2). Statically built benchmark
        indexes leave this off.
    keys_cache_entries:
        Capacity of the :class:`KeysLRU` catalog key cache. Eviction is
        answer-preserving (evicted keys are re-derived from the heap
        record on demand); the bound keeps memory flat under sustained
        update traffic.
    columnar:
        Forwarded to every B+-tree: True runs descents and merged sweeps
        on cached numpy columns, False forces the legacy scalar path.
        ``None`` (default) follows the ``REPRO_SCALAR`` environment gate
        (see :mod:`repro.btree.columnar`). Answers and logical page
        accounting are identical either way.
    """

    def __init__(
        self,
        pager: Pager | None = None,
        slopes: SlopeSet | Iterable[float] = (0.0,),
        key_codec: KeyCodec | None = None,
        dynamic: bool = False,
        name: str = "dual",
        keys_cache_entries: int = 65536,
        columnar: bool | None = None,
    ) -> None:
        self.pager = pager if pager is not None else Pager()
        self.slopes = slopes if isinstance(slopes, SlopeSet) else SlopeSet(slopes)
        self.codec = key_codec if key_codec is not None else KeyCodec(4)
        self.dynamic = dynamic
        self.name = name
        self.columnar = (
            columnar_default() if columnar is None else bool(columnar)
        )
        self.heap = HeapFile(self.pager)
        k = len(self.slopes)
        self.up = [
            BPlusTree(self.pager, self.codec, AUX_SLOTS, f"{name}.up[{i}]",
                      columnar=self.columnar)
            for i in range(k)
        ]
        self.down = [
            BPlusTree(self.pager, self.codec, AUX_SLOTS, f"{name}.down[{i}]",
                      columnar=self.columnar)
            for i in range(k)
        ]
        # Handicap directories: per slope, per side, one tree keyed by
        # the TOP-strip-max assignment key and one by the BOT-strip-min.
        self.dir_top: list[dict[str, BPlusTree]] = [dict() for _ in range(k)]
        self.dir_bot: list[dict[str, BPlusTree]] = [dict() for _ in range(k)]
        if dynamic:
            for i in range(k):
                for side in _SIDES:
                    if self.slopes.strip(i, side) is None:
                        continue
                    self.dir_top[i][side] = BPlusTree(
                        self.pager, self.codec, 0, f"{name}.dirT[{i}.{side}]",
                        columnar=self.columnar,
                    )
                    self.dir_bot[i][side] = BPlusTree(
                        self.pager, self.codec, 0, f"{name}.dirB[{i}.{side}]",
                        columnar=self.columnar,
                    )
        # Catalog: tuple id <-> heap RID (a real system's data dictionary),
        # plus a key cache so handicap maintenance does not have to fetch
        # records to re-derive tree keys (kept consistent by insert/delete).
        self.rid_of: dict[int, int] = {}
        self.tid_of: dict[int, int] = {}
        self.keys_cache = KeysLRU(keys_cache_entries)
        # Sorted rid -> tid translation arrays for the vectorized batch
        # path, rebuilt lazily whenever the structure version moves.
        self._rid_lut: "np.ndarray | None" = None
        self._tid_lut: "np.ndarray | None" = None
        self._dense_lut: "np.ndarray | None" = None
        self._lut_version = -1
        # Global assignment-key extrema per (tree name, side): a query
        # whose intercept lies beyond every assignment key can skip the
        # secondary sweep entirely (extension A7; conservative under
        # deletes — extrema only widen).
        self.assign_extrema: dict[tuple[str, str], tuple[float, float]] = {}
        self.size = 0
        self.skipped: list[int] = []  # unsatisfiable tuples seen at build
        #: Monotonic structure version: bumped by build/insert/delete.
        #: Batch-execution caches key their entries on it, so any change
        #: to the indexed relation invalidates every cached answer.
        self.version = 0

    # ------------------------------------------------------------------
    # key derivation
    # ------------------------------------------------------------------
    def compute_keys(self, t: GeneralizedTuple) -> EntryKeys:
        """Tree and strip-assignment keys for one satisfiable tuple."""
        poly = t.extension()
        if poly.is_empty:
            raise IndexError_("cannot index a tuple with an empty extension")
        tops: list[float] = []
        bots: list[float] = []
        assign_top: list[dict[str, float | None]] = []
        assign_bot: list[dict[str, float | None]] = []
        for i, s in enumerate(self.slopes):
            top_v = dual.top(poly, s)
            bot_v = dual.bot(poly, s)
            assert top_v is not None and bot_v is not None
            tops.append(top_v)
            bots.append(bot_v)
            at: dict[str, float | None] = {}
            ab: dict[str, float | None] = {}
            for side in _SIDES:
                strip = self.slopes.strip(i, side)
                if strip is None:
                    at[side] = None
                    ab[side] = None
                else:
                    at[side] = dual.strip_top_max(poly, strip[0], strip[1])
                    ab[side] = dual.strip_bot_min(poly, strip[0], strip[1])
            assign_top.append(at)
            assign_bot.append(ab)
        return EntryKeys(tops, bots, assign_top, assign_bot)

    # ------------------------------------------------------------------
    # bulk build
    # ------------------------------------------------------------------
    def build(
        self,
        relation: GeneralizedRelation,
        fill: float = 0.9,
        workers: int = 0,
    ) -> None:
        """Index a whole relation: heap records, 2k bulk-loaded trees,
        one merge pass of handicap aggregates, and (in dynamic mode) the
        handicap directories. Unsatisfiable tuples are skipped and listed
        in :attr:`skipped`.

        ``workers >= 2`` computes :class:`EntryKeys` in parallel: the
        relation is chunked across a process pool and each worker
        evaluates all slopes per tuple in one vectorized pass
        (:mod:`repro.shard.keys`). ``workers <= 1`` is the legacy serial
        scalar path. Both paths stage identical keys, so the resulting
        index layout is byte-identical either way.
        """
        if self.size:
            raise IndexError_("build on a non-empty index")
        if relation.dimension not in (0, 2):
            raise IndexError_(
                "DualIndex is the 2-D structure; use DDimDualIndex for d > 2"
            )
        with obs.span("build", pager=self.pager, index=self.name,
                      tuples=len(relation), workers=workers):
            precomputed = None
            if workers and workers >= 2:
                from repro.shard.keys import parallel_compute_keys

                precomputed = parallel_compute_keys(
                    relation, self.slopes, workers
                )
            self._build(relation, fill, precomputed)

    def _build(
        self,
        relation: GeneralizedRelation,
        fill: float,
        precomputed: "Mapping[int, EntryKeys | None] | None" = None,
    ) -> None:
        k = len(self.slopes)
        up_entries: list[list[tuple[float, int]]] = [[] for _ in range(k)]
        down_entries: list[list[tuple[float, int]]] = [[] for _ in range(k)]
        keys_by_rid: dict[int, EntryKeys] = {}
        # Cluster the heap by TOP at the middle slope: T2 candidate sets
        # are contiguous key ranges, so a key-clustered heap turns the
        # refinement fetch into (mostly) sequential page reads — the
        # standard clustered-index layout (see DESIGN.md §5).
        middle = len(self.slopes) // 2
        staged: list[tuple[float, int, GeneralizedTuple, EntryKeys]] = []
        for tid, t in relation:
            if precomputed is not None:
                keys = precomputed.get(tid)
                if keys is None:
                    self.skipped.append(tid)
                    continue
            else:
                if not t.is_satisfiable():
                    self.skipped.append(tid)
                    continue
                keys = self.compute_keys(t)
            cluster_key = keys.top[middle]
            if not math.isfinite(cluster_key):
                cluster_key = math.copysign(1e30, cluster_key)
            staged.append((cluster_key, tid, t, keys))
        staged.sort(key=lambda item: item[0])
        for _cluster_key, tid, t, keys in staged:
            rid = self.heap.insert(encode_tuple(tid, t))
            self.rid_of[tid] = rid
            self.tid_of[rid] = tid
            keys_by_rid[rid] = keys
            self.keys_cache[rid] = keys
            for i in range(k):
                up_entries[i].append((keys.top[i], rid))
                down_entries[i].append((keys.bot[i], rid))
            self.size += 1
        for i in range(k):
            self.up[i].bulk_load(up_entries[i], fill)
            self.down[i].bulk_load(down_entries[i], fill)
        self._rebuild_handicaps(keys_by_rid)
        if self.dynamic:
            self._bulk_load_directories(keys_by_rid, fill)
        self.version += 1

    def _bulk_load_directories(
        self, keys_by_rid: dict[int, EntryKeys], fill: float
    ) -> None:
        for i in range(len(self.slopes)):
            for side in _SIDES:
                if side not in self.dir_top[i]:
                    continue
                self.dir_top[i][side].bulk_load(
                    (
                        (keys.assign_top[i][side], rid)
                        for rid, keys in keys_by_rid.items()
                    ),
                    fill,
                )
                self.dir_bot[i][side].bulk_load(
                    (
                        (keys.assign_bot[i][side], rid)
                        for rid, keys in keys_by_rid.items()
                    ),
                    fill,
                )

    # ------------------------------------------------------------------
    # handicap aggregates
    # ------------------------------------------------------------------
    def _rebuild_handicaps(self, keys_by_rid: dict[int, EntryKeys]) -> None:
        """Recompute every leaf's four aggregates in one pass per tree.

        Tree keys and assignment keys are quantised once per slope
        (vectorized) and shared between the up and the down tree — the
        assignment keys do not depend on the tree at all, so the old
        per-(tree, side) rescan of ``keys_by_rid`` did the same work
        ``2 × sides`` times over.
        """
        all_keys = list(keys_by_rid.values())
        quantize = self.codec.quantize_many
        for i in range(len(self.slopes)):
            tops_q = quantize([keys.top[i] for keys in all_keys]).tolist()
            bots_q = quantize([keys.bot[i] for keys in all_keys]).tolist()
            assigns: dict[str, tuple[list[float], list[float]]] = {}
            for side in _SIDES:
                if self.slopes.strip(i, side) is None:
                    continue
                a_top = [keys.assign_top[i][side] for keys in all_keys]
                a_bot = [keys.assign_bot[i][side] for keys in all_keys]
                assert None not in a_top and None not in a_bot
                assigns[side] = (
                    quantize(a_top).tolist(),
                    quantize(a_bot).tolist(),
                )
            for tree, values in ((self.up[i], tops_q), (self.down[i], bots_q)):
                assignments_low: dict[str, list[tuple[float, float]]] = {}
                assignments_high: dict[str, list[tuple[float, float]]] = {}
                for side, (a_top_q, a_bot_q) in assigns.items():
                    assignments_low[side] = list(zip(a_top_q, values))
                    assignments_high[side] = list(zip(a_bot_q, values))
                    if a_top_q:
                        self.assign_extrema[(tree.name, side)] = (
                            min(a_bot_q),
                            max(a_top_q),
                        )
                _write_aggregates(tree, assignments_low, assignments_high)

    def refresh_handicaps(self) -> int:
        """Dynamic-mode maintenance: recompute aggregates of every leaf
        whose handicap flag was invalidated by an update. Returns the
        number of refreshed leaves. Requires directories.
        """
        if not self.dynamic:
            raise IndexError_("refresh_handicaps requires dynamic mode")
        refreshed = 0
        with obs.span("maintain.handicaps", pager=self.pager):
            for i in range(len(self.slopes)):
                for tree, key_field in (
                    (self.up[i], "top"), (self.down[i], "bot")
                ):
                    refreshed += self._refresh_tree(i, tree, key_field)
            obs.incr("handicap.leaves_refreshed", refreshed)
        return refreshed

    def _refresh_tree(self, i: int, tree: BPlusTree, key_field: str) -> int:
        from repro.storage.disk import NULL_PAGE

        refreshed = 0
        for pid in sorted(tree.dirty_leaves):
            if pid not in tree.owned_pages:
                continue
            leaf = tree.read_leaf(pid)
            if leaf.handicaps_valid or not leaf.keys:
                tree.dirty_leaves.discard(pid)
                continue
            # Ownership range: [first key, next leaf's first key), with the
            # first leaf owning everything below its keys too.
            lo = -math.inf if leaf.prev == NULL_PAGE else leaf.keys[0]
            if leaf.next == NULL_PAGE:
                hi = math.inf
            else:
                nxt = tree.read_leaf(leaf.next)
                hi = nxt.keys[0] if nxt.keys else math.inf
            aux = [NO_LOW, NO_LOW, NO_HIGH, NO_HIGH]
            for side in _SIDES:
                if side not in self.dir_top[i]:
                    continue
                low_slot = AUX_LOW_PREV if side == "prev" else AUX_LOW_NEXT
                high_slot = AUX_HIGH_PREV if side == "prev" else AUX_HIGH_NEXT
                for rid in _directory_range(self.dir_top[i][side], lo, hi):
                    value = self._tree_key_of(rid, i, key_field)
                    if value < aux[low_slot]:
                        aux[low_slot] = value
                for rid in _directory_range(self.dir_bot[i][side], lo, hi):
                    value = self._tree_key_of(rid, i, key_field)
                    if value > aux[high_slot]:
                        aux[high_slot] = value
            leaf.set_handicaps(aux)
            tree.write_leaf(pid, leaf)
            refreshed += 1
        return refreshed

    def _tree_key_of(self, rid: int, i: int, key_field: str) -> float:
        """A tuple's tree key, from the catalog cache or (on a cache
        miss, e.g. after a restart) from its fetched record."""
        keys = self.keys_cache.get(rid)
        if keys is None:
            _tid, t = decode_tuple(self.heap.fetch(rid))
            keys = self.compute_keys(t)
            self.keys_cache[rid] = keys
        value = getattr(keys, key_field)[i]
        return self.codec.quantize(value)

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------
    def insert(self, tid: int, t: GeneralizedTuple) -> None:
        """Insert one tuple into all 2k trees (+ directories).

        Affected leaves get their handicap flag cleared; call
        :meth:`refresh_handicaps` before the next approximate query
        (write-deferred maintenance).
        """
        if tid in self.rid_of:
            raise IndexError_(f"tuple id {tid} already indexed")
        keys = self.compute_keys(t)
        rid = self.heap.insert(encode_tuple(tid, t))
        self.rid_of[tid] = rid
        self.tid_of[rid] = tid
        self.keys_cache[rid] = keys
        for i in range(len(self.slopes)):
            self.up[i].insert(keys.top[i], rid)
            self.down[i].insert(keys.bot[i], rid)
            if self.dynamic:
                for side in _SIDES:
                    if side not in self.dir_top[i]:
                        continue
                    a_top = keys.assign_top[i][side]
                    a_bot = keys.assign_bot[i][side]
                    assert a_top is not None and a_bot is not None
                    self.dir_top[i][side].insert(a_top, rid)
                    self.dir_bot[i][side].insert(a_bot, rid)
                    self._invalidate_owner(self.up[i], a_top)
                    self._invalidate_owner(self.up[i], a_bot)
                    self._invalidate_owner(self.down[i], a_top)
                    self._invalidate_owner(self.down[i], a_bot)
            for side in _SIDES:
                a_top = keys.assign_top[i][side]
                a_bot = keys.assign_bot[i][side]
                if a_top is None or a_bot is None:
                    continue
                for tree in (self.up[i], self.down[i]):
                    lo, hi = self.assign_extrema.get(
                        (tree.name, side), (math.inf, -math.inf)
                    )
                    self.assign_extrema[(tree.name, side)] = (
                        min(lo, tree.quantize(a_bot)),
                        max(hi, tree.quantize(a_top)),
                    )
        self.size += 1
        self.version += 1

    def delete(self, tid: int) -> None:
        """Remove a tuple from trees, directories and the heap."""
        rid = self.rid_of.pop(tid, None)
        if rid is None:
            raise IndexError_(f"tuple id {tid} is not indexed")
        del self.tid_of[rid]
        keys = self.keys_cache.pop(rid, None)
        if keys is None:
            _stored_tid, t = decode_tuple(self.heap.fetch(rid))
            keys = self.compute_keys(t)
        for i in range(len(self.slopes)):
            if not self.up[i].delete(keys.top[i], rid):
                raise IndexError_(f"up[{i}] entry missing for tuple {tid}")
            if not self.down[i].delete(keys.bot[i], rid):
                raise IndexError_(f"down[{i}] entry missing for tuple {tid}")
            if self.dynamic:
                for side in _SIDES:
                    if side not in self.dir_top[i]:
                        continue
                    a_top = keys.assign_top[i][side]
                    a_bot = keys.assign_bot[i][side]
                    assert a_top is not None and a_bot is not None
                    self.dir_top[i][side].delete(a_top, rid)
                    self.dir_bot[i][side].delete(a_bot, rid)
                    self._invalidate_owner(self.up[i], a_top)
                    self._invalidate_owner(self.up[i], a_bot)
                    self._invalidate_owner(self.down[i], a_top)
                    self._invalidate_owner(self.down[i], a_bot)
        self.heap.delete(rid)
        self.size -= 1
        self.version += 1

    def _invalidate_owner(self, tree: BPlusTree, assign_key: float) -> None:
        """Clear the handicap flag of the leaf owning an assignment key."""
        if tree.root is None:
            return
        pid = tree._descend_right((tree.quantize(assign_key), 0xFFFFFFFF))
        leaf = tree.read_leaf(pid)
        if leaf.handicaps_valid:
            leaf.invalidate_handicaps()
            tree.write_leaf(pid, leaf)

    # ------------------------------------------------------------------
    # accounting & helpers
    # ------------------------------------------------------------------
    def all_trees(self) -> Iterator[BPlusTree]:
        """Every B+-tree of the index, in a deterministic order."""
        yield from self.up
        yield from self.down
        for per_slope in (self.dir_top, self.dir_bot):
            for sides in per_slope:
                for side in _SIDES:
                    if side in sides:
                        yield sides[side]

    def catalog_payload(self) -> dict:
        """The index's non-page state as a JSON-serialisable catalog.

        Page images live in the pager; this payload is everything else a
        restored process needs: configuration (slopes, key width,
        dynamic flag), the tuple↔RID catalog, per-tree shape state, heap
        bookkeeping, and the assignment-key extrema. Deliberately *not*
        persisted: ``keys_cache`` (re-derived from heap records on
        miss), the lazy rid/tid LUTs (rebuilt on version), and the
        ``columnar`` flag (an engine choice, re-decided at open time).
        """
        return {
            "name": self.name,
            "dynamic": self.dynamic,
            "key_bytes": self.codec.key_bytes,
            "slopes": list(self.slopes),
            "size": self.size,
            "version": self.version,
            "skipped": list(self.skipped),
            "rid_of": sorted(self.rid_of.items()),
            "assign_extrema": [
                [tree_name, side, lo, hi]
                for (tree_name, side), (lo, hi)
                in sorted(self.assign_extrema.items())
            ],
            "heap": self.heap.state_payload(),
            "trees": {t.name: t.state_payload() for t in self.all_trees()},
        }

    def restore_catalog(self, payload: dict) -> None:
        """Inverse of :meth:`catalog_payload`, onto a freshly constructed
        index with matching slopes/key width/dynamic flag."""
        self.size = payload["size"]
        self.version = payload["version"]
        self.skipped = list(payload["skipped"])
        self.rid_of = {int(t): int(r) for t, r in payload["rid_of"]}
        self.tid_of = {r: t for t, r in self.rid_of.items()}
        self.assign_extrema = {
            (name, side): (lo, hi)
            for name, side, lo, hi in payload["assign_extrema"]
        }
        self.heap.restore_state(payload["heap"])
        trees = payload["trees"]
        for tree in self.all_trees():
            tree.restore_state(trees[tree.name])
        self._lut_version = -1

    def space(self) -> IndexSpace:
        """Page breakdown (Figure 10 compares ``tree_pages``)."""
        tree_pages = sum(t.page_count for t in self.up + self.down)
        dir_pages = 0
        for per_slope in (self.dir_top, self.dir_bot):
            for sides in per_slope:
                dir_pages += sum(t.page_count for t in sides.values())
        return IndexSpace(tree_pages, dir_pages, self.heap.page_count)

    def fetch_tuple(self, rid: int) -> tuple[int, GeneralizedTuple]:
        """Fetch and decode a record (one counted page read)."""
        return decode_tuple(self.heap.fetch(rid))

    def tids_for_rids(self, rids) -> "np.ndarray":
        """Vectorized catalog translation: tuple ids for an array of
        rids (all must be indexed).

        A dense gather table (``table[rid] -> tid``) when the rid space
        is small enough — one fancy-indexing pass, ~1ns per rid — and a
        ``np.searchsorted`` against sorted translation arrays otherwise.
        The batch executor's accepted sets are the largest per-query
        loops left once sweeps are columnar, and binary search was
        measured an order of magnitude slower than the dense gather.
        The tables rebuild lazily on version changes, so updates stay
        cheap.
        """
        arr = np.asarray(rids, dtype=np.int64)
        if self._lut_version != self.version:
            items = sorted(self.tid_of.items())
            self._rid_lut = np.fromiter(
                (r for r, _ in items), dtype=np.int64, count=len(items)
            )
            self._tid_lut = np.fromiter(
                (t for _, t in items), dtype=np.int64, count=len(items)
            )
            max_rid = int(self._rid_lut[-1]) if len(items) else -1
            if 0 <= max_rid < _DENSE_LUT_LIMIT:
                dense = np.full(max_rid + 1, -1, dtype=np.int64)
                dense[self._rid_lut] = self._tid_lut
                self._dense_lut = dense
            else:
                self._dense_lut = None
            self._lut_version = self.version
        if arr.size == 0:
            return arr
        if self._dense_lut is not None:
            return self._dense_lut[arr]
        assert self._rid_lut is not None and self._tid_lut is not None
        return self._tid_lut[np.searchsorted(self._rid_lut, arr)]

    def margin(self, value: float) -> float:
        """Safety widening of sweep boundaries.

        Covers float32 key quantisation plus the oracle tolerance, so a
        candidate sweep can never drop a qualifying tuple; the refinement
        step discards the handful of extra candidates.
        """
        scale = max(1.0, abs(value))
        if self.codec.key_bytes == 4:
            return 1e-5 * scale
        return 1e-8 * scale

    def trees_for(self, query_type: str, theta) -> tuple[list[BPlusTree], bool]:
        """Route a (type, θ) pair to its tree family and sweep direction.

        Returns ``(trees, upward)`` following Section 3:
        ALL(≥) → B^down up-sweep; ALL(≤) → B^up down-sweep;
        EXIST(≥) → B^up up-sweep; EXIST(≤) → B^down down-sweep.
        """
        from repro.constraints.theta import Theta

        if query_type == "ALL":
            if theta is Theta.GE:
                return self.down, True
            return self.up, False
        if query_type == "EXIST":
            if theta is Theta.GE:
                return self.up, True
            return self.down, False
        raise QueryError(f"unknown query type {query_type!r}")


# ----------------------------------------------------------------------
# module helpers
# ----------------------------------------------------------------------
def _write_aggregates(
    tree: BPlusTree,
    assignments_low: dict[str, list[tuple[float, float]]],
    assignments_high: dict[str, list[tuple[float, float]]],
) -> None:
    """One merge pass: per-leaf min/max of assigned tuple keys.

    The leaf owning an assignment key is found with one vectorized
    ``np.searchsorted`` over the leaf boundary keys, and the per-leaf
    extrema accumulate through ``np.minimum.at``/``np.maximum.at`` —
    both order-independent, so the aggregates are bit-identical to the
    old per-assignment binary-search loop.
    """
    pids: list[int] = []
    boundaries: list[float] = []
    for pid in tree.leaf_pids():
        leaf = tree.read_leaf(pid)
        pids.append(pid)
        boundaries.append(leaf.keys[0] if leaf.keys else math.inf)
    if not pids:
        return
    bounds = np.asarray(boundaries, dtype=np.float64)
    aggregates = np.empty((len(pids), AUX_SLOTS), dtype=np.float64)
    aggregates[:, (AUX_LOW_PREV, AUX_LOW_NEXT)] = NO_LOW
    aggregates[:, (AUX_HIGH_PREV, AUX_HIGH_NEXT)] = NO_HIGH

    def owners(assign_keys: np.ndarray) -> np.ndarray:
        return np.maximum(
            np.searchsorted(bounds, assign_keys, side="right") - 1, 0
        )

    for side, low_list in assignments_low.items():
        slot = AUX_LOW_PREV if side == "prev" else AUX_LOW_NEXT
        if low_list:
            pairs = np.asarray(low_list, dtype=np.float64)
            np.minimum.at(
                aggregates[:, slot], owners(pairs[:, 0]), pairs[:, 1]
            )
    for side, high_list in assignments_high.items():
        slot = AUX_HIGH_PREV if side == "prev" else AUX_HIGH_NEXT
        if high_list:
            pairs = np.asarray(high_list, dtype=np.float64)
            np.maximum.at(
                aggregates[:, slot], owners(pairs[:, 0]), pairs[:, 1]
            )
    for pid, aux in zip(pids, aggregates):
        leaf = tree.read_leaf(pid)
        leaf.set_handicaps(aux.tolist())
        tree.write_leaf(pid, leaf)


def _directory_range(tree: BPlusTree, lo: float, hi: float) -> Iterator[int]:
    """RIDs with assignment key in ``[lo, hi)`` — except that ``hi ==
    +inf`` (the last leaf's ownership range) also admits keys exactly at
    ``+inf``. Unbounded-above tuples carry ``TOP ≡ +inf`` strip
    assignment keys, and the bulk build's ``searchsorted`` owner maps
    them to the last leaf; the dynamic refresh must agree or those
    tuples silently drop out of the refreshed aggregate and the T2
    secondary sweep never runs for them (false dismissals)."""
    start = lo if math.isfinite(lo) else None
    for visit in tree.sweep_up(start):
        for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
            if key >= hi and not (hi == math.inf and key == math.inf):
                return
            if lo == -math.inf or key >= lo:
                yield rid
