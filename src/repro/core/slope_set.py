"""The predefined slope set ``S`` and its Table 1 case analysis.

Section 3 assumes query slopes come from a predefined set ``S`` of
cardinality ``k``; Section 4 approximates an arbitrary slope ``a ∉ S`` by
its neighbours in ``S``. In 2-D the neighbours are found by *rotating the
query line*: the slope axis wraps through the vertical, producing the
three cases of Table 1:

=====================  ==============================  ===================
case                   neighbours                      operators
=====================  ==============================  ===================
``a1 < a < a2``        enclosing slopes                ``θ1 = θ, θ2 = θ``
``a1 < a, a2 < a``     ``a1 = max S``, ``a2 = min S``  ``θ1 = θ, θ2 = ¬θ``
``a < a1, a < a2``     ``a1 = max S``, ``a2 = min S``  ``θ1 = ¬θ, θ2 = θ``
=====================  ==============================  ===================

(the second case is a query line steeper than every slope in ``S``; the
clockwise rotation meets ``max S`` first and the anti-clockwise rotation
wraps through the vertical to ``min S`` — and symmetrically for the
third.)
"""

from __future__ import annotations

import bisect
import enum
import math
from dataclasses import dataclass
from typing import Iterable

from repro.constraints.theta import Theta
from repro.errors import SlopeSetError


class SlopeCase(enum.Enum):
    """Where a query slope falls relative to ``S``."""

    EXACT = "exact"          # a ∈ S — Section 3 applies directly
    INTERIOR = "interior"    # a1 < a < a2 (Table 1 row 1)
    ABOVE = "above"          # a > max S  (Table 1 row 2)
    BELOW = "below"          # a < min S  (Table 1 row 3)


@dataclass(frozen=True)
class NeighbourInfo:
    """T1's app-query skeleton for one query slope.

    ``index1``/``index2`` point into ``S``; ``flip1``/``flip2`` say
    whether the app-query operator is ``θ`` (False) or ``¬θ`` (True),
    following Table 1.
    """

    case: SlopeCase
    index1: int
    index2: int
    flip1: bool
    flip2: bool


class SlopeSet:
    """An immutable, sorted set of distinct 2-D angular coefficients."""

    def __init__(self, slopes: Iterable[float]) -> None:
        values = sorted(float(s) for s in slopes)
        if not values:
            raise SlopeSetError("slope set must not be empty")
        if any(math.isnan(s) or math.isinf(s) for s in values):
            raise SlopeSetError("slopes must be finite (no vertical lines)")
        for a, b in zip(values, values[1:]):
            if a == b:
                raise SlopeSetError(f"duplicate slope {a}")
        self._slopes = tuple(values)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_angles(cls, angles_rad: Iterable[float]) -> "SlopeSet":
        """Slopes ``tan(φ)`` from line angles (must avoid ``π/2``)."""
        return cls(math.tan(a) for a in angles_rad)

    @classmethod
    def uniform_angles(
        cls, k: int, margin: float = 0.18, vertical_margin: float = 0.18
    ) -> "SlopeSet":
        """``k`` slopes with angles evenly spread over
        ``(margin, π - margin)`` staying ``vertical_margin`` away from the
        vertical ``π/2`` (a near-vertical slope would index a useless
        ``tan``-exploded axis). This is the benchmarks' default ``S``.
        """
        if k < 1:
            raise SlopeSetError("k must be >= 1")
        lo, hi = margin, math.pi - margin
        v_lo, v_hi = math.pi / 2 - vertical_margin, math.pi / 2 + vertical_margin
        # Usable arc length excluding the vertical keep-away band.
        left = max(0.0, v_lo - lo)
        right = max(0.0, hi - v_hi)
        total = left + right
        angles = []
        for i in range(k):
            pos = total * (i + 0.5) / k
            if pos < left:
                angles.append(lo + pos)
            else:
                angles.append(v_hi + (pos - left))
        return cls.from_angles(angles)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    @property
    def slopes(self) -> tuple[float, ...]:
        return self._slopes

    def __len__(self) -> int:
        return len(self._slopes)

    def __getitem__(self, index: int) -> float:
        return self._slopes[index]

    def __iter__(self):
        return iter(self._slopes)

    def __contains__(self, slope: float) -> bool:
        return self.index_of(slope) is not None

    def index_of(self, slope: float, tol: float = 0.0) -> int | None:
        """Index of a slope in ``S`` (optionally within ``tol``)."""
        i = bisect.bisect_left(self._slopes, slope)
        for j in (i - 1, i):
            if 0 <= j < len(self._slopes) and abs(self._slopes[j] - slope) <= tol:
                return j
        return None

    # ------------------------------------------------------------------
    # Table 1 analysis
    # ------------------------------------------------------------------
    def classify(self, slope: float, tol: float = 0.0) -> NeighbourInfo:
        """Neighbour slopes and operator flips for a query slope."""
        exact = self.index_of(slope, tol)
        if exact is not None:
            return NeighbourInfo(SlopeCase.EXACT, exact, exact, False, False)
        if len(self._slopes) == 1:
            # Degenerate S: both rotations reach the same slope; the
            # wrap-around rules still apply.
            case = SlopeCase.ABOVE if slope > self._slopes[0] else SlopeCase.BELOW
            flip2 = case is SlopeCase.ABOVE
            return NeighbourInfo(case, 0, 0, not flip2, flip2)
        if slope > self._slopes[-1]:
            # Clockwise rotation hits max S (same operator); the
            # anti-clockwise one wraps through vertical to min S (¬θ).
            return NeighbourInfo(
                SlopeCase.ABOVE, len(self._slopes) - 1, 0, False, True
            )
        if slope < self._slopes[0]:
            return NeighbourInfo(
                SlopeCase.BELOW, len(self._slopes) - 1, 0, True, False
            )
        i = bisect.bisect_left(self._slopes, slope)
        return NeighbourInfo(SlopeCase.INTERIOR, i - 1, i, False, False)

    def nearest(self, slope: float) -> int:
        """Index of the slope in ``S`` closest to ``slope``."""
        i = bisect.bisect_left(self._slopes, slope)
        best = None
        best_dist = math.inf
        for j in (i - 1, i):
            if 0 <= j < len(self._slopes):
                dist = abs(self._slopes[j] - slope)
                if dist < best_dist:
                    best, best_dist = j, dist
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # T2 strips
    # ------------------------------------------------------------------
    def strip(self, index: int, side: str) -> tuple[float, float] | None:
        """The handicap strip ``[s_i, s_mid]`` toward a neighbour.

        ``side`` is ``"next"`` or ``"prev"``; returns ``None`` when the
        slope has no neighbour on that side (edge of ``S``).
        """
        if side == "next":
            if index + 1 >= len(self._slopes):
                return None
            return (
                self._slopes[index],
                (self._slopes[index] + self._slopes[index + 1]) / 2.0,
            )
        if side == "prev":
            if index == 0:
                return None
            return (
                self._slopes[index],
                (self._slopes[index - 1] + self._slopes[index]) / 2.0,
            )
        raise SlopeSetError(f"side must be 'next' or 'prev', got {side!r}")

    def anchor_for(self, slope: float) -> tuple[int, str] | None:
        """T2 anchor: nearest slope index and the strip side covering
        ``slope``. ``None`` when the query slope is outside
        ``(min S, max S)`` — T2's interior case does not apply and the
        planner falls back to T1 (the paper treats these wrap cases "in a
        similar way"; see DESIGN.md).
        """
        if not (self._slopes[0] < slope < self._slopes[-1]):
            return None
        index = self.nearest(slope)
        side = "next" if slope >= self._slopes[index] else "prev"
        if self.strip(index, side) is None:  # pragma: no cover - interior slope
            return None
        return index, side

    @staticmethod
    def app_theta(theta: Theta, flip: bool) -> Theta:
        """Apply Table 1's operator column."""
        return theta.negated() if flip else theta

    def __repr__(self) -> str:
        return f"SlopeSet({list(self._slopes)!r})"
