"""Technique T2: single-tree approximation with handicap values
(Sections 4.2–4.3 — the paper's main contribution).

The query is answered with *one* B+-tree — the one of the slope nearest
to the query slope — by two opposite-direction leaf sweeps that touch
disjoint key ranges, so no duplicates can occur:

1. the *primary sweep* runs in the query's natural direction from the
   query intercept, collecting result candidates and, from every visited
   leaf, the handicap aggregate of the strip the query slope falls in;
2. the combined handicap (``low(q)`` / ``high(q)``) bounds how far a
   *secondary sweep* must run in the opposite direction to pick up every
   tuple the discarded second app-query would have found.

Both sweeps produce candidates only; the planner refines them against
the exact predicate (false hits remain possible, duplicates do not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.btree.tree import BPlusTree
from repro.core.dual_index import (
    AUX_HIGH_NEXT,
    AUX_HIGH_PREV,
    AUX_LOW_NEXT,
    AUX_LOW_PREV,
    DualIndex,
)
from repro.core.query import HalfPlaneQuery
from repro.errors import QueryError
from repro.obs import trace as obs
from repro.storage.disk import NULL_PAGE


@dataclass
class T2Trace:
    """Diagnostics of one T2 execution."""

    candidates: set[int] = field(default_factory=set)
    primary_leaves: int = 0
    secondary_leaves: int = 0
    handicap: float = math.nan  # low(q) or high(q)
    anchor_index: int = -1
    side: str = ""


def t2_candidates(index: DualIndex, query: HalfPlaneQuery) -> T2Trace:
    """Candidate RIDs for an interior-slope query via the handicap search.

    Raises :class:`QueryError` when the query slope is outside
    ``(min S, max S)`` — the planner falls back to T1 there.
    """
    a = query.slope_2d
    anchor = index.slopes.anchor_for(a)
    if anchor is None:
        raise QueryError(
            f"T2 interior case needs min S < {a} < max S "
            f"(S spans [{index.slopes[0]}, {index.slopes[-1]}])"
        )
    anchor_index, side = anchor
    trees, upward = index.trees_for(query.query_type, query.theta)
    tree = trees[anchor_index]
    trace = T2Trace(anchor_index=anchor_index, side=side)
    if upward:
        _sweep_up_then_down(index, tree, query.intercept, side, trace)
    else:
        _sweep_down_then_up(index, tree, query.intercept, side, trace)
    return trace


def _sweep_up_then_down(
    index: DualIndex,
    tree: BPlusTree,
    intercept: float,
    side: str,
    trace: T2Trace,
) -> None:
    """EXIST(q(>=)) in B^up / ALL(q(>=)) in B^down."""
    slot = AUX_LOW_NEXT if side == "next" else AUX_LOW_PREV
    margin = index.margin(intercept)
    start = tree.quantize(intercept - margin)
    # Extension A7: when the query intercept exceeds every assignment
    # key, no tuple can require the secondary sweep — the last leaf's
    # aggregate (which covers an unbounded assignment range) would
    # otherwise force one.
    extrema = index.assign_extrema.get((tree.name, side))
    secondary_possible = extrema is None or start <= extrema[1]
    low_q = math.inf
    first_visit = None
    with obs.span("sweep.primary", tree=tree.name):
        for visit in tree.sweep_up(start):
            if first_visit is None:
                first_visit = visit
            trace.primary_leaves += 1
            aux = visit.leaf.aux[slot]
            if aux < low_q:
                low_q = aux
            obs.incr("comparisons", len(visit.leaf.keys))
            for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
                if key >= start:
                    trace.candidates.add(rid)
    trace.handicap = low_q
    if first_visit is None or low_q >= start or not secondary_possible:
        return
    # Secondary, downward sweep: keys in [low(q) - margin, start). The
    # first leaf was already decoded by the primary sweep — charge no
    # second access for it (the paper: "the search accesses a leaf node
    # only once").
    threshold = tree.quantize(low_q - index.margin(low_q))
    leaf = first_visit.leaf
    with obs.span("sweep.secondary", tree=tree.name):
        while True:
            obs.incr("comparisons", len(leaf.keys))
            for key, rid in zip(leaf.keys, leaf.rids):
                if threshold <= key < start:
                    trace.candidates.add(rid)
            if leaf.keys and leaf.keys[0] < threshold:
                return
            if leaf.prev == NULL_PAGE:
                return
            leaf = tree.read_leaf(leaf.prev)
            trace.secondary_leaves += 1


def _sweep_down_then_up(
    index: DualIndex,
    tree: BPlusTree,
    intercept: float,
    side: str,
    trace: T2Trace,
) -> None:
    """ALL(q(<=)) in B^up / EXIST(q(<=)) in B^down."""
    slot = AUX_HIGH_NEXT if side == "next" else AUX_HIGH_PREV
    margin = index.margin(intercept)
    start = tree.quantize(intercept + margin)
    extrema = index.assign_extrema.get((tree.name, side))
    secondary_possible = extrema is None or start >= extrema[0]
    high_q = -math.inf
    first_visit = None
    with obs.span("sweep.primary", tree=tree.name):
        for visit in tree.sweep_down(start):
            if first_visit is None:
                first_visit = visit
            trace.primary_leaves += 1
            aux = visit.leaf.aux[slot]
            if aux > high_q:
                high_q = aux
            obs.incr("comparisons", len(visit.leaf.keys))
            for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
                if key <= start:
                    trace.candidates.add(rid)
    trace.handicap = high_q
    if first_visit is None or high_q <= start or not secondary_possible:
        return
    threshold = tree.quantize(high_q + index.margin(high_q))
    leaf = first_visit.leaf
    with obs.span("sweep.secondary", tree=tree.name):
        while True:
            obs.incr("comparisons", len(leaf.keys))
            for key, rid in zip(leaf.keys, leaf.rids):
                if start < key <= threshold:
                    trace.candidates.add(rid)
            if leaf.keys and leaf.keys[-1] > threshold:
                return
            if leaf.next == NULL_PAGE:
                return
            leaf = tree.read_leaf(leaf.next)
            trace.secondary_leaves += 1
