"""Half-plane queries and query results.

A :class:`HalfPlaneQuery` is the paper's query object
``Q(x_d θ b_1 x_1 + … + b_{d-1} x_{d-1} + b_d)`` with
``Q ∈ {ALL, EXIST}``: a query type, a slope (scalar in 2-D, vector in
d-D), an intercept, and a weak comparison operator.

:class:`QueryResult` carries the answer set plus the per-query
diagnostics the experiments report: candidates retrieved, false hits
discarded by refinement, duplicates produced by the approximation, and
the page accesses charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.constraints.linear import LinearConstraint
from repro.constraints.theta import Theta
from repro.errors import QueryError
from repro.storage.stats import IOStats

ALL = "ALL"
EXIST = "EXIST"


@dataclass(frozen=True)
class HalfPlaneQuery:
    """An ALL or EXIST selection against a half-plane.

    ``EXIST`` selects tuples whose extension *meets* the half-plane
    ``y θ s·x + b``; ``ALL`` selects tuples *contained* in it. The slope
    may be a scalar (2-D) or a vector (d-D); ``theta`` accepts the
    symbols ``">="``/``"<="`` or :class:`~repro.constraints.theta.Theta`
    members.

    Example::

        >>> q = HalfPlaneQuery("EXIST", 0.5, 2.0, ">=")
        >>> q
        EXIST(x2 >= 0.5·x' + 2)
        >>> q.slope_2d, q.intercept, q.dimension
        (0.5, 2.0, 2)
        >>> q.with_type("ALL").query_type
        'ALL'
    """

    query_type: str
    slope: tuple[float, ...]
    intercept: float
    theta: Theta

    def __init__(
        self,
        query_type: str,
        slope: float | Sequence[float],
        intercept: float,
        theta: Theta | str,
    ) -> None:
        if query_type not in (ALL, EXIST):
            raise QueryError(
                f"query type must be {ALL!r} or {EXIST!r}, got {query_type!r}"
            )
        if isinstance(theta, str):
            theta = Theta.from_symbol(theta)
        if theta not in (Theta.GE, Theta.LE):
            raise QueryError(f"half-plane queries use >= or <=, got {theta}")
        if isinstance(slope, (int, float)):
            slope_t: tuple[float, ...] = (float(slope),)
        else:
            slope_t = tuple(float(v) for v in slope)
        if not slope_t:
            raise QueryError("empty query slope")
        object.__setattr__(self, "query_type", query_type)
        object.__setattr__(self, "slope", slope_t)
        object.__setattr__(self, "intercept", float(intercept))
        object.__setattr__(self, "theta", theta)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Dimension of the space the query lives in."""
        return len(self.slope) + 1

    @property
    def slope_2d(self) -> float:
        """The scalar angular coefficient (2-D queries only)."""
        if len(self.slope) != 1:
            raise QueryError("slope_2d on a non-2-D query")
        return self.slope[0]

    def as_constraint(self) -> LinearConstraint:
        """The query half-plane as a linear constraint."""
        coeffs = tuple(-v for v in self.slope) + (1.0,)
        return LinearConstraint(coeffs, -self.intercept, self.theta)

    def with_type(self, query_type: str) -> "HalfPlaneQuery":
        """Same half-plane, different selection type."""
        return HalfPlaneQuery(query_type, self.slope, self.intercept, self.theta)

    def __repr__(self) -> str:
        slope = self.slope[0] if len(self.slope) == 1 else self.slope
        return (
            f"{self.query_type}(x{self.dimension} {self.theta} "
            f"{slope}·x' + {self.intercept:g})"
        )


@dataclass(frozen=True)
class AppQuery:
    """One approximation query produced by T1 (Section 4.1).

    ``slope_index`` points into the predefined slope set, so the query is
    executable by the restricted technique of Section 3.
    """

    query_type: str
    slope_index: int
    intercept: float
    theta: Theta


@dataclass
class QueryResult:
    """Answer set plus execution diagnostics.

    ``ids`` is the oracle-exact answer (tuple ids); the remaining fields
    are the per-query measurements the paper's experiments report.

    Example::

        >>> from repro.storage.stats import IOStats
        >>> res = QueryResult(ids={3, 7}, technique="exact", candidates=4,
        ...                   false_hits=2, refinement_pages=1,
        ...                   io=IOStats(logical_reads=5))
        >>> res.page_accesses      # all pages touched
        5
        >>> res.index_accesses     # minus refinement fetches (Thm 3.1 metric)
        4
        >>> res.cached             # True when a batch cache served it
        False
    """

    ids: set[int] = field(default_factory=set)
    technique: str = ""
    candidates: int = 0
    false_hits: int = 0
    duplicates: int = 0
    accepted_without_refinement: int = 0
    refinement_pages: int = 0
    #: True when a batch executor served this answer from its result
    #: cache (the counts above describe the original execution; ``io``
    #: is zero — a cache hit touches no pages).
    cached: bool = False
    io: IOStats = field(default_factory=IOStats)
    #: Root span of the query's trace when tracing was active, else None
    #: (see :mod:`repro.obs`).
    trace: object | None = None

    @property
    def page_accesses(self) -> int:
        """Total pages touched: index traversal plus refinement fetches."""
        return self.io.logical_reads + self.io.logical_writes

    @property
    def index_accesses(self) -> int:
        """Index-structure page accesses only (descent + sweeps/nodes).

        This is the metric of the paper's Theorems 3.1/4.1/4.2, which
        charge the candidate stream at ``T/B`` — i.e. leaf pages, not
        per-record fetches.
        """
        return self.page_accesses - self.refinement_pages

    def __repr__(self) -> str:
        return (
            f"<QueryResult {self.technique} |ids|={len(self.ids)} "
            f"candidates={self.candidates} false_hits={self.false_hits} "
            f"duplicates={self.duplicates} pages={self.page_accesses}>"
        )
