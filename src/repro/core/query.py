"""Half-plane queries and query results.

A :class:`HalfPlaneQuery` is the paper's query object
``Q(x_d θ b_1 x_1 + … + b_{d-1} x_{d-1} + b_d)`` with
``Q ∈ {ALL, EXIST}``: a query type, a slope (scalar in 2-D, vector in
d-D), an intercept, and a weak comparison operator.

:class:`QueryResult` carries the answer set plus the per-query
diagnostics the experiments report: candidates retrieved, false hits
discarded by refinement, duplicates produced by the approximation, and
the page accesses charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constraints.linear import LinearConstraint
from repro.constraints.theta import Theta
from repro.errors import QueryError
from repro.storage.stats import IOStats

ALL = "ALL"
EXIST = "EXIST"


@dataclass(frozen=True)
class HalfPlaneQuery:
    """An ALL or EXIST selection against a half-plane.

    ``EXIST`` selects tuples whose extension *meets* the half-plane
    ``y θ s·x + b``; ``ALL`` selects tuples *contained* in it. The slope
    may be a scalar (2-D) or a vector (d-D); ``theta`` accepts the
    symbols ``">="``/``"<="`` or :class:`~repro.constraints.theta.Theta`
    members.

    Example::

        >>> q = HalfPlaneQuery("EXIST", 0.5, 2.0, ">=")
        >>> q
        EXIST(x2 >= 0.5·x' + 2)
        >>> q.slope_2d, q.intercept, q.dimension
        (0.5, 2.0, 2)
        >>> q.with_type("ALL").query_type
        'ALL'
    """

    query_type: str
    slope: tuple[float, ...]
    intercept: float
    theta: Theta

    def __init__(
        self,
        query_type: str,
        slope: float | Sequence[float],
        intercept: float,
        theta: Theta | str,
    ) -> None:
        if query_type not in (ALL, EXIST):
            raise QueryError(
                f"query type must be {ALL!r} or {EXIST!r}, got {query_type!r}"
            )
        if isinstance(theta, str):
            theta = Theta.from_symbol(theta)
        if theta not in (Theta.GE, Theta.LE):
            raise QueryError(f"half-plane queries use >= or <=, got {theta}")
        if isinstance(slope, (int, float)):
            slope_t: tuple[float, ...] = (float(slope),)
        else:
            slope_t = tuple(float(v) for v in slope)
        if not slope_t:
            raise QueryError("empty query slope")
        object.__setattr__(self, "query_type", query_type)
        object.__setattr__(self, "slope", slope_t)
        object.__setattr__(self, "intercept", float(intercept))
        object.__setattr__(self, "theta", theta)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Dimension of the space the query lives in."""
        return len(self.slope) + 1

    @property
    def slope_2d(self) -> float:
        """The scalar angular coefficient (2-D queries only)."""
        if len(self.slope) != 1:
            raise QueryError("slope_2d on a non-2-D query")
        return self.slope[0]

    def as_constraint(self) -> LinearConstraint:
        """The query half-plane as a linear constraint."""
        coeffs = tuple(-v for v in self.slope) + (1.0,)
        return LinearConstraint(coeffs, -self.intercept, self.theta)

    def with_type(self, query_type: str) -> "HalfPlaneQuery":
        """Same half-plane, different selection type."""
        return HalfPlaneQuery(query_type, self.slope, self.intercept, self.theta)

    def __repr__(self) -> str:
        slope = self.slope[0] if len(self.slope) == 1 else self.slope
        return (
            f"{self.query_type}(x{self.dimension} {self.theta} "
            f"{slope}·x' + {self.intercept:g})"
        )


@dataclass(frozen=True)
class AppQuery:
    """One approximation query produced by T1 (Section 4.1).

    ``slope_index`` points into the predefined slope set, so the query is
    executable by the restricted technique of Section 3.
    """

    query_type: str
    slope_index: int
    intercept: float
    theta: Theta


class QueryResult:
    """Answer set plus execution diagnostics.

    ``ids`` is the oracle-exact answer (tuple ids); the remaining fields
    are the per-query measurements the paper's experiments report.

    The columnar batch path hands answers over as numpy tid arrays
    (:meth:`set_lazy_ids`); the Python ``set`` is materialised on first
    access to :attr:`ids`, so callers that only count or never look at
    individual ids (benchmarks, shard fan-out merges) skip the
    array→set conversion entirely. Either way the observable value of
    ``ids`` is identical.

    Example::

        >>> from repro.storage.stats import IOStats
        >>> res = QueryResult(ids={3, 7}, technique="exact", candidates=4,
        ...                   false_hits=2, refinement_pages=1,
        ...                   io=IOStats(logical_reads=5))
        >>> res.page_accesses      # all pages touched
        5
        >>> res.index_accesses     # minus refinement fetches (Thm 3.1 metric)
        4
        >>> res.cached             # True when a batch cache served it
        False
    """

    __slots__ = (
        "_ids",
        "_lazy_tids",
        "_lazy_extra",
        "technique",
        "candidates",
        "false_hits",
        "duplicates",
        "accepted_without_refinement",
        "refinement_pages",
        "cached",
        "io",
        "trace",
    )

    def __init__(
        self,
        ids: set[int] | None = None,
        technique: str = "",
        candidates: int = 0,
        false_hits: int = 0,
        duplicates: int = 0,
        accepted_without_refinement: int = 0,
        refinement_pages: int = 0,
        cached: bool = False,
        io: IOStats | None = None,
        trace: object | None = None,
    ) -> None:
        self._ids: set[int] | None = ids if ids is not None else set()
        #: Deferred answer columns (numpy tid array + refined extras).
        self._lazy_tids = None
        self._lazy_extra: set[int] | None = None
        self.technique = technique
        self.candidates = candidates
        self.false_hits = false_hits
        self.duplicates = duplicates
        self.accepted_without_refinement = accepted_without_refinement
        self.refinement_pages = refinement_pages
        #: True when a batch executor served this answer from its result
        #: cache (the counts above describe the original execution; ``io``
        #: is zero — a cache hit touches no pages).
        self.cached = cached
        self.io = io if io is not None else IOStats()
        #: Root span of the query's trace when tracing was active, else
        #: None (see :mod:`repro.obs`).
        self.trace = trace

    # ------------------------------------------------------------------
    # answer set (lazy columnar handoff)
    # ------------------------------------------------------------------
    @property
    def ids(self) -> set[int]:
        """The answer set; materialised from columns on first access."""
        if self._ids is None:
            tids = self._lazy_tids
            if isinstance(tids, (list, tuple)):
                ids: set[int] = set()
                for column in tids:
                    ids.update(column.tolist())
            else:
                ids = set(tids.tolist())
            if self._lazy_extra:
                ids |= self._lazy_extra
            self._ids = ids
            self._lazy_tids = None
            self._lazy_extra = None
        return self._ids

    @ids.setter
    def ids(self, value: set[int]) -> None:
        self._ids = value
        self._lazy_tids = None
        self._lazy_extra = None

    def set_lazy_ids(self, tids, extra: set[int] | None = None) -> None:
        """Adopt a columnar answer: a numpy tid array (or a list of
        disjoint tid arrays, e.g. one view per shard) plus refined
        extras. ``ids`` materialises the set only when read."""
        self._ids = None
        self._lazy_tids = tids
        self._lazy_extra = extra

    def lazy_id_columns(self):
        """The un-materialised answer columns ``(tid array, extra set)``
        or ``None`` once (or when) the set form exists — lets array
        consumers (shard merges) bypass set materialisation."""
        if self._ids is None:
            return self._lazy_tids, self._lazy_extra
        return None

    @property
    def answer_count(self) -> int:
        """``len(ids)`` without forcing set materialisation."""
        if self._ids is not None:
            return len(self._ids)
        # Accepted tids are distinct and refined extras come from the
        # disjoint boundary segment of the same sweep (shard columns are
        # disjoint partitions), so the union is free of overlap.
        tids = self._lazy_tids
        if isinstance(tids, (list, tuple)):
            size = sum(int(column.size) for column in tids)
        else:
            size = int(tids.size)
        return size + (len(self._lazy_extra) if self._lazy_extra else 0)

    @property
    def page_accesses(self) -> int:
        """Total pages touched: index traversal plus refinement fetches."""
        return self.io.logical_reads + self.io.logical_writes

    @property
    def index_accesses(self) -> int:
        """Index-structure page accesses only (descent + sweeps/nodes).

        This is the metric of the paper's Theorems 3.1/4.1/4.2, which
        charge the candidate stream at ``T/B`` — i.e. leaf pages, not
        per-record fetches.
        """
        return self.page_accesses - self.refinement_pages

    def __repr__(self) -> str:
        return (
            f"<QueryResult {self.technique} |ids|={self.answer_count} "
            f"candidates={self.candidates} false_hits={self.false_hits} "
            f"duplicates={self.duplicates} pages={self.page_accesses}>"
        )
