"""The query planner: technique dispatch plus the refinement step.

Given a half-plane query, the planner picks the cheapest sound path:

* slope ∈ S → the restricted technique (Section 3): one sweep, entries
  safely past the boundary margin accepted without fetching the record;
* slope ∉ S, interior → T2 (two disjoint sweeps in one tree);
* slope ∉ S, wrap-around (outside ``(min S, max S)``) or technique
  forced to T1 → two app-queries (Section 4.1);

and then *refines*: every candidate RID is fetched from the heap (one
counted page access each) and checked against the exact ALL/EXIST
predicate, so the final answer always equals the oracle's.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.constraints.relation import GeneralizedRelation
from repro.constraints.theta import Theta
from repro.core.approx_t1 import t1_candidates
from repro.core.approx_t2 import t2_candidates
from repro.core.dual_index import DualIndex
from repro.core.query import ALL, EXIST, HalfPlaneQuery, QueryResult
from repro.core.slope_set import SlopeSet
from repro.errors import QueryError
from repro.obs import slopelog
from repro.obs import trace as obs
from repro.geometry.predicates import all_halfplane, exist_halfplane
from repro.storage.pager import Pager
from repro.storage.serialize import KeyCodec

#: Slope-set membership tolerance: query slopes this close to a slope in
#: S take the exact path.
SLOPE_TOL = 1e-12


class DualIndexPlanner:
    """High-level query interface over a :class:`DualIndex`."""

    def __init__(
        self,
        index: DualIndex,
        technique: str = "T2",
        pivot_x: float = 0.0,
    ) -> None:
        if technique not in ("T1", "T2"):
            raise QueryError("technique must be 'T1' or 'T2'")
        self.index = index
        self.technique = technique
        self.pivot_x = pivot_x
        self._batch_executor = None
        #: Set by :meth:`save`/:meth:`open`: the durable home directory.
        self.data_dir: str | None = None
        #: When False this planner's queries stay out of the slope log
        #: (shard-internal planners: the facade records each logical
        #: query once, so fan-out copies must not inflate the counts).
        self.slope_logging = True

    # ------------------------------------------------------------------
    # durability (see repro.storage.checkpoint and docs/STORAGE.md)
    # ------------------------------------------------------------------
    def save(self, data_dir: str) -> None:
        """Persist this planner to ``data_dir`` (checkpointed snapshot).

        A planner already running on a WAL-mode file-backed pager in
        ``data_dir`` checkpoints in place; any other planner is cloned
        into a fresh page file with identical accounting state.
        """
        from repro.storage.checkpoint import save_planner

        save_planner(self, data_dir)
        self.data_dir = data_dir

    def commit(self, data_dir: str | None = None) -> int:
        """Cheap durability point: fsync the WAL + write the catalog,
        without rewriting the page file. Requires a file-backed pager
        (``FileDisk`` in ``"wal"`` mode) in ``data_dir``."""
        from repro.storage.checkpoint import commit_planner

        target = data_dir if data_dir is not None else self.data_dir
        if target is None:
            raise QueryError("commit() needs a data_dir (none remembered)")
        seq = commit_planner(self, target)
        self.data_dir = target
        return seq

    @classmethod
    def open(cls, data_dir: str,
             columnar: bool | None = None) -> "DualIndexPlanner":
        """Open a saved planner from disk without rebuilding."""
        from repro.storage.checkpoint import open_planner

        return open_planner(data_dir, columnar=columnar)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        relation: GeneralizedRelation,
        slopes: SlopeSet | Iterable[float],
        pager: Pager | None = None,
        key_bytes: int = 4,
        technique: str = "T2",
        dynamic: bool = False,
        fill: float = 0.9,
        pivot_x: float = 0.0,
        workers: int = 0,
        name: str = "dual",
        columnar: bool | None = None,
    ) -> "DualIndexPlanner":
        """Index a relation and return a ready planner.

        ``workers >= 2`` builds the key set on a process pool with
        vectorized per-worker evaluation (see :meth:`DualIndex.build`);
        the resulting index is byte-identical to a serial build.
        ``columnar=False`` forces the scalar B+-tree path (answers and
        page accounting are identical; used for differential testing).
        """
        index = DualIndex(
            pager=pager,
            slopes=slopes,
            key_codec=KeyCodec(key_bytes),
            dynamic=dynamic,
            name=name,
            columnar=columnar,
        )
        index.build(relation, fill, workers=workers)
        return cls(index, technique=technique, pivot_x=pivot_x)

    # ------------------------------------------------------------------
    # public query API
    # ------------------------------------------------------------------
    def query(self, query: HalfPlaneQuery, refresh: bool = True) -> QueryResult:
        """Answer a half-plane query; the result matches the exact oracle.

        When the index is dynamic and updates invalidated handicaps,
        maintenance runs first (outside the per-query I/O measurement)
        unless ``refresh=False``.

        Example::

            >>> from repro import GeneralizedRelation, parse_tuple
            >>> from repro.core import DualIndexPlanner, HalfPlaneQuery
            >>> r = GeneralizedRelation([parse_tuple("y >= x and y <= 4 and x >= 0")])
            >>> planner = DualIndexPlanner.build(r, slopes=[-1.0, 0.0, 1.0])
            >>> res = planner.query(HalfPlaneQuery("EXIST", 0.0, 2.0, ">="))
            >>> sorted(res.ids), res.technique
            ([0], 'exact')
        """
        if query.dimension != 2:
            raise QueryError("DualIndexPlanner is 2-D; use DDimPlanner")
        if self.slope_logging:
            slopelog.record(query.slope_2d, query.query_type)
        if refresh and self.index.dynamic and self._has_dirty_leaves():
            with obs.span("maintain", pager=self.index.pager):
                self.index.refresh_handicaps()
        with obs.span(
            "query",
            pager=self.index.pager,
            index=self.index.name,
            type=query.query_type,
            slope=f"{query.slope_2d:g}",
            intercept=f"{query.intercept:g}",
            theta=query.theta.value,
        ) as qspan:
            with self.index.pager.measure() as scope:
                result = self._execute(query)
            result.io = scope.delta
            if qspan is not None:
                qspan.meta["technique"] = result.technique
                qspan.incr("candidates", result.candidates)
                qspan.incr("results", len(result.ids))
                result.trace = qspan
        return result

    def query_batch(self, queries):
        """Answer many queries at once with shared work.

        Delegates to a lazily created :class:`repro.exec.BatchExecutor`
        (kept across calls so its result cache persists): restricted
        slopes share merged sweeps, other slopes are answered vectorized,
        and repeated queries hit the LRU cache. Answer sets are identical
        to calling :meth:`query` per query; page accounting is at batch
        scope. Returns a :class:`repro.exec.BatchResult`.

        Example::

            >>> from repro import DualIndexPlanner, GeneralizedRelation, parse_tuple
            >>> from repro.core.query import HalfPlaneQuery
            >>> r = GeneralizedRelation([parse_tuple("y <= 1 and y >= 0 and x >= 0 and x <= 1")])
            >>> planner = DualIndexPlanner.build(r, slopes=[0.0])
            >>> batch = planner.query_batch(
            ...     [HalfPlaneQuery("EXIST", 0.0, 0.5, ">=")]
            ... )
            >>> sorted(batch.results[0].ids)
            [0]
        """
        if getattr(self, "_batch_executor", None) is None:
            from repro.exec import BatchExecutor

            self._batch_executor = BatchExecutor(self)
        return self._batch_executor.execute(queries)

    def exist(
        self, slope: float, intercept: float, theta: Theta | str = ">="
    ) -> QueryResult:
        """EXIST selection: tuples whose extension meets the half-plane."""
        return self.query(HalfPlaneQuery(EXIST, slope, intercept, theta))

    def all(
        self, slope: float, intercept: float, theta: Theta | str = ">="
    ) -> QueryResult:
        """ALL selection: tuples contained in the half-plane."""
        return self.query(HalfPlaneQuery(ALL, slope, intercept, theta))

    # ------------------------------------------------------------------
    # updates (pass-through with deferred maintenance)
    # ------------------------------------------------------------------
    def insert(self, tid: int, t) -> None:
        """Insert a tuple (dynamic index only)."""
        self.index.insert(tid, t)

    def delete(self, tid: int) -> None:
        """Delete a tuple by id (dynamic index only)."""
        self.index.delete(tid)

    # ------------------------------------------------------------------
    # execution paths
    # ------------------------------------------------------------------
    def _execute(self, query: HalfPlaneQuery) -> QueryResult:
        with obs.span("plan"):
            slope_index = self.index.slopes.index_of(query.slope_2d, SLOPE_TOL)
            interior = (
                slope_index is None
                and self.technique == "T2"
                and self.index.slopes.anchor_for(query.slope_2d) is not None
            )
        if slope_index is not None:
            return self._exact_path(query, slope_index)
        if interior:
            return self._t2_path(query)
        # Wrap-around case: Section 4.2 develops T2 for the interior
        # case only; the planner executes the wrap cases through T1
        # with in-memory de-duplication (see DESIGN.md).
        return self._t1_path(query)

    def _exact_path(self, query: HalfPlaneQuery, slope_index: int) -> QueryResult:
        trees, upward = self.index.trees_for(query.query_type, query.theta)
        tree = trees[slope_index]
        margin = self.index.margin(query.intercept)
        if tree.columnar:
            return self._exact_path_columnar(query, tree, upward, margin)
        accepted: set[int] = set()
        boundary: set[int] = set()
        with obs.span("sweep.exact", tree=tree.name, path="scalar"):
            if upward:
                start = tree.quantize(query.intercept - margin)
                accept_from = tree.quantize(query.intercept + margin)
                for visit in tree.sweep_up(start):
                    obs.incr("comparisons", len(visit.leaf.keys))
                    for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
                        if key >= accept_from:
                            accepted.add(rid)
                        elif key >= start:
                            boundary.add(rid)
            else:
                start = tree.quantize(query.intercept + margin)
                accept_to = tree.quantize(query.intercept - margin)
                for visit in tree.sweep_down(start):
                    obs.incr("comparisons", len(visit.leaf.keys))
                    for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
                        if key <= accept_to:
                            accepted.add(rid)
                        elif key <= start:
                            boundary.add(rid)
        result = QueryResult(technique="exact")
        result.accepted_without_refinement = len(accepted)
        result.candidates = len(accepted) + len(boundary)
        result.ids = {self.index.tid_of[rid] for rid in accepted}
        confirmed, false_hits, pages = self._refine(query, boundary)
        result.ids |= confirmed
        result.false_hits = false_hits
        result.refinement_pages = pages
        return result

    def _exact_path_columnar(
        self,
        query: HalfPlaneQuery,
        tree,
        upward: bool,
        margin: float,
    ) -> QueryResult:
        """Columnar exact path: one merged sweep (single start) plus one
        ``np.searchsorted`` split into accepted/boundary.

        Page-identical to the scalar exact path: the scalar sweep also
        runs from its quantized start to the end of the leaf chain, so
        descent target, leaves read, and counters all match; only the
        per-entry Python classification is replaced by the array split.
        """
        with obs.span("sweep.exact", tree=tree.name, path="columnar"):
            if upward:
                accept_key = tree.quantize(query.intercept + margin)
                sweep = tree.sweep_up_multi([query.intercept - margin])
            else:
                accept_key = tree.quantize(query.intercept - margin)
                sweep = tree.sweep_down_multi([query.intercept + margin])
            keys, rids = sweep.arrays()
            if upward:
                split = int(np.searchsorted(keys, accept_key, side="left"))
            else:
                # Descending keys: accepted are keys <= accept_key.
                split = int(np.searchsorted(-keys, -accept_key, side="left"))
            accepted = rids[split:]
            boundary = rids[:split]
        result = QueryResult(technique="exact")
        result.accepted_without_refinement = int(accepted.size)
        result.candidates = int(accepted.size + boundary.size)
        result.ids = set(self.index.tids_for_rids(accepted).tolist())
        confirmed, false_hits, pages = self._refine(query, boundary.tolist())
        result.ids |= confirmed
        result.false_hits = false_hits
        result.refinement_pages = pages
        return result

    def _t1_path(self, query: HalfPlaneQuery) -> QueryResult:
        rids, duplicates = t1_candidates(self.index, query, self.pivot_x)
        result = QueryResult(technique="T1")
        result.candidates = len(rids)
        result.duplicates = duplicates
        result.ids, result.false_hits, result.refinement_pages = self._refine(
            query, rids
        )
        return result

    def _t2_path(self, query: HalfPlaneQuery) -> QueryResult:
        trace = t2_candidates(self.index, query)
        result = QueryResult(technique="T2")
        result.candidates = len(trace.candidates)
        result.ids, result.false_hits, result.refinement_pages = self._refine(
            query, trace.candidates
        )
        return result

    # ------------------------------------------------------------------
    # refinement
    # ------------------------------------------------------------------
    def _refine(
        self, query: HalfPlaneQuery, rids: Iterable[int]
    ) -> tuple[set[int], int, int]:
        """Fetch candidate records (page-batched) and apply the exact
        predicate; the I/O cost is one page access per distinct heap page
        holding a candidate. Returns (confirmed ids, false hits, pages)."""
        from repro.storage.heap import unpack_rid
        from repro.storage.serialize import decode_tuple

        predicate = all_halfplane if query.query_type == ALL else exist_halfplane
        confirmed: set[int] = set()
        false_hits = 0
        rids = list(rids)
        pages = len({unpack_rid(rid)[0] for rid in rids})
        with obs.span("fetch"):
            records = self.index.heap.fetch_batch(rids)
        with obs.span("verify"):
            for data in records.values():
                tid, t = decode_tuple(data)
                if predicate(
                    t.extension(), query.slope_2d, query.intercept, query.theta
                ):
                    confirmed.add(tid)
                else:
                    false_hits += 1
            obs.incr("refine.confirmed", len(confirmed))
            obs.incr("refine.false_hits", false_hits)
        return confirmed, false_hits, pages

    def _has_dirty_leaves(self) -> bool:
        return any(
            tree.dirty_leaves for tree in self.index.up + self.index.down
        )
