"""The d-dimensional extension of the dual index (Section 4.4).

In ``E^d`` every slope is a point ``b = (b_1, …, b_{d-1})``; the
predefined set ``S`` becomes a point set in slope space with a Voronoi
proximity structure. For every anchor ``b^i ∈ S`` two B+-trees hold
``TOP^P(b^i)`` / ``BOT^P(b^i)``; an approximate query anchors at the
nearest slope point (KD-tree lookup) and runs the same two-sweep
handicap search as in 2-D.

Design deviation (documented in DESIGN.md): instead of the paper's
``4d`` per-Voronoi-edge handicap values we store one *per-cell* pair per
leaf — the assignment key is the extremum of ``TOP``/``BOT`` over the
anchor's whole (domain-clipped) Voronoi cell, whose vertices realise the
extremum because ``TOP`` is convex and ``BOT`` concave. This is sound
for every query slope in the cell, needs only 2 aux slots, and requires
the query slope to lie in a declared bounded *slope domain* (the paper's
implicit assumption that queries stay near ``S``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.btree.tree import BPlusTree
from repro.constraints.relation import GeneralizedRelation
from repro.core.proximity import KDTree, voronoi_neighbors
from repro.core.query import ALL, EXIST, HalfPlaneQuery, QueryResult
from repro.errors import IndexError_, QueryError, SlopeSetError
from repro.geometry import dual
from repro.obs import trace as obs
from repro.geometry.predicates import all_halfplane, exist_halfplane
from repro.storage.disk import NULL_PAGE
from repro.storage.heap import HeapFile, unpack_rid
from repro.storage.pager import Pager
from repro.storage.serialize import KeyCodec, decode_tuple, encode_tuple

AUX_LOW = 0
AUX_HIGH = 1


class SlopePointSet:
    """The d-dimensional slope set: anchors, domain, Voronoi cells."""

    def __init__(
        self,
        points: Sequence[Sequence[float]],
        domain_lows: Sequence[float],
        domain_highs: Sequence[float],
    ) -> None:
        self.points = [tuple(float(v) for v in p) for p in points]
        if not self.points:
            raise SlopeSetError("slope point set must not be empty")
        self.slope_dim = len(self.points[0])
        if any(len(p) != self.slope_dim for p in self.points):
            raise SlopeSetError("mixed slope-point dimensions")
        if len(set(self.points)) != len(self.points):
            raise SlopeSetError("duplicate slope points")
        self.domain_lows = tuple(float(v) for v in domain_lows)
        self.domain_highs = tuple(float(v) for v in domain_highs)
        if len(self.domain_lows) != self.slope_dim or len(
            self.domain_highs
        ) != self.slope_dim:
            raise SlopeSetError("domain box dimension mismatch")
        if any(
            lo >= hi for lo, hi in zip(self.domain_lows, self.domain_highs)
        ):
            raise SlopeSetError("empty slope domain")
        self.kdtree = KDTree(self.points)
        self.adjacency = voronoi_neighbors(self.points)
        self._cells: dict[int, list[tuple[float, ...]]] = {}

    def __len__(self) -> int:
        return len(self.points)

    def in_domain(self, slope: Sequence[float]) -> bool:
        return all(
            lo - 1e-12 <= v <= hi + 1e-12
            for lo, hi, v in zip(self.domain_lows, self.domain_highs, slope)
        )

    def nearest(self, slope: Sequence[float]) -> int:
        """Index of the anchor nearest to the query slope."""
        return self.kdtree.nearest(slope)[0]

    def index_of(self, slope: Sequence[float], tol: float = 1e-12) -> int | None:
        index, dist = self.kdtree.nearest(slope)
        return index if dist <= tol else None

    # ------------------------------------------------------------------
    # Voronoi cells (domain-clipped)
    # ------------------------------------------------------------------
    def cell_vertices(self, index: int) -> list[tuple[float, ...]]:
        """Vertices of the anchor's Voronoi cell clipped to the domain."""
        if index not in self._cells:
            self._cells[index] = self._compute_cell(index)
        return self._cells[index]

    def _cell_ineqs(self, index: int):
        """Cell as ``n·x ≤ β`` inequalities: bisectors + domain box."""
        bi = self.points[index]
        ineqs = []
        for j in self.adjacency[index]:
            bj = self.points[j]
            normal = tuple(2 * (a - b) for a, b in zip(bj, bi))
            beta = sum(a * a for a in bj) - sum(b * b for b in bi)
            ineqs.append((normal, beta))
        for axis in range(self.slope_dim):
            unit = tuple(1.0 if a == axis else 0.0 for a in range(self.slope_dim))
            neg = tuple(-v for v in unit)
            ineqs.append((unit, self.domain_highs[axis]))
            ineqs.append((neg, -self.domain_lows[axis]))
        return ineqs

    def _compute_cell(self, index: int) -> list[tuple[float, ...]]:
        ineqs = self._cell_ineqs(index)
        if self.slope_dim == 1:
            lo = self.domain_lows[0]
            hi = self.domain_highs[0]
            for (n,), beta in ineqs:
                if n > 0:
                    hi = min(hi, beta / n)
                elif n < 0:
                    lo = max(lo, beta / n)
            return [(lo,), (hi,)] if lo <= hi else []
        if self.slope_dim == 2:
            from repro.geometry.support2d import _candidate_points

            pts = _candidate_points(
                [((n[0], n[1]), beta) for n, beta in ineqs], tol=1e-7
            )
            unique: list[tuple[float, ...]] = []
            for p in pts:
                tp = (round(p[0], 9), round(p[1], 9))
                if tp not in unique:
                    unique.append(tp)
            return unique
        from repro.geometry.supportnd import vertices_nd

        return vertices_nd(ineqs)


@dataclass
class DDimTrace:
    """Diagnostics of one d-dimensional T2 execution."""

    candidates: set[int] = field(default_factory=set)
    anchor: int = -1
    primary_leaves: int = 0
    secondary_leaves: int = 0


class DDimDualIndex:
    """Static dual-representation index for d ≥ 2 dimensions."""

    def __init__(
        self,
        pager: Pager | None = None,
        slopes: SlopePointSet | None = None,
        key_codec: KeyCodec | None = None,
        name: str = "ddual",
    ) -> None:
        if slopes is None:
            raise SlopeSetError("DDimDualIndex needs a SlopePointSet")
        self.pager = pager if pager is not None else Pager()
        self.slopes = slopes
        self.codec = key_codec if key_codec is not None else KeyCodec(4)
        self.heap = HeapFile(self.pager)
        k = len(slopes)
        self.up = [
            BPlusTree(self.pager, self.codec, 2, f"{name}.up[{i}]")
            for i in range(k)
        ]
        self.down = [
            BPlusTree(self.pager, self.codec, 2, f"{name}.down[{i}]")
            for i in range(k)
        ]
        self.rid_of: dict[int, int] = {}
        self.tid_of: dict[int, int] = {}
        self.size = 0
        self.skipped: list[int] = []
        self.dimension = slopes.slope_dim + 1

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self, relation: GeneralizedRelation, fill: float = 0.9) -> None:
        """Index a d-dimensional relation (static bulk build)."""
        if self.size:
            raise IndexError_("build on a non-empty index")
        if relation.dimension not in (0, self.dimension):
            raise IndexError_(
                f"relation dimension {relation.dimension} does not match "
                f"slope-space dimension {self.dimension - 1} + 1"
            )
        k = len(self.slopes)
        up_entries: list[list[tuple[float, int]]] = [[] for _ in range(k)]
        down_entries: list[list[tuple[float, int]]] = [[] for _ in range(k)]
        assigns: dict[int, tuple[list[float], list[float]]] = {}
        for tid, t in relation:
            poly = t.extension()
            if poly.is_empty:
                self.skipped.append(tid)
                continue
            rid = self.heap.insert(encode_tuple(tid, t))
            self.rid_of[tid] = rid
            self.tid_of[rid] = tid
            a_top: list[float] = []
            a_bot: list[float] = []
            for i in range(k):
                anchor = self.slopes.points[i]
                top_v = dual.top(poly, anchor)
                bot_v = dual.bot(poly, anchor)
                assert top_v is not None and bot_v is not None
                up_entries[i].append((top_v, rid))
                down_entries[i].append((bot_v, rid))
                cell = self.slopes.cell_vertices(i)
                tops = [dual.top(poly, v) for v in cell] + [top_v]
                bots = [dual.bot(poly, v) for v in cell] + [bot_v]
                a_top.append(max(tops))
                a_bot.append(min(bots))
            assigns[rid] = (a_top, a_bot)
            self.size += 1
        for i in range(k):
            self.up[i].bulk_load(up_entries[i], fill)
            self.down[i].bulk_load(down_entries[i], fill)
            self._write_aggregates(i, assigns)

    def _write_aggregates(self, i: int, assigns) -> None:
        for tree in (self.up[i], self.down[i]):
            pids = list(tree.leaf_pids())
            if not pids:
                continue
            leaves = [tree.read_leaf(pid) for pid in pids]
            boundaries = [leaf.keys[0] for leaf in leaves]

            def owner(value: float) -> int:
                lo, hi = 0, len(boundaries)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if boundaries[mid] <= value:
                        lo = mid + 1
                    else:
                        hi = mid
                return max(0, lo - 1)

            aggregates = [[math.inf, -math.inf] for _ in pids]
            # Tree key per rid, read back from the freshly loaded leaves.
            rid_key: dict[int, float] = {}
            for leaf in leaves:
                for key, rid in zip(leaf.keys, leaf.rids):
                    rid_key[rid] = key
            for rid, (a_top, a_bot) in assigns.items():
                value = rid_key[rid]
                low_owner = owner(tree.quantize(a_top[i]))
                if value < aggregates[low_owner][AUX_LOW]:
                    aggregates[low_owner][AUX_LOW] = value
                high_owner = owner(tree.quantize(a_bot[i]))
                if value > aggregates[high_owner][AUX_HIGH]:
                    aggregates[high_owner][AUX_HIGH] = value
            for pid, leaf, aux in zip(pids, leaves, aggregates):
                leaf.set_handicaps(aux)
                tree.write_leaf(pid, leaf)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def fetch_tuple(self, rid: int):
        return decode_tuple(self.heap.fetch(rid))

    def margin(self, value: float) -> float:
        scale = max(1.0, abs(value))
        return (1e-5 if self.codec.key_bytes == 4 else 1e-8) * scale

    def space(self):
        from repro.core.dual_index import IndexSpace

        return IndexSpace(
            sum(t.page_count for t in self.up + self.down),
            0,
            self.heap.page_count,
        )

    def trees_for(self, query_type: str, theta) -> tuple[list[BPlusTree], bool]:
        """Same Section 3 routing as the 2-D index."""
        from repro.constraints.theta import Theta

        if query_type == ALL:
            return (self.down, True) if theta is Theta.GE else (self.up, False)
        if query_type == EXIST:
            return (self.up, True) if theta is Theta.GE else (self.down, False)
        raise QueryError(f"unknown query type {query_type!r}")


class DDimPlanner:
    """Query interface over a :class:`DDimDualIndex`.

    Queries must carry a slope inside the index's declared slope domain;
    anchored execution uses the per-cell handicap search (exact sweep
    when the slope coincides with an anchor point).
    """

    def __init__(self, index: DDimDualIndex) -> None:
        self.index = index

    @classmethod
    def build(
        cls,
        relation: GeneralizedRelation,
        slope_points: Sequence[Sequence[float]],
        domain_lows: Sequence[float],
        domain_highs: Sequence[float],
        pager: Pager | None = None,
        key_bytes: int = 4,
        fill: float = 0.9,
    ) -> "DDimPlanner":
        """Build an index for a relation of any dimension ≥ 2."""
        slopes = SlopePointSet(slope_points, domain_lows, domain_highs)
        index = DDimDualIndex(pager, slopes, KeyCodec(key_bytes))
        index.build(relation, fill)
        return cls(index)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, query: HalfPlaneQuery) -> QueryResult:
        """Answer an ALL/EXIST selection; matches the exact oracle."""
        if query.dimension != self.index.dimension:
            raise QueryError(
                f"query dimension {query.dimension} against index "
                f"dimension {self.index.dimension}"
            )
        if not self.index.slopes.in_domain(query.slope):
            raise QueryError(
                f"query slope {query.slope} outside the declared slope "
                f"domain {self.index.slopes.domain_lows}.."
                f"{self.index.slopes.domain_highs}"
            )
        with obs.span(
            "query",
            pager=self.index.pager,
            type=query.query_type,
            dimension=query.dimension,
        ) as qspan:
            with self.index.pager.measure() as scope:
                result = self._execute(query)
            result.io = scope.delta
            if qspan is not None:
                result.trace = qspan
        return result

    def exist(self, slope, intercept: float, theta=">=") -> QueryResult:
        """EXIST selection."""
        return self.query(HalfPlaneQuery(EXIST, slope, intercept, theta))

    def all(self, slope, intercept: float, theta=">=") -> QueryResult:
        """ALL selection."""
        return self.query(HalfPlaneQuery(ALL, slope, intercept, theta))

    def _execute(self, query: HalfPlaneQuery) -> QueryResult:
        with obs.span("sweep.ddim"):
            trace = self._t2(query)
        result = QueryResult(technique=f"T2-d{self.index.dimension}")
        result.candidates = len(trace.candidates)
        rids = list(trace.candidates)
        result.refinement_pages = len({unpack_rid(r)[0] for r in rids})
        predicate = all_halfplane if query.query_type == ALL else exist_halfplane
        with obs.span("fetch"):
            records = self.index.heap.fetch_batch(rids)
        with obs.span("verify"):
            for data in records.values():
                tid, t = decode_tuple(data)
                if predicate(
                    t.extension(), query.slope, query.intercept, query.theta
                ):
                    result.ids.add(tid)
                else:
                    result.false_hits += 1
            obs.incr("refine.false_hits", result.false_hits)
        return result

    def _t2(self, query: HalfPlaneQuery) -> DDimTrace:
        index = self.index
        anchor = index.slopes.nearest(query.slope)
        trees, upward = index.trees_for(query.query_type, query.theta)
        tree = trees[anchor]
        trace = DDimTrace(anchor=anchor)
        margin = index.margin(query.intercept)
        if tree.root is None:
            return trace
        if upward:
            start = tree.quantize(query.intercept - margin)
            bound = math.inf
            first = None
            for visit in tree.sweep_up(start):
                if first is None:
                    first = visit
                trace.primary_leaves += 1
                bound = min(bound, visit.leaf.aux[AUX_LOW])
                for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
                    if key >= start:
                        trace.candidates.add(rid)
            if first is None or bound >= start:
                return trace
            threshold = tree.quantize(bound - index.margin(bound))
            leaf = first.leaf
            while True:
                for key, rid in zip(leaf.keys, leaf.rids):
                    if threshold <= key < start:
                        trace.candidates.add(rid)
                if (leaf.keys and leaf.keys[0] < threshold) or leaf.prev == NULL_PAGE:
                    return trace
                leaf = tree.read_leaf(leaf.prev)
                trace.secondary_leaves += 1
        else:
            start = tree.quantize(query.intercept + margin)
            bound = -math.inf
            first = None
            for visit in tree.sweep_down(start):
                if first is None:
                    first = visit
                trace.primary_leaves += 1
                bound = max(bound, visit.leaf.aux[AUX_HIGH])
                for key, rid in zip(visit.leaf.keys, visit.leaf.rids):
                    if key <= start:
                        trace.candidates.add(rid)
            if first is None or bound <= start:
                return trace
            threshold = tree.quantize(bound + index.margin(bound))
            leaf = first.leaf
            while True:
                for key, rid in zip(leaf.keys, leaf.rids):
                    if start < key <= threshold:
                        trace.candidates.add(rid)
                if (leaf.keys and leaf.keys[-1] > threshold) or leaf.next == NULL_PAGE:
                    return trace
                leaf = tree.read_leaf(leaf.next)
                trace.secondary_leaves += 1
        return trace
