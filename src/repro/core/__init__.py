"""The paper's contribution: dual-representation indexing of constraint
databases — the restricted index (Section 3), the T1/T2 approximation
techniques (Section 4), and the d-dimensional extension (Section 4.4).
"""

from repro.core.approx_t1 import build_app_queries, run_app_query, t1_candidates
from repro.core.ddim import DDimDualIndex, DDimPlanner, SlopePointSet
from repro.core.approx_t2 import T2Trace, t2_candidates
from repro.core.dual_index import DualIndex, EntryKeys, IndexSpace
from repro.core.planner import DualIndexPlanner
from repro.core.query import ALL, EXIST, AppQuery, HalfPlaneQuery, QueryResult
from repro.core.slope_set import NeighbourInfo, SlopeCase, SlopeSet

__all__ = [
    "DualIndex",
    "DualIndexPlanner",
    "SlopeSet",
    "SlopeCase",
    "NeighbourInfo",
    "HalfPlaneQuery",
    "AppQuery",
    "QueryResult",
    "ALL",
    "EXIST",
    "EntryKeys",
    "IndexSpace",
    "build_app_queries",
    "run_app_query",
    "t1_candidates",
    "t2_candidates",
    "T2Trace",
    "DDimDualIndex",
    "DDimPlanner",
    "SlopePointSet",
]
