"""2-D Delaunay triangulation (Bowyer–Watson) and Voronoi adjacency.

Section 4.4 locates a query slope's nearest anchor via the proximity
partition induced by the Voronoi diagram of ``S``. The Voronoi cell of a
point is bounded by bisectors against its *Delaunay neighbours* only, so
the adjacency computed here lets the d-dimensional index build cells
without considering all pairs.

For slope spaces of dimension ≠ 2 the adjacency conservatively falls
back to all pairs (a superset of the true Voronoi adjacency — redundant
bisectors are harmless, merely non-tight).
"""

from __future__ import annotations

from typing import Sequence

Point2 = tuple[float, float]


def delaunay_triangles(points: Sequence[Point2]) -> list[tuple[int, int, int]]:
    """Bowyer–Watson triangulation; returns index triples.

    Degenerate inputs (fewer than 3 points, or all collinear) return an
    empty triangle list.
    """
    pts = [(float(x), float(y)) for x, y in points]
    n = len(pts)
    if n < 3:
        return []
    # Super-triangle comfortably containing everything.
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    cx, cy = (min(xs) + max(xs)) / 2, (min(ys) + max(ys)) / 2
    span = max(max(xs) - min(xs), max(ys) - min(ys), 1.0) * 64.0
    super_pts = [
        (cx - span, cy - span / 2),
        (cx + span, cy - span / 2),
        (cx, cy + span),
    ]
    vertices = pts + super_pts
    s0, s1, s2 = n, n + 1, n + 2
    triangles: set[tuple[int, int, int]] = {(s0, s1, s2)}

    for i, p in enumerate(pts):
        bad = [t for t in triangles if _in_circumcircle(vertices, t, p)]
        if not bad:
            # numerically degenerate (collinear duplicates); skip point
            continue
        boundary: dict[tuple[int, int], int] = {}
        for tri in bad:
            for edge in ((tri[0], tri[1]), (tri[1], tri[2]), (tri[2], tri[0])):
                key = (min(edge), max(edge))
                boundary[key] = boundary.get(key, 0) + 1
        triangles.difference_update(bad)
        for (a, b), count in boundary.items():
            if count == 1:  # edge on the cavity boundary
                triangles.add(_normalize((a, b, i)))
    return [
        t
        for t in triangles
        if s0 not in t and s1 not in t and s2 not in t
    ]


def _normalize(tri: tuple[int, int, int]) -> tuple[int, int, int]:
    a, b, c = sorted(tri)
    return (a, b, c)


def _in_circumcircle(
    vertices: list[Point2], tri: tuple[int, int, int], p: Point2
) -> bool:
    (ax, ay), (bx, by), (cx, cy) = (vertices[i] for i in tri)
    # Ensure counter-clockwise orientation for the determinant test.
    orient = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    if orient < 0:
        bx, by, cx, cy = cx, cy, bx, by
    elif orient == 0:
        return False  # degenerate triangle has no circumcircle
    adx, ady = ax - p[0], ay - p[1]
    bdx, bdy = bx - p[0], by - p[1]
    cdx, cdy = cx - p[0], cy - p[1]
    det = (
        (adx * adx + ady * ady) * (bdx * cdy - cdx * bdy)
        - (bdx * bdx + bdy * bdy) * (adx * cdy - cdx * ady)
        + (cdx * cdx + cdy * cdy) * (adx * bdy - bdx * ady)
    )
    return det > 0


def voronoi_neighbors(points: Sequence[Sequence[float]]) -> dict[int, set[int]]:
    """Voronoi adjacency of a point set.

    2-D point sets use the Delaunay dual; other dimensions fall back to
    the conservative all-pairs superset.
    """
    n = len(points)
    adjacency: dict[int, set[int]] = {i: set() for i in range(n)}
    if n <= 1:
        return adjacency
    dim = len(points[0])
    if dim == 2:
        triangles = delaunay_triangles([(p[0], p[1]) for p in points])
        if triangles:
            for a, b, c in triangles:
                adjacency[a].update((b, c))
                adjacency[b].update((a, c))
                adjacency[c].update((a, b))
            return adjacency
        # collinear 2-D points: neighbours along the line order
        order = sorted(range(n), key=lambda i: (points[i][0], points[i][1]))
        for left, right in zip(order, order[1:]):
            adjacency[left].add(right)
            adjacency[right].add(left)
        return adjacency
    if dim == 1:
        order = sorted(range(n), key=lambda i: points[i][0])
        for left, right in zip(order, order[1:]):
            adjacency[left].add(right)
            adjacency[right].add(left)
        return adjacency
    for i in range(n):
        adjacency[i] = set(range(n)) - {i}
    return adjacency
