"""A from-scratch KD-tree for nearest-slope lookup (Section 4.4).

In ``E^d`` the predefined set ``S`` is a set of points in ``E^{d-1}``;
every approximate query starts by locating the slope point nearest to
the query slope. ``S`` is tiny (the paper uses k ≤ 5), so the KD-tree is
about interface rather than asymptotics — but it is exact, handles
duplicates-free point sets of any dimension, and is tested against brute
force.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import GeometryError

Point = tuple[float, ...]


@dataclass
class _Node:
    point: Point
    index: int
    axis: int
    left: "_Node | None" = None
    right: "_Node | None" = None


class KDTree:
    """Static KD-tree over a list of points (indices are positions)."""

    def __init__(self, points: Sequence[Sequence[float]]) -> None:
        pts = [tuple(float(v) for v in p) for p in points]
        if not pts:
            raise GeometryError("KDTree needs at least one point")
        self.dimension = len(pts[0])
        if any(len(p) != self.dimension for p in pts):
            raise GeometryError("mixed point dimensions")
        self.points = pts
        self._root = self._build(list(enumerate(pts)), depth=0)

    def _build(self, items: list[tuple[int, Point]], depth: int) -> _Node | None:
        if not items:
            return None
        axis = depth % self.dimension
        items.sort(key=lambda item: item[1][axis])
        mid = len(items) // 2
        index, point = items[mid]
        return _Node(
            point,
            index,
            axis,
            self._build(items[:mid], depth + 1),
            self._build(items[mid + 1 :], depth + 1),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nearest(self, query: Sequence[float]) -> tuple[int, float]:
        """(index, distance) of the nearest stored point."""
        q = tuple(float(v) for v in query)
        if len(q) != self.dimension:
            raise GeometryError(
                f"query of dimension {len(q)} against KD-tree of "
                f"dimension {self.dimension}"
            )
        best: list = [None, math.inf]  # [index, squared distance]
        self._search(self._root, q, best)
        return best[0], math.sqrt(best[1])

    def _search(self, node: _Node | None, q: Point, best: list) -> None:
        if node is None:
            return
        d2 = sum((a - b) ** 2 for a, b in zip(node.point, q))
        if d2 < best[1] or (d2 == best[1] and (best[0] is None or node.index < best[0])):
            best[0], best[1] = node.index, d2
        delta = q[node.axis] - node.point[node.axis]
        near, far = (node.left, node.right) if delta < 0 else (node.right, node.left)
        self._search(near, q, best)
        if delta * delta <= best[1]:
            self._search(far, q, best)

    def within(self, query: Sequence[float], radius: float) -> list[int]:
        """Indices of points within ``radius`` of the query."""
        q = tuple(float(v) for v in query)
        result: list[int] = []
        self._range(self._root, q, radius * radius, result)
        return sorted(result)

    def _range(self, node: _Node | None, q: Point, r2: float, out: list[int]) -> None:
        if node is None:
            return
        d2 = sum((a - b) ** 2 for a, b in zip(node.point, q))
        if d2 <= r2:
            out.append(node.index)
        delta = q[node.axis] - node.point[node.axis]
        near, far = (node.left, node.right) if delta < 0 else (node.right, node.left)
        self._range(near, q, r2, out)
        if delta * delta <= r2:
            self._range(far, q, r2, out)
