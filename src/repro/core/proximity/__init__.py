"""Proximity substrate for the d-dimensional extension (Section 4.4):
a KD-tree for nearest-anchor lookup and Delaunay/Voronoi adjacency for
cell construction."""

from repro.core.proximity.delaunay import delaunay_triangles, voronoi_neighbors
from repro.core.proximity.kdtree import KDTree

__all__ = ["KDTree", "delaunay_triangles", "voronoi_neighbors"]
