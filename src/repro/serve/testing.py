"""In-process server harness for tests and the differential fuzzer.

:class:`ServerThread` runs a real :class:`~repro.serve.server.ReproServer`
— real sockets, real framing, real coalescing — on a private asyncio
loop in a daemon thread, so synchronous test code (and the fuzzer's
engine matrix) can stand a server up, talk to it over localhost with
:class:`~repro.serve.client.SyncReproClient`, and tear it down, all
without touching the caller's event loop.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.client import SyncReproClient
from repro.serve.server import ReproServer, ServeConfig


class ServerThread:
    """A live server on an ephemeral localhost port.

    Pass either a pre-built ``engine`` (planner or sharded; the server
    will not close it) or a ``config`` whose ``data_dir`` names a saved
    one. Use as a context manager::

        with ServerThread(engine=planner) as server:
            client = server.client()
            ids = client.query_ids(q)
            client.close()
    """

    def __init__(self, engine=None, config: ServeConfig | None = None,
                 **overrides) -> None:
        if config is None:
            config = ServeConfig(port=0, **overrides)
        self._config = config
        self._engine = engine
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: ReproServer | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.port: int | None = None

    @property
    def host(self) -> str:
        return self._config.host

    @property
    def server(self) -> ReproServer:
        assert self._server is not None, "server not started"
        return self._server

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise RuntimeError("server thread failed to start in 30s")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def _start():
            self._server = ReproServer(self._config, engine=self._engine)
            await self._server.start()
            self.port = self._server.port

        try:
            self._loop.run_until_complete(_start())
        except BaseException as exc:  # surface in start()
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._server.stop())
            self._loop.close()

    def client(self, timeout: float = 30.0) -> SyncReproClient:
        """A fresh blocking client connected to this server."""
        assert self.port is not None, "server not started"
        return SyncReproClient(
            self.host, self.port,
            max_frame=self._config.max_frame, timeout=timeout)

    def call(self, coro_fn):
        """Run ``coro_fn(server)`` on the server's loop; block for the
        result (e.g. ``server.call(lambda s: s.reload())``)."""
        assert self._loop is not None and self._server is not None
        future = asyncio.run_coroutine_threadsafe(
            coro_fn(self._server), self._loop)
        return future.result(timeout=60)

    def stop(self) -> None:
        """Drain and shut down (idempotent)."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def served_batch_answers(engine, queries, **server_overrides):
    """Answer ``queries`` through a real server socket; returns a list
    of id-sets aligned with the input order.

    This is the differential fuzzer's wire path: every query crosses
    the framing, validation, coalescing, and executor layers of an
    actual server before its answer comes back.
    """
    with ServerThread(engine=engine, **server_overrides) as server:
        client = server.client()
        try:
            return [client.query_ids(q) for q in queries]
        finally:
            client.close()
