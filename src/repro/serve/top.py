"""``repro top``: a refresh-loop terminal view over a serving process.

Reads what the metrics sidecar already publishes — ``/metrics``
(Prometheus text) and ``/slowlog`` (the live slow-query log) — and
renders the numbers an operator reaches for first: QPS, p50/p99
latency, pages per query, the cost watchdog's predicted-vs-actual
ratio, and tune status. Rates and quantiles are computed from *deltas*
between refreshes, so the view shows what the server is doing now, not
since boot (the first frame, with nothing to diff against, shows
cumulative values and says so).

Everything except the fetch loop is pure: :func:`parse_prom` turns
exposition text into a flat ``{series: value}`` map (exemplar suffixes
stripped), :func:`quantile` interpolates a histogram quantile from
cumulative buckets, and :func:`render` formats one frame from two
samples — all unit-testable without a server.

>>> sample = parse_prom('a 1\\nb{x="1"} 2.5\\nc_bucket{le="0.1"} 3 # {t="i"} 0.05\\n')
>>> sample['a'], sample['b{x="1"}'], sample['c_bucket{le="0.1"}']
(1.0, 2.5, 3.0)
>>> quantile({0.1: 50.0, 1.0: 100.0, float("inf"): 100.0}, 0.5)
0.1
"""

from __future__ import annotations

import json
import time
import urllib.request

#: Histogram series suffix carrying cumulative bucket counts.
_BUCKET = "_bucket"


# ----------------------------------------------------------------------
# exposition parsing (pure)
# ----------------------------------------------------------------------
def parse_prom(text: str) -> dict[str, float]:
    """Flatten Prometheus exposition text to ``{series: value}``.

    A series key is the metric name plus its literal label block
    (``name{a="b"}``). Comment/metadata lines are skipped; OpenMetrics
    exemplar suffixes (``... # {trace_id="..."} 0.5``) are stripped.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, rest = _split_series(line)
        if series is None:
            continue
        value = rest.strip().split()[0] if rest.strip() else ""
        try:
            out[series] = float(value)
        except ValueError:
            continue
    return out


def _split_series(line: str) -> tuple[str | None, str]:
    """Split one exposition line into (series key, remainder).

    The label block may contain ``}``/spaces inside quoted values, so
    the scan tracks quoting and backslash escapes instead of splitting
    on the first space. The remainder may still carry an exemplar
    suffix (`` # {...} v``), which the caller drops by taking the first
    token.
    """
    brace = line.find("{")
    space = line.find(" ")
    if brace == -1 or (space != -1 and space < brace):
        if space == -1:
            return None, ""
        return line[:space], line[space + 1:]
    i, quoted, escaped = brace + 1, False, False
    while i < len(line):
        ch = line[i]
        if escaped:
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == '"':
            quoted = not quoted
        elif ch == "}" and not quoted:
            return line[: i + 1], line[i + 1:]
        i += 1
    return None, ""


def histogram_buckets(
    sample: dict[str, float], name: str, op: str | None = None
) -> dict[float, float]:
    """Cumulative ``{le: count}`` buckets of one histogram series."""
    out: dict[float, float] = {}
    prefix = f"{name}{_BUCKET}{{"
    for series, value in sample.items():
        if not series.startswith(prefix):
            continue
        if op is not None and f'op="{op}"' not in series:
            continue
        le = _label_value(series, "le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        out[bound] = out.get(bound, 0.0) + value
    return out


def _label_value(series: str, label: str) -> str | None:
    marker = f'{label}="'
    at = series.find(marker)
    if at == -1:
        return None
    end = series.find('"', at + len(marker))
    return series[at + len(marker):end] if end != -1 else None


def quantile(buckets: dict[float, float], q: float) -> float | None:
    """Interpolated quantile from cumulative ``{le: count}`` buckets.

    Returns the upper bound of the bucket the quantile falls in
    (standard Prometheus ``histogram_quantile`` flavour, without the
    in-bucket interpolation for the +Inf tail, which reports the last
    finite bound).
    """
    if not buckets:
        return None
    bounds = sorted(buckets)
    total = buckets[bounds[-1]]
    if total <= 0:
        return None
    target = q * total
    previous_finite = None
    for bound in bounds:
        if bound != float("inf"):
            previous_finite = bound
        if buckets[bound] >= target:
            return bound if bound != float("inf") else previous_finite
    return previous_finite


def delta(
    current: dict[str, float], previous: dict[str, float] | None, key: str
) -> float:
    """Counter increase between samples (current value on frame one)."""
    now = current.get(key, 0.0)
    if previous is None:
        return now
    return max(0.0, now - previous.get(key, 0.0))


def bucket_delta(
    current: dict[str, float],
    previous: dict[str, float] | None,
    name: str,
    op: str | None = None,
) -> dict[float, float]:
    """Interval-local histogram buckets (cumulative minus previous)."""
    now = histogram_buckets(current, name, op)
    if previous is None:
        return now
    then = histogram_buckets(previous, name, op)
    return {le: max(0.0, v - then.get(le, 0.0)) for le, v in now.items()}


def _series_sum(sample: dict[str, float], prefix: str) -> float:
    return sum(v for k, v in sample.items()
               if k == prefix or k.startswith(prefix + "{"))


# ----------------------------------------------------------------------
# frame rendering (pure)
# ----------------------------------------------------------------------
def render(
    current: dict[str, float],
    previous: dict[str, float] | None,
    slowlog: dict | None,
    elapsed: float,
) -> str:
    """One ``repro top`` frame from two metric samples + the slow log."""
    lines = []
    window = "cumulative" if previous is None else f"last {elapsed:.1f}s"
    requests = delta(current, previous, 'serve_requests{op="query"}')
    qps = requests / elapsed if elapsed > 0 else 0.0
    lat = bucket_delta(
        current, previous, "serve_request_seconds", op="query")
    p50 = quantile(lat, 0.50)
    p99 = quantile(lat, 0.99)
    lines.append(
        f"repro top — window: {window}")
    lines.append(
        f"  qps {qps:8.1f}   p50 {_ms(p50):>9}   p99 {_ms(p99):>9}   "
        f"inflight {current.get('serve_inflight', 0.0):.0f}   "
        f"depth {current.get('serve_queue_depth', 0.0):.0f}")
    traced = delta(current, previous, "serve_traced_requests")
    if traced or _series_sum(current, "serve_traced_requests"):
        pages_sum = delta(current, previous, "serve_request_pages_sum")
        pages_n = delta(current, previous, "serve_request_pages_count")
        per_query = pages_sum / pages_n if pages_n else 0.0
        ratio = quantile(
            bucket_delta(current, previous, "serve_cost_ratio"), 0.50)
        violations = _series_sum(current, "cost_model_violations")
        lines.append(
            f"  pages/query {per_query:7.2f}   "
            f"cost p50 (actual/predicted) {_num(ratio):>7}   "
            f"violations {violations:.0f}")
    else:
        lines.append("  tracing off (start the server with "
                     "--trace-sample to light this up)")
    swaps = _series_sum(current, "tune_swaps")
    skips = _series_sum(current, "tune_skipped")
    lines.append(
        f"  wal {current.get('serve_wal_bytes', 0.0):,.0f}B   "
        f"checkpoint lag {current.get('serve_checkpoint_lag_bytes', 0.0):,.0f}B   "
        f"tune swaps {swaps:.0f} / skips {skips:.0f}")
    if slowlog and slowlog.get("entries"):
        worst = slowlog["entries"][0]
        lines.append(
            f"  slowlog {len(slowlog['entries'])} kept / "
            f"{slowlog.get('recorded', 0)} seen — worst "
            f"{worst['latency_s'] * 1e3:.2f}ms / "
            f"{worst['pages']:.1f} pages "
            f"[{worst['trace_id']}]")
    return "\n".join(lines)


def _ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.2f}ms"


def _num(value: float | None) -> str:
    return "-" if value is None else f"{value:.2f}"


# ----------------------------------------------------------------------
# the loop
# ----------------------------------------------------------------------
def _http_fetcher(host: str, port: int, timeout: float = 5.0):
    def fetch(path: str) -> str:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=timeout
        ) as response:
            return response.read().decode("utf-8")

    return fetch


def run_top(
    host: str,
    port: int,
    interval: float = 2.0,
    iterations: int | None = None,
    fetch=None,
    out=print,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """Fetch/render frames until ``iterations`` runs out (None = forever).

    ``fetch``/``out``/``clock``/``sleep`` are injectable for tests.
    Returns 0; connection errors surface as exceptions to the CLI.
    """
    if fetch is None:
        fetch = _http_fetcher(host, port)
    previous = None
    stamp = clock()
    frames = 0
    while iterations is None or frames < iterations:
        if frames:
            sleep(interval)
        current = parse_prom(fetch("/metrics"))
        try:
            slowlog = json.loads(fetch("/slowlog"))
        except Exception:
            slowlog = None
        now = clock()
        out(render(current, previous, slowlog, max(now - stamp, 1e-9)))
        previous, stamp = current, now
        frames += 1
    return 0
