"""Query service layer: asyncio front door over a shared engine.

``repro serve`` exposes a built engine (planner or sharded, opened from
a ``--data-dir``) over a length-prefixed JSON protocol. Concurrent
in-flight queries are coalesced into single
:meth:`~repro.exec.executor.BatchExecutor.query_batch` calls, admission
control bounds the queue with typed OVERLOADED backpressure, SIGHUP
reloads the index with connection draining, and a WAL size threshold
triggers automatic checkpoints. ``repro loadgen`` is the matching
closed/open-loop load client. Framing spec and operational semantics
live in ``docs/SERVING.md``.
"""

from repro.serve.client import ReproClient, SyncReproClient
from repro.serve.coalesce import BatchBuffer, Coalescer
from repro.serve.protocol import (
    MAX_FRAME,
    FrameDecoder,
    decode_frames,
    encode_frame,
    query_from_request,
    query_to_request,
)
from repro.serve.server import ReproServer, ServeConfig

__all__ = [
    "BatchBuffer",
    "Coalescer",
    "FrameDecoder",
    "MAX_FRAME",
    "ReproClient",
    "ReproServer",
    "ServeConfig",
    "SyncReproClient",
    "decode_frames",
    "encode_frame",
    "query_from_request",
    "query_to_request",
]
