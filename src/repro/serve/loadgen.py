"""Load generator for the serve layer (``repro loadgen``).

Two standard load models:

- **closed loop** — ``concurrency`` connections, each issuing its next
  query only after the previous answer arrives. Throughput is
  latency-bound; this is the model CI pins (`BENCH_serve.json`).
- **open loop** — queries fired at a fixed ``rate`` regardless of
  completions, over a pipelined connection pool. This is the model
  that actually exercises admission control: when the server can't
  keep up, the generator does not slow down, and OVERLOADED responses
  (counted, not failed) are the expected outcome.

The report is plain JSON: request counts, elapsed wall time, QPS,
p50/p90/p99/p99.9 latency — the shape ``repro bench-diff --mode
floor`` gates on — a per-op breakdown table (latency quantiles and,
when the server runs with tracing on, the server-attributed pages per
query), plus a per-op slope histogram of the issued traffic
(:func:`slope_summary`), the client-side view of the slope
distribution the server's own slope log sees. Comparing the two is the
quick sanity check that a ``repro tune`` decision was driven by the
traffic you think you sent.

With ``trace=True`` every request carries a client-minted trace
context (the wire ``trace`` field), and every ``trace_sample``-th one
asks for span-tree sampling — the end-to-end id propagation the serve
CI job exercises.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Sequence

from repro.core.query import HalfPlaneQuery
from repro.obs.slopelog import bin_center_slope, bin_of
from repro.serve.client import ReproClient


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def slope_summary(queries: Sequence[HalfPlaneQuery],
                  top: int = 8) -> dict:
    """Per-op slope histogram of a query mix (angle-space bins).

    Bins match :mod:`repro.obs.slopelog` (``atan`` of the slope over 64
    fixed bins), so this client-side summary lines up bin-for-bin with
    the server's slope log. Per query type the report carries the total
    count and the ``top`` heaviest bins as ``{bin, center_slope,
    count}`` rows, heaviest first.
    """
    per_op: dict[str, dict[int, int]] = {}
    for query in queries:
        bins = per_op.setdefault(query.query_type, {})
        for slope in query.slope:
            bins[bin_of(slope)] = bins.get(bin_of(slope), 0) + 1
    out: dict[str, dict] = {}
    for op, bins in sorted(per_op.items()):
        heaviest = sorted(
            bins.items(), key=lambda item: (-item[1], item[0]))[:top]
        out[op] = {
            "count": sum(bins.values()),
            "distinct_bins": len(bins),
            "top_bins": [
                {
                    "bin": i,
                    "center_slope": round(bin_center_slope(i), 6),
                    "count": n,
                }
                for i, n in heaviest
            ],
        }
    return out


def summarize(latencies_s: list[float]) -> dict:
    """Latency summary in milliseconds (p50/p90/p99/p99.9/mean/max)."""
    ordered = sorted(latencies_s)
    count = len(ordered)
    return {
        "p50": _percentile(ordered, 0.50) * 1e3,
        "p90": _percentile(ordered, 0.90) * 1e3,
        "p99": _percentile(ordered, 0.99) * 1e3,
        "p99_9": _percentile(ordered, 0.999) * 1e3,
        "mean": (sum(ordered) / count if count else 0.0) * 1e3,
        "max": (ordered[-1] if ordered else 0.0) * 1e3,
    }


def per_op_breakdown(samples: list[tuple]) -> dict:
    """The per-op table: latency quantiles and (when the server
    attributed them) pages per query, keyed by query type.

    ``samples`` are ``(latency_s, op, pages | None)`` rows; pages are
    present only against a tracing-enabled server, so the column is
    omitted rather than reported as zero when absent.
    """
    groups: dict[str, dict] = {}
    for took, op, pages in samples:
        group = groups.setdefault(op, {"lat": [], "pages": []})
        group["lat"].append(took)
        if pages is not None:
            group["pages"].append(float(pages))
    out: dict[str, dict] = {}
    for op, group in sorted(groups.items()):
        ordered = sorted(group["lat"])
        entry = {
            "count": len(ordered),
            "latency_ms": {
                "p50": _percentile(ordered, 0.50) * 1e3,
                "p99": _percentile(ordered, 0.99) * 1e3,
                "p99_9": _percentile(ordered, 0.999) * 1e3,
                "mean": (sum(ordered) / len(ordered)) * 1e3,
            },
        }
        if group["pages"]:
            pages = group["pages"]
            entry["pages"] = {
                "mean": sum(pages) / len(pages),
                "max": max(pages),
            }
        out[op] = entry
    return out


async def run_loadgen(
    host: str,
    port: int,
    queries: Sequence[HalfPlaneQuery],
    mode: str = "closed",
    requests: int = 1000,
    concurrency: int = 8,
    rate: float = 1000.0,
    warmup: int = 0,
    trace: bool = False,
    trace_sample: int = 0,
) -> dict:
    """Drive a server and measure it; returns the report dict.

    ``queries`` are issued round-robin. ``warmup`` requests are run
    (closed-loop, excluded from the measurement) first, so caches and
    code paths are hot before the clock starts. With ``trace``, each
    request carries a client-minted trace id (and every
    ``trace_sample``-th requests span-tree sampling).
    """
    if not queries:
        raise ValueError("loadgen needs at least one query")
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    envelope_for = _make_enveloper(trace, trace_sample)
    if warmup:
        await _closed_loop(host, port, queries, warmup,
                           min(concurrency, warmup), _make_enveloper(False, 0))
    started = time.monotonic()
    if mode == "closed":
        samples, errors, overloaded = await _closed_loop(
            host, port, queries, requests, concurrency, envelope_for)
    else:
        samples, errors, overloaded = await _open_loop(
            host, port, queries, requests, rate, concurrency, envelope_for)
    elapsed = time.monotonic() - started
    latencies = [took for took, _op, _pages in samples]
    completed = len(latencies)
    report = {
        "mode": mode,
        "requests": requests,
        "completed": completed,
        "errors": errors,
        "overloaded": overloaded,
        "concurrency": concurrency,
        "elapsed_s": elapsed,
        "qps": completed / elapsed if elapsed > 0 else 0.0,
        "latency_ms": summarize(latencies),
        "per_op": per_op_breakdown(samples),
        "slopes": slope_summary(queries),
    }
    if trace:
        report["traced"] = True
    return report


async def _closed_loop(host, port, queries, requests, concurrency,
                       envelope_for):
    samples: list[tuple] = []
    errors = 0
    overloaded = 0
    remaining = iter(range(requests))
    lock = asyncio.Lock()

    async def worker(worker_index: int) -> None:
        nonlocal errors, overloaded
        client = await ReproClient.connect(host, port)
        try:
            while True:
                async with lock:
                    try:
                        n = next(remaining)
                    except StopIteration:
                        return
                query = queries[n % len(queries)]
                begin = time.monotonic()
                response = await client.request(
                    envelope_for(n, query))
                took = time.monotonic() - begin
                if response.get("ok"):
                    samples.append(
                        (took, query.query_type, response.get("pages")))
                elif _code(response) == "OVERLOADED":
                    overloaded += 1
                else:
                    errors += 1
        finally:
            await client.close()

    await asyncio.gather(
        *(worker(i) for i in range(max(1, concurrency))))
    return samples, errors, overloaded


async def _open_loop(host, port, queries, requests, rate, connections,
                     envelope_for):
    """Fixed arrival rate over a pool of pipelined connections."""
    if rate <= 0:
        raise ValueError(f"open-loop rate must be positive, got {rate}")
    clients = [
        await ReproClient.connect(host, port)
        for _ in range(max(1, connections))
    ]
    samples: list[tuple] = []
    errors = 0
    overloaded = 0

    async def fire(n: int) -> None:
        nonlocal errors, overloaded
        query = queries[n % len(queries)]
        begin = time.monotonic()
        try:
            response = await clients[n % len(clients)].request(
                envelope_for(n, query))
        except (ConnectionError, OSError):
            errors += 1
            return
        took = time.monotonic() - begin
        if response.get("ok"):
            samples.append(
                (took, query.query_type, response.get("pages")))
        elif _code(response) == "OVERLOADED":
            overloaded += 1
        else:
            errors += 1

    interval = 1.0 / rate
    epoch = time.monotonic()
    tasks = []
    for n in range(requests):
        target = epoch + n * interval
        delay = target - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.get_running_loop().create_task(fire(n)))
    await asyncio.gather(*tasks)
    for client in clients:
        await client.close()
    return samples, errors, overloaded


def _make_enveloper(trace: bool, trace_sample: int):
    """Request-envelope factory; with tracing, mints per-request ids.

    Ids are ``lg-<run prefix>-<request #>`` so a server-side slowlog
    entry points straight back at the generating request.
    """
    if not trace:
        return lambda n, query: _envelope(query)
    prefix = f"lg-{os.urandom(3).hex()}"

    def build(n: int, query: HalfPlaneQuery) -> dict:
        context: dict = {"id": f"{prefix}-{n:08x}"}
        if trace_sample and n % trace_sample == 0:
            context["sampled"] = True
        return _envelope(query, context)

    return build


def _envelope(query: HalfPlaneQuery, trace: dict | None = None) -> dict:
    from repro.serve.protocol import query_to_request

    return query_to_request(query, rid=0, trace=trace)


def _code(response: dict) -> str:
    return (response.get("error") or {}).get("code", "")
