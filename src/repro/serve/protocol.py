"""Wire protocol: length-prefixed JSON frames.

One frame is an 8-byte big-endian header followed by a UTF-8 JSON
object::

    b"RSV1" | u32 payload_length | payload (UTF-8 JSON object)

The magic makes garbage prefixes (an HTTP request, a stray telnet
session) fail fast with a typed :class:`~repro.errors.ProtocolError`
instead of being misread as an absurd length. The length is checked
against a hard cap *before* the payload is read, so an adversarial
header cannot make either side buffer unbounded input
(:class:`~repro.errors.FrameTooLargeError`). A connection that ends
mid-frame raises :class:`~repro.errors.TruncatedFrameError` — the
serving-layer analogue of the storage layer's ``TruncatedRecordError``.

Requests and responses are JSON objects. Every request carries a
client-chosen ``id`` echoed verbatim in the matching response, so
clients may pipeline: responses to independent requests can interleave
in any order. Request envelope::

    {"id": 7, "op": "query", "type": "EXIST", "slope": 0.5,
     "intercept": 2.0, "theta": ">="}

Other ops: ``ping``, ``stats``, ``insert``, ``delete``, ``commit``,
``reload``, ``tune``, ``shutdown``. Responses are ``{"id", "ok": true, ...}`` or
``{"id", "ok": false, "error": {"code", "message"}}`` with codes
``BAD_REQUEST | OVERLOADED | UNSUPPORTED | SHUTTING_DOWN | INTERNAL``.

Any request may additionally carry a **trace context**::

    {"id": 7, "op": "query", ..., "trace": {"id": "c0ffee-00000001",
                                            "sampled": false}}

The server adopts the client's trace id (minting one otherwise when
tracing is enabled) and echoes it as ``"trace_id"`` in the response;
``"sampled": true`` asks for a full span tree. The field is optional
and ignored by servers running with tracing off — see
docs/SERVING.md for the full spec.

Example::

    >>> frame = encode_frame({"id": 1, "op": "ping"})
    >>> frame[:4], len(frame)
    (b'RSV1', 28)
    >>> decode_frames(frame)
    [{'id': 1, 'op': 'ping'}]
"""

from __future__ import annotations

import json
import math
import struct
from typing import Iterator

from repro.core.query import ALL, EXIST, HalfPlaneQuery
from repro.errors import (
    FrameTooLargeError,
    ProtocolError,
    QueryError,
    TruncatedFrameError,
)

#: Frame magic: "RSV" for serve, "1" the protocol version.
MAGIC = b"RSV1"
_HEADER = struct.Struct(">4sI")
HEADER_SIZE = _HEADER.size

#: Default cap on one frame's JSON payload (1 MiB). Generous for any
#: legitimate request or answer page, tiny next to a memory bomb.
MAX_FRAME = 1 << 20

#: Error codes a response envelope may carry.
ERROR_CODES = (
    "BAD_REQUEST",
    "OVERLOADED",
    "UNSUPPORTED",
    "SHUTTING_DOWN",
    "INTERNAL",
)

#: Request operations the server understands.
OPS = (
    "query", "ping", "stats", "insert", "delete",
    "commit", "reload", "tune", "shutdown",
)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(obj: dict, max_frame: int = MAX_FRAME) -> bytes:
    """Serialize one JSON object into a framed byte string."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLargeError(
            f"frame payload {len(payload)} bytes exceeds cap {max_frame}")
    return _HEADER.pack(MAGIC, len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(obj).__name__}")
    return obj


class FrameDecoder:
    """Incremental decoder for a stream of frames.

    Feed it whatever chunks the transport delivers; it yields complete
    objects as they materialize and keeps partial bytes buffered. Call
    :meth:`finish` at EOF — leftover bytes mean the peer died mid-frame.

    >>> dec = FrameDecoder()
    >>> frame = encode_frame({"id": 2, "op": "ping"})
    >>> dec.feed(frame[:5])   # torn mid-header: nothing yet
    []
    >>> dec.feed(frame[5:])
    [{'id': 2, 'op': 'ping'}]
    >>> dec.finish()          # clean EOF on a frame boundary
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data``; return the frames it completed (maybe [])."""
        self._buf += data
        out: list[dict] = []
        while True:
            # Check the magic as soon as 4 bytes exist: garbage (an
            # HTTP request, line noise) fails before any length is
            # trusted and before the rest of a "header" is awaited.
            if len(self._buf) >= len(MAGIC) and \
                    self._buf[:len(MAGIC)] != MAGIC:
                raise ProtocolError(
                    f"bad frame magic {bytes(self._buf[:len(MAGIC)])!r}, "
                    f"expected {MAGIC!r}")
            if len(self._buf) < HEADER_SIZE:
                break
            _magic, length = _HEADER.unpack_from(self._buf)
            if length > self.max_frame:
                raise FrameTooLargeError(
                    f"frame header announces {length} bytes, cap is "
                    f"{self.max_frame}")
            if len(self._buf) < HEADER_SIZE + length:
                break
            payload = bytes(self._buf[HEADER_SIZE:HEADER_SIZE + length])
            del self._buf[:HEADER_SIZE + length]
            out.append(_decode_payload(payload))
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buf)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buf:
            raise TruncatedFrameError(
                f"stream ended mid-frame with {len(self._buf)} buffered "
                "bytes")


def decode_frames(data: bytes) -> list[dict]:
    """Decode a complete byte string into its frames (testing helper)."""
    decoder = FrameDecoder()
    frames = decoder.feed(data)
    decoder.finish()
    return frames


def iter_frames(data: bytes) -> Iterator[dict]:
    """Iterate frames in ``data`` (complete buffer)."""
    yield from decode_frames(data)


# ----------------------------------------------------------------------
# request envelope
# ----------------------------------------------------------------------
def _finite(value: object, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"request field {field!r} must be a number")
    value = float(value)
    if not math.isfinite(value):
        raise ProtocolError(f"request field {field!r} must be finite")
    return value


def validate_request(obj: dict) -> dict:
    """Check a decoded request envelope; returns it unchanged.

    Raises :class:`~repro.errors.ProtocolError` naming the first bad
    field, so the server can answer with a BAD_REQUEST frame that tells
    the client what to fix.
    """
    rid = obj.get("id")
    if not isinstance(rid, int) or isinstance(rid, bool) or rid < 0:
        raise ProtocolError("request 'id' must be a non-negative integer")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}")
    if "trace" in obj:
        validate_trace_field(obj["trace"])
    if op == "query":
        query_from_request(obj)
    elif op in ("insert", "delete"):
        tid = obj.get("tid")
        if not isinstance(tid, int) or isinstance(tid, bool):
            raise ProtocolError(f"{op} request 'tid' must be an integer")
        if op == "insert" and not isinstance(obj.get("tuple"), list):
            raise ProtocolError(
                "insert request 'tuple' must be a list of constraint "
                "triples")
    elif op == "tune":
        if "apply" in obj and not isinstance(obj["apply"], bool):
            raise ProtocolError("tune request 'apply' must be a boolean")
    return obj


def query_from_request(obj: dict) -> HalfPlaneQuery:
    """Build the :class:`HalfPlaneQuery` a ``query`` request describes."""
    qtype = obj.get("type")
    if qtype not in (ALL, EXIST):
        raise ProtocolError(
            f"query 'type' must be 'ALL' or 'EXIST', got {qtype!r}")
    slope = obj.get("slope")
    if isinstance(slope, list):
        slope_v: float | list[float] = [
            _finite(v, "slope") for v in slope]
        if not slope_v:
            raise ProtocolError("query 'slope' must not be empty")
    else:
        slope_v = _finite(slope, "slope")
    intercept = _finite(obj.get("intercept"), "intercept")
    theta = obj.get("theta")
    if theta not in (">=", "<="):
        raise ProtocolError(
            f"query 'theta' must be '>=' or '<=', got {theta!r}")
    try:
        return HalfPlaneQuery(qtype, slope_v, intercept, theta)
    except QueryError as exc:  # pragma: no cover - guarded above
        raise ProtocolError(str(exc))


def validate_trace_field(trace: object) -> dict:
    """Check an optional request ``trace`` field: ``{"id": <printable
    string, 1..64 chars>, "sampled": <bool, optional>}``. The field is
    backward compatible — requests without it are untraced — but a
    *malformed* one is a BAD_REQUEST, not silently ignored."""
    from repro.obs.tracer import valid_trace_id

    if not isinstance(trace, dict):
        raise ProtocolError("request 'trace' must be an object")
    if not valid_trace_id(trace.get("id")):
        raise ProtocolError(
            "trace 'id' must be a printable string of 1..64 characters")
    if "sampled" in trace and not isinstance(trace["sampled"], bool):
        raise ProtocolError("trace 'sampled' must be a boolean")
    return trace


def query_to_request(
    query: HalfPlaneQuery, rid: int, trace: dict | None = None
) -> dict:
    """The request envelope for ``query`` (client-side inverse)."""
    slope = (
        query.slope[0] if len(query.slope) == 1 else list(query.slope)
    )
    envelope = {
        "id": rid,
        "op": "query",
        "type": query.query_type,
        "slope": slope,
        "intercept": query.intercept,
        "theta": query.theta.value,
    }
    if trace is not None:
        envelope["trace"] = validate_trace_field(dict(trace))
    return envelope


def error_response(rid: int | None, code: str, message: str) -> dict:
    """A typed error envelope (``ok: false``)."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {
        "id": rid if isinstance(rid, int) and rid >= 0 else -1,
        "ok": False,
        "error": {"code": code, "message": message},
    }
