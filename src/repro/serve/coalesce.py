"""Batch coalescing: gather concurrent queries into one executor call.

The serving win mirrors the batch executor's own: 64 same-slope EXIST
queries cost 6 pages executed together versus 302 executed one by one,
so the front door holds each arriving query for at most ``max_delay``
seconds hoping to merge it with its neighbours, and flushes early the
moment ``max_batch`` are waiting.

The deadline logic lives in :class:`BatchBuffer`, a pure structure
driven by an injected clock so tests can replay pathological arrival
patterns deterministically. The crucial invariant is **oldest-first
cutoff**: the flush deadline belongs to the *oldest* pending query and
is never advanced by later arrivals. The naive alternative — restart
the delay timer on every enqueue — starves under a steady trickle: with
queries arriving every ``max_delay - ε``, the timer resets forever and
the first query waits unboundedly. (Regression test:
``tests/serve/test_coalesce.py``.)

>>> buf = BatchBuffer(max_batch=4, max_delay=0.01, clock=lambda: 0.0)
>>> buf.push("a")
>>> buf.deadline()      # oldest arrival (t=0) + max_delay
0.01
>>> buf.due(at=0.005)   # not yet
False
>>> buf.due(at=0.01)
True
>>> buf.take()
['a']
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Callable


class BatchBuffer:
    """FIFO of pending items with an oldest-first flush deadline.

    Pure and synchronous: ``push`` stamps each item with the injected
    clock, ``deadline()`` is always ``oldest stamp + max_delay``, and
    ``take()`` pops up to ``max_batch`` items in arrival order. Items
    left behind by a full batch keep their original stamps, so the next
    deadline is still the (new) oldest arrival — a trickle can never
    push the head of the queue past its own deadline.
    """

    def __init__(
        self,
        max_batch: int,
        max_delay: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._clock = clock
        self._pending: deque[tuple[float, Any]] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, item: Any) -> None:
        """Enqueue ``item`` stamped with the current clock."""
        self._pending.append((self._clock(), item))

    def deadline(self) -> float | None:
        """When the oldest pending item must flush (None when empty).

        Monotone under arrivals: pushes never move an existing
        deadline, only ``take`` (by removing the oldest item) can.
        """
        if not self._pending:
            return None
        return self._pending[0][0] + self.max_delay

    def full(self) -> bool:
        """True when a full batch is waiting (flush immediately)."""
        return len(self._pending) >= self.max_batch

    def due(self, at: float | None = None) -> bool:
        """True when the buffer should flush at time ``at`` (now if
        omitted): either a full batch or the oldest item's deadline
        passed."""
        if not self._pending:
            return False
        if self.full():
            return True
        if at is None:
            at = self._clock()
        return at >= self.deadline()

    def take(self) -> list[Any]:
        """Pop up to ``max_batch`` items, oldest first."""
        out = []
        while self._pending and len(out) < self.max_batch:
            out.append(self._pending.popleft()[1])
        return out

    def drain(self) -> list[Any]:
        """Pop everything (shutdown path)."""
        out = [item for _, item in self._pending]
        self._pending.clear()
        return out


class Coalescer:
    """Asyncio wrapper: awaitable submit, background flush loop.

    ``submit(query)`` parks the query (with a fresh Future) in a
    :class:`BatchBuffer` and wakes the flush loop; the loop sleeps until
    the buffer's deadline (or a wake-up), takes an oldest-first batch,
    hands it to ``execute`` — an async callable mapping a list of
    queries to a list of results — and resolves each Future. Failures
    propagate to every waiter in the failed batch, never beyond it.
    """

    def __init__(
        self,
        execute: Callable[[list], "asyncio.Future"],
        max_batch: int = 64,
        max_delay: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
        on_flush: Callable[[int], None] | None = None,
    ) -> None:
        self._execute = execute
        self._buffer = BatchBuffer(max_batch, max_delay, clock)
        self._clock = clock
        self._on_flush = on_flush
        self._wake = asyncio.Event()
        self._closed = False
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        """Spawn the flush loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-coalescer")

    @property
    def depth(self) -> int:
        """Queries currently parked awaiting a batch."""
        return len(self._buffer)

    async def submit(self, query) -> Any:
        """Park ``query`` until its batch executes; return its result."""
        if self._closed:
            raise RuntimeError("coalescer is closed")
        future = asyncio.get_running_loop().create_future()
        self._buffer.push((query, future))
        self._wake.set()
        return await future

    async def _run(self) -> None:
        while True:
            if self._closed and not len(self._buffer):
                return
            deadline = self._buffer.deadline()
            if deadline is None:
                if self._closed:
                    return
                await self._wake.wait()
                self._wake.clear()
                continue
            if not self._buffer.due():
                delay = max(0.0, deadline - self._clock())
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                    self._wake.clear()
                except asyncio.TimeoutError:
                    pass
                if not self._buffer.due() and not self._closed:
                    continue
            batch = self._buffer.take()
            if not batch:
                continue
            queries = [query for query, _ in batch]
            futures = [future for _, future in batch]
            if self._on_flush is not None:
                self._on_flush(len(batch))
            try:
                results = await self._execute(queries)
                if len(results) != len(queries):  # pragma: no cover
                    raise RuntimeError(
                        f"executor returned {len(results)} results for "
                        f"{len(queries)} queries")
            except Exception as exc:
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for future, result in zip(futures, results):
                if not future.done():
                    future.set_result(result)

    async def close(self) -> None:
        """Flush whatever is pending, then stop the loop."""
        self._closed = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
