"""Asyncio query server over a shared read-mostly engine.

One :class:`ReproServer` owns one engine (planner or sharded, opened
from a ``--data-dir`` catalog via
:func:`repro.storage.checkpoint.open_engine`) and serves it over the
length-prefixed JSON protocol of :mod:`repro.serve.protocol`.

Concurrency model: the engine is **not** thread-safe, so every engine
touch — query batches, mutations, reloads, checkpoints — runs on a
single dedicated executor thread. The asyncio side never blocks on the
engine; it parks queries in a :class:`~repro.serve.coalesce.Coalescer`
whose flushes become single ``query_batch`` calls on that thread. The
serialization doubles as drain correctness: a reload queued behind
in-flight batches cannot observe or interrupt them.

Admission control is a bounded in-flight count: past
``max_queue_depth``, new requests are answered immediately with a typed
``OVERLOADED`` error frame (never silently dropped) so clients back
off. SIGHUP (or a ``reload`` request) reopens the engine from the data
directory and swaps it atomically between batches. After every
mutation the server checks the WAL size and, past
``wal_checkpoint_bytes``, folds the log into the page file via
:func:`repro.storage.checkpoint.maybe_checkpoint` — closing the loop
left open by ``commit_planner``'s grow-forever log.

Observability: ``serve_*`` metrics in the process registry (exported
from the sidecar HTTP ``/metrics`` endpoint in Prometheus text form),
one event per lifecycle action in the default event ring, and a span
per request when tracing is active. With ``trace_sample`` >= 1 every
request additionally gets a request-scoped trace id (adopted from the
wire ``trace`` field or minted), every Nth query batch records a full
span tree, per-request page attribution feeds a cost watchdog scoring
actual pages against the paper's distance-based prediction
(:class:`repro.tune.cost.PageCostModel` — Theorems 4.1/4.2 as a live
SLO), and the worst requests land in a
:class:`~repro.obs.slowlog.SlowQueryLog` replayable via ``repro
slowlog --replay``. The sidecar serves the live log at ``/slowlog``
and ``/healthz`` reports WAL size and checkpoint lag.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import json
import os
import signal
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    FrameTooLargeError,
    ProtocolError,
    QueryError,
    ReproError,
)
from repro.obs import slopelog, tracer
from repro.obs import trace as obs
from repro.obs.events import get_event_log
from repro.obs.metrics import get_registry
from repro.obs.slowlog import SlowLogEntry, SlowQueryLog, answer_digest, \
    slope_set_hash
from repro.serve.coalesce import Coalescer
from repro.serve.protocol import (
    MAX_FRAME,
    FrameDecoder,
    encode_frame,
    error_response,
    query_from_request,
    validate_request,
)
from repro.storage.checkpoint import (
    maybe_checkpoint,
    open_engine,
    read_catalog,
    wal_size,
)
from repro.tune.cost import PageCostModel

#: Latency-scale histogram buckets (seconds).
_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
#: Coalesced batch-size buckets.
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
#: Per-request attributed-pages buckets.
_PAGE_BUCKETS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
#: Actual/predicted cost-ratio buckets, centered on 1.0 (a perfect
#: model); the watchdog budget usually sits around 4.
_RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0)
#: Deferred-observation queue cap: past this the bookkeeping (never the
#: request) is shed, so a stalled loop can't grow memory unboundedly.
_OBS_PENDING_MAX = 4096

#: Lazy :func:`repro.verify.differential.query_to_json` (import cycle:
#: the fuzzer imports the serve layer).
_query_to_json = None


@dataclass
class ServeConfig:
    """Tunables for :class:`ReproServer`.

    ``data_dir`` is the saved engine to open (and the target of reloads
    and auto-checkpoints). ``port``/``metrics_port`` of 0 bind an
    ephemeral port (read the bound one back from ``server.port``).
    """

    data_dir: str | None = None
    host: str = "127.0.0.1"
    port: int = 0
    metrics_port: int | None = None
    #: Coalescing: flush at this many queries or after this many seconds.
    max_batch: int = 64
    max_delay: float = 0.002
    #: Admission control: in-flight requests beyond this get OVERLOADED.
    max_queue_depth: int = 256
    max_frame: int = MAX_FRAME
    #: Seconds a partially received frame may stall before the
    #: connection is dropped (slow-loris defense). Idle connections on a
    #: frame boundary are not timed out.
    read_timeout: float = 5.0
    #: WAL size that triggers an automatic checkpoint after a mutation.
    wal_checkpoint_bytes: int = 4 << 20
    columnar: bool | None = None
    #: Online slope-set tuning (``--auto-tune``): periodically learn a
    #: slope set from the served traffic's slope log and, when the cost
    #: model predicts a real win, rebuild on a background thread and
    #: hot-swap behind the engine-thread drain. The ``tune`` op works
    #: regardless; this flag only enables the periodic loop.
    auto_tune: bool = False
    #: Seconds between auto-tune checks.
    tune_interval: float = 5.0
    #: Minimum logged queries before a tune decision is attempted.
    tune_min_evidence: int = 64
    #: Slope-log reservoir capacity.
    tune_capacity: int = 4096
    #: Request tracing (``--trace-sample``): 0 disables tracing entirely
    #: — the request path is bit-identical to a pre-tracing server. Any
    #: N >= 1 turns tracing on: every request gets a trace id, the cost
    #: watchdog and slow-query log run, and every Nth request records a
    #: full span tree (1 = every request).
    trace_sample: int = 0
    #: Slow-query log: worst-N capacity per ranking (latency / pages).
    slowlog_capacity: int = 32
    #: Written as JSONL on shutdown when set (the CI artifact).
    slowlog_out: str | None = None
    #: The most recent sampled span tree, written as JSON on shutdown.
    trace_out: str | None = None
    #: Cost watchdog: a request whose actual/predicted page ratio
    #: exceeds this budget raises ``cost_model_violations`` and is
    #: force-kept in the slow-query log.
    cost_budget: float = 4.0


class ReproServer:
    """The asyncio front door. See the module docstring for the model.

    Typical embedded use (tests, the differential fuzzer)::

        server = ReproServer(ServeConfig(data_dir=...))
        await server.start()
        ...
        await server.stop()

    The CLI wraps this in :func:`serve_until_interrupted`.
    """

    def __init__(self, config: ServeConfig, engine=None) -> None:
        self.config = config
        self._engine = engine
        self._owns_engine = engine is None
        if engine is None and not config.data_dir:
            raise ValueError("ServeConfig.data_dir or an engine is required")
        self._exec = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine")
        self._server: asyncio.base_events.Server | None = None
        self._metrics_server: asyncio.base_events.Server | None = None
        self._coalescer: Coalescer | None = None
        self._inflight = 0
        self._draining = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._events = get_event_log()
        #: Traffic slope log feeding ``tune`` / auto-tune decisions.
        self._slope_log = slopelog.SlopeLog(capacity=config.tune_capacity)
        self._prev_slope_log: slopelog.SlopeLog | None = None
        #: Bumped on the engine thread per mutation; a tune rebuild that
        #: raced a mutation is detected and discarded at swap time.
        self._mutation_seq = 0
        self._tune_seq = 0
        self._tune_task: asyncio.Task | None = None
        registry = get_registry()
        self._c_requests = registry.counter(
            "serve_requests", "Requests received", labelnames=("op",))
        self._c_errors = registry.counter(
            "serve_errors", "Error responses sent", labelnames=("code",))
        self._c_batches = registry.counter(
            "serve_batches", "Coalesced batches executed")
        self._c_reloads = registry.counter(
            "serve_reloads", "Engine reloads (SIGHUP or reload op)")
        self._c_checkpoints = registry.counter(
            "serve_autocheckpoints",
            "Automatic WAL-threshold checkpoints")
        self._c_timeouts = registry.counter(
            "serve_timeouts", "Connections dropped on read timeout")
        self._c_tune_swaps = registry.counter(
            "tune_swaps",
            "Engines hot-swapped to a learned slope set while serving")
        self._c_tune_skips = registry.counter(
            "tune_skipped",
            "Tune checks that declined to rebuild",
            labelnames=("reason",))
        self._c_disconnects = registry.counter(
            "serve_disconnects", "Connections that ended mid-frame")
        self._g_inflight = registry.gauge(
            "serve_inflight", "Requests admitted and not yet answered")
        self._g_depth = registry.gauge(
            "serve_queue_depth", "Queries parked in the coalescing buffer")
        self._g_connections = registry.gauge(
            "serve_connections", "Open client connections")
        self._h_batch = registry.histogram(
            "serve_batch_size", "Queries per coalesced batch",
            buckets=_BATCH_BUCKETS)
        self._h_latency = registry.histogram(
            "serve_request_seconds", "Per-request wall time",
            labelnames=("op",), buckets=_LATENCY_BUCKETS)
        self._g_wal = registry.gauge(
            "serve_wal_bytes",
            "WAL bytes pending behind the served engine")
        self._g_ckpt_lag = registry.gauge(
            "serve_checkpoint_lag_bytes",
            "WAL bytes past the auto-checkpoint threshold "
            "(0 = checkpointing keeps up)")
        #: Tracing plumbing (None/off unless ``trace_sample`` >= 1, so
        #: the untraced request path stays bit-identical).
        self._tracer: tracer.RequestTracer | None = None
        self._slowlog: SlowQueryLog | None = None
        self._cost_model: PageCostModel | None = None
        self._engine_meta: dict = {}
        self._last_trace: dict | None = None
        #: Traced-request bookkeeping queue: the request path appends a
        #: tuple and answers; histograms / watchdog / slow-log work
        #: drains during loop idle (see :meth:`_queue_observation`).
        self._obs_pending: collections.deque = collections.deque()
        self._obs_scheduled = False
        #: Serializes drains: the loop drains during idle, but readers
        #: (the ``slowlog`` property, artifact writes) may flush from
        #: another thread, and the cost model is not itself locked.
        self._obs_lock = threading.Lock()
        if config.trace_sample:
            self._tracer = tracer.RequestTracer(
                sample_every=config.trace_sample)
            self._slowlog = SlowQueryLog(capacity=config.slowlog_capacity)
            self._c_traced = registry.counter(
                "serve_traced_requests",
                "Requests carrying a trace context")
            self._c_violations = registry.counter(
                "cost_model_violations",
                "Traced queries whose actual/predicted page ratio "
                "exceeded the cost budget")
            self._h_pages = registry.histogram(
                "serve_request_pages",
                "Pages attributed to one traced query (shared batch "
                "work split evenly, refinement per-query)",
                buckets=_PAGE_BUCKETS)
            self._h_cost_ratio = registry.histogram(
                "serve_cost_ratio",
                "Actual/predicted pages per traced query (the paper's "
                "cost model as a live SLO)",
                buckets=_RATIO_BUCKETS)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound query port (resolves an ephemeral config port)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> int | None:
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    @property
    def engine(self):
        """The currently served engine (swapped by reload)."""
        return self._engine

    async def start(self) -> None:
        """Open the engine (if not injected) and start listening."""
        loop = asyncio.get_running_loop()
        if self._engine is None:
            self._engine = await loop.run_in_executor(
                self._exec, self._open_engine)
        self._note_engine_swap()
        self._coalescer = Coalescer(
            self._execute_batch,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay,
            on_flush=self._note_flush,
        )
        self._coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics, self.config.host,
                self.config.metrics_port)
        try:
            loop.add_signal_handler(
                signal.SIGHUP, lambda: loop.create_task(self.reload()))
        except (NotImplementedError, RuntimeError, ValueError):
            # Non-main thread (embedded/test servers) or platforms
            # without signal support: reload stays available as an op.
            pass
        # Record served query slopes for the tune op; the hook costs one
        # global load per query, and the log is bounded.
        self._prev_slope_log = slopelog.install(self._slope_log)
        if self.config.auto_tune:
            self._tune_task = loop.create_task(self._auto_tune_loop())
        self._events.emit(
            "serve", "start", host=self.config.host, port=self.port)

    def _open_engine(self):
        return open_engine(self.config.data_dir,
                           columnar=self.config.columnar)

    def _note_engine_swap(self) -> None:
        """Refresh what slow-log entries record about engine identity
        (and re-anchor the cost model) after the engine changes.

        Called on start, after a reload, after a tune hot-swap, and
        after mutations (a commit/auto-checkpoint moves the catalog's
        commit seq / generation). Cheap: one attribute walk plus, for
        durable engines, one small catalog read.
        """
        engine = self._engine
        planner = engine.planners[0] if hasattr(engine, "planners") \
            else engine
        meta: dict = {
            "version": planner.index.version,
            "slope_hash": slope_set_hash(planner.index.slopes),
        }
        if self.config.data_dir:
            meta["data_dir"] = self.config.data_dir
            try:
                _payload, commit_seq, generation = read_catalog(
                    self.config.data_dir)
                meta["commit_seq"] = commit_seq
                meta["generation"] = generation
            except Exception:  # pragma: no cover - catalog mid-write
                pass
        slopes_changed = (
            meta["slope_hash"] != self._engine_meta.get("slope_hash"))
        # Queued observations belong to the outgoing engine: score and
        # log them against it before the identity (and model) move on.
        self.flush_observations()
        self._engine_meta = meta
        if self._tracer is not None:
            anchors = list(planner.index.slopes)
            if self._cost_model is None:
                self._cost_model = PageCostModel(anchors)
            elif slopes_changed:
                # A new slope set invalidates the fitted distance→pages
                # line; restart calibration against the new anchors.
                self._cost_model.reset_anchors(anchors)

    async def stop(self) -> None:
        """Drain: stop accepting, finish in-flight work, close engine."""
        self._draining = True
        if self._tune_task is not None:
            self._tune_task.cancel()
            try:
                await self._tune_task
            except asyncio.CancelledError:
                pass
            self._tune_task = None
        slopelog.install(self._prev_slope_log)
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        if self._coalescer is not None:
            await self._coalescer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        try:
            loop.remove_signal_handler(signal.SIGHUP)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        if self._owns_engine and self._engine is not None:
            await loop.run_in_executor(
                self._exec, _close_engine, self._engine)
            self._engine = None
        self._exec.shutdown(wait=True)
        self.flush_observations()
        if self._slowlog is not None and self.config.slowlog_out:
            count = self._slowlog.write_jsonl(self.config.slowlog_out)
            self._events.emit(
                "serve", "slowlog", path=self.config.slowlog_out,
                entries=count)
        if self.config.trace_out and self._last_trace is not None:
            with open(self.config.trace_out, "w", encoding="utf-8") as fh:
                json.dump(self._last_trace, fh, sort_keys=True)
                fh.write("\n")
            self._events.emit(
                "serve", "trace", path=self.config.trace_out)
        self._events.emit("serve", "stop")

    async def reload(self) -> None:
        """Reopen the engine from ``data_dir`` and swap it in.

        Runs on the engine thread, which serializes it *behind* every
        batch already queued: in-flight queries drain against the old
        engine, queries coalesced afterwards see the new one. The old
        engine is closed after the swap.
        """
        if not self.config.data_dir:
            raise QueryError("reload needs a data_dir to reopen from")
        loop = asyncio.get_running_loop()

        def _swap():
            fresh = self._open_engine()
            stale, self._engine = self._engine, fresh
            if stale is not None:
                _close_engine(stale)

        await loop.run_in_executor(self._exec, _swap)
        self._note_engine_swap()
        self._c_reloads.inc()
        self._events.emit("serve", "reload", data_dir=self.config.data_dir)

    # ------------------------------------------------------------------
    # online retune
    # ------------------------------------------------------------------
    def _current_slopes(self):
        engine = self._engine
        planner = engine.planners[0] if hasattr(engine, "planners") \
            else engine
        return planner.index.slopes

    async def tune(self, apply: bool = False) -> dict:
        """Learn a slope set from the served traffic; with ``apply``,
        rebuild and hot-swap when the cost model predicts a win.

        The decision (``repro.tune.propose``) is pure and works on any
        engine; applying is supported on single-planner engines only.
        The rebuild never runs on the engine thread — queries keep
        flowing — and the swap itself does, so it serializes behind
        every in-flight batch exactly like a SIGHUP reload: no query
        ever observes a half-swapped engine or gets dropped.
        """
        from repro.tune import propose

        snapshot = self._slope_log.snapshot()
        if snapshot.count < self.config.tune_min_evidence:
            self._c_tune_skips.labels(reason="evidence").inc()
            return {
                "tuned": False,
                "reason": "evidence",
                "evidence": snapshot.count,
                "required": self.config.tune_min_evidence,
            }
        current = self._current_slopes()
        loop = asyncio.get_running_loop()
        decision = await loop.run_in_executor(
            None, lambda: propose(snapshot, current))
        report = {"tuned": False, "decision": decision.to_dict()}
        if not apply:
            return report
        if not decision.worthwhile:
            self._c_tune_skips.labels(reason="not_worthwhile").inc()
            report["reason"] = "not_worthwhile"
            return report
        if await self._apply_decision(decision):
            # Evidence is consumed: the next decision must be earned by
            # fresh traffic measured against the *new* slope set.
            self._slope_log.drain()
            self._note_engine_swap()
            self._c_tune_swaps.inc()
            report["tuned"] = True
            self._events.emit(
                "serve", "tune-swap", slopes=list(decision.learned),
                evidence=decision.evidence)
        else:
            self._c_tune_skips.labels(reason="mutated").inc()
            report["reason"] = "mutated"
        return report

    async def _apply_decision(self, decision) -> bool:
        """Rebuild to ``decision.learned`` off-thread, hot-swap on the
        engine thread. Returns False if a mutation raced the rebuild
        (the stale rebuild is discarded; the next cycle retries)."""
        from repro.tune import rebuild_planner, relation_from_planner

        if hasattr(self._engine, "planners"):
            raise QueryError(
                "online retune is not supported on a sharded engine")
        planner = self._engine
        loop = asyncio.get_running_loop()

        def _extract():
            return relation_from_planner(planner), self._mutation_seq

        # Extraction serializes behind in-flight batches and mutations.
        relation, seq_before = await loop.run_in_executor(
            self._exec, _extract)
        # The rebuild touches only the extracted copy: run it on the
        # default pool so queries keep draining on the engine thread.
        fresh = await loop.run_in_executor(
            None,
            lambda: rebuild_planner(
                planner, decision.learned, relation=relation))
        out_dir = None
        if self.config.data_dir:
            # Persist the tuned engine as a sibling data-dir (rollback =
            # keep pointing at the old one) and reopen from it, so the
            # swapped-in engine is WAL-backed and commits/reloads/
            # auto-checkpoints follow the swap.
            self._tune_seq += 1
            out_dir = f"{self.config.data_dir.rstrip('/')}" \
                      f"-tuned{self._tune_seq}"

            def _persist():
                fresh.save(out_dir)
                return open_engine(out_dir, columnar=self.config.columnar)

            fresh = await loop.run_in_executor(None, _persist)

        def _swap():
            if self._mutation_seq != seq_before:
                _close_engine(fresh)
                return False
            stale, self._engine = self._engine, fresh
            if out_dir is not None:
                self.config.data_dir = out_dir
            if self._owns_engine:
                _close_engine(stale)
            self._owns_engine = True
            return True

        return await loop.run_in_executor(self._exec, _swap)

    async def _auto_tune_loop(self) -> None:
        """The ``--auto-tune`` background cadence."""
        try:
            while True:
                await asyncio.sleep(self.config.tune_interval)
                try:
                    await self.tune(apply=True)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    self._c_tune_skips.labels(reason="error").inc()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # engine thread
    # ------------------------------------------------------------------
    def _note_flush(self, size: int) -> None:
        self._c_batches.inc()
        self._h_batch.observe(size)

    async def _execute_batch(self, items: list):
        """Coalescer flush → one ``query_batch`` on the engine thread.

        ``items`` are ``(query, ctx)`` pairs — the coalescer treats them
        opaquely. With tracing off every ``ctx`` is None and the engine
        call is exactly the pre-tracing one. With tracing on, the batch
        runs under the first context in the batch (so downstream span
        meta carries a trace id); if any request in the batch was
        *sampled*, a full :class:`~repro.obs.trace.QueryTrace` records
        the batch's span tree. Afterwards the batch bill is attributed
        per request (the response carries ``pages``); the cost
        watchdog's verdict joins the deferred observation drain so the
        batch critical path stays lean.
        """
        loop = asyncio.get_running_loop()

        def _run():
            queries = [query for query, _ in items]
            contexts = [ctx for _, ctx in items]
            install = next(
                (ctx for ctx in contexts if ctx is not None), None)
            trace = None
            if (
                install is not None
                and any(ctx is not None and ctx.sampled
                        for ctx in contexts)
                and obs.current() is None
            ):
                sampled = next(
                    ctx for ctx in contexts
                    if ctx is not None and ctx.sampled)
                engine = self._engine
                planner = engine.planners[0] \
                    if hasattr(engine, "planners") else engine
                trace = obs.QueryTrace(
                    pager=planner.index.pager, name="serve.batch",
                    meta={"trace": sampled.trace_id,
                          "batch": len(items)})
            with tracer.request_context(install):
                if trace is not None:
                    with obs.tracing(trace):
                        batch = self._engine.query_batch(queries)
                    trace.close()
                else:
                    batch = self._engine.query_batch(queries)
            if self._tracer is None:
                return [(result, None) for result in batch.results]
            return self._annotate_batch(batch, queries, contexts, trace)

        return await loop.run_in_executor(self._exec, _run)

    def _annotate_batch(self, batch, queries, contexts, trace):
        """Per-request page attribution, on the engine thread.

        The batch's shared work (descents, merged sweeps, surface
        passes) is split evenly across the batch; refinement pages are
        per-query attributable (``QueryResult.refinement_pages``) and
        ride with their owner. The split is clamped so a per-query sum
        exceeding the batch bill (shared refinement pages are counted
        once per batch but reported per query) never attributes
        negative shared work. The cost-watchdog verdict is *not*
        computed here — it rides the deferred observation drain
        (:meth:`_observe_traced`), off the batch critical path.
        """
        results = batch.results
        n = len(results)
        own = [float(getattr(r, "refinement_pages", 0) or 0)
               for r in results]
        shared = max(0.0, float(batch.page_accesses) - sum(own)) / n
        span_tree = trace.to_dict() if trace is not None else None
        if span_tree is not None:
            self._last_trace = span_tree
        out = []
        for ctx, result, own_pages in zip(contexts, results, own):
            out.append((result, {
                "ctx": ctx,
                "pages": shared + own_pages,
                "batch_size": n,
                "span_tree": span_tree
                if (ctx is not None and ctx.sampled) else None,
            }))
        return out

    async def _run_mutation(self, fn):
        """Run ``fn`` on the engine thread, then auto-checkpoint if the
        WAL outgrew its threshold."""
        loop = asyncio.get_running_loop()

        def _run():
            result = fn()
            self._mutation_seq += 1
            checkpointed = False
            planner = self._engine
            if (
                self.config.data_dir
                and not hasattr(planner, "planners")
                and wal_size(planner) > self.config.wal_checkpoint_bytes
            ):
                checkpointed = maybe_checkpoint(
                    planner, self.config.data_dir,
                    self.config.wal_checkpoint_bytes)
            return result, checkpointed

        result, checkpointed = await loop.run_in_executor(self._exec, _run)
        self._note_engine_swap()
        if checkpointed:
            self._c_checkpoints.inc()
            self._events.emit(
                "serve", "auto-checkpoint", data_dir=self.config.data_dir)
        return result

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._g_connections.inc()
        decoder = FrameDecoder(self.config.max_frame)
        write_lock = asyncio.Lock()
        request_tasks: set[asyncio.Task] = set()
        try:
            while True:
                # Slow-loris defense: a *partial* frame must keep
                # making progress; an idle boundary may sit forever.
                timeout = (
                    self.config.read_timeout if decoder.pending_bytes
                    else None)
                try:
                    chunk = await asyncio.wait_for(
                        reader.read(65536), timeout=timeout)
                except asyncio.TimeoutError:
                    self._c_timeouts.inc()
                    await self._send(
                        writer, write_lock,
                        error_response(
                            None, "BAD_REQUEST",
                            f"no progress on a partial frame within "
                            f"{self.config.read_timeout}s"))
                    break
                if not chunk:
                    try:
                        decoder.finish()
                    except ProtocolError:
                        self._c_disconnects.inc()
                    break
                try:
                    requests = decoder.feed(chunk)
                except ProtocolError as exc:
                    await self._send(
                        writer, write_lock,
                        error_response(None, "BAD_REQUEST", str(exc)))
                    break
                for request in requests:
                    # Task-per-request so pipelined queries land in the
                    # same coalesced batch instead of serializing.
                    rtask = asyncio.get_running_loop().create_task(
                        self._handle_request(request, writer, write_lock))
                    request_tasks.add(rtask)
                    rtask.add_done_callback(request_tasks.discard)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            for rtask in list(request_tasks):
                rtask.cancel()
            if request_tasks:
                await asyncio.gather(
                    *request_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._g_connections.dec()
            self._conn_tasks.discard(task)

    async def _send(self, writer, write_lock, obj: dict) -> None:
        if not obj.get("ok", True):
            self._c_errors.labels(code=obj["error"]["code"]).inc()
        try:
            frame = encode_frame(obj, self.config.max_frame)
        except FrameTooLargeError:
            obj = error_response(
                obj.get("id"), "INTERNAL",
                "response exceeds the frame cap")
            self._c_errors.labels(code="INTERNAL").inc()
            frame = encode_frame(obj, self.config.max_frame)
        async with write_lock:
            writer.write(frame)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                # Client went away mid-response; their loss.
                self._c_disconnects.inc()

    async def _handle_request(self, request, writer, write_lock) -> None:
        started = time.monotonic()
        rid = request.get("id") if isinstance(request, dict) else None
        op = request.get("op") if isinstance(request, dict) else None
        try:
            validate_request(request)
        except ProtocolError as exc:
            await self._send(
                writer, write_lock,
                error_response(
                    rid if isinstance(rid, int) else None,
                    "BAD_REQUEST", str(exc)))
            return
        self._c_requests.labels(op=op).inc()
        if self._draining:
            await self._send(
                writer, write_lock,
                error_response(rid, "SHUTTING_DOWN", "server is draining"))
            return
        if self._inflight >= self.config.max_queue_depth:
            await self._send(
                writer, write_lock,
                error_response(
                    rid, "OVERLOADED",
                    f"{self._inflight} requests in flight (cap "
                    f"{self.config.max_queue_depth}); back off and retry"))
            return
        ctx = (
            self._tracer.make_context(request.get("trace"))
            if self._tracer is not None else None)
        self._inflight += 1
        self._g_inflight.set(self._inflight)
        try:
            meta = {"trace": ctx.trace_id} if ctx is not None else {}
            with obs.span(f"serve.{op}", id=rid, **meta):
                response = await self._dispatch(request, ctx, started)
            response["id"] = rid
            if ctx is not None:
                response.setdefault("trace_id", ctx.trace_id)
                self._c_traced.inc()
            await self._send(writer, write_lock, response)
        except asyncio.CancelledError:
            raise
        except QueryError as exc:
            # The request was well-formed but this engine can't do it
            # (mutation on a sharded engine, commit without a data_dir).
            await self._send(
                writer, write_lock,
                error_response(rid, "UNSUPPORTED", str(exc)))
        except ReproError as exc:
            # Engine-side failure (storage fault, injected crash): the
            # client's request was fine, the server hurt itself.
            await self._send(
                writer, write_lock,
                error_response(
                    rid, "INTERNAL", f"{type(exc).__name__}: {exc}"))
        except Exception as exc:
            await self._send(
                writer, write_lock,
                error_response(
                    rid, "INTERNAL", f"{type(exc).__name__}: {exc}"))
        finally:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)
            self._g_depth.set(
                self._coalescer.depth if self._coalescer else 0)
            self._h_latency.labels(op=op).observe(
                time.monotonic() - started)

    async def _dispatch(self, request: dict, ctx=None,
                        started: float | None = None) -> dict:
        op = request["op"]
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "query":
            query = query_from_request(request)
            result, note = await self._coalescer.submit((query, ctx))
            ids = sorted(result.ids)
            response = {
                "ok": True,
                "ids": ids,
                "technique": result.technique,
                "cached": result.cached,
            }
            if note is not None:
                response["pages"] = round(note["pages"], 3)
                self._queue_observation(query, result, ids, note, started)
            return response
        if op == "stats":
            self.flush_observations()
            registry = get_registry()
            return {
                "ok": True,
                "metrics": registry.collect(),
                "wal_bytes": (
                    0 if hasattr(self._engine, "planners")
                    else wal_size(self._engine)),
            }
        if op == "reload":
            await self.reload()
            return {"ok": True, "reloaded": True}
        if op == "tune":
            report = await self.tune(apply=bool(request.get("apply")))
            return {"ok": True, **report}
        if op == "shutdown":
            # Acknowledge first; the drain starts a beat later so this
            # response reaches the client before connections close.
            async def _stop_soon():
                await asyncio.sleep(0.05)
                await self.stop()

            asyncio.get_running_loop().create_task(_stop_soon())
            return {"ok": True, "stopping": True}
        if hasattr(self._engine, "planners"):
            raise QueryError(f"op {op!r} is not supported on a sharded "
                             "engine (mutations need a single planner)")
        planner = self._engine
        if op == "insert":
            tuple_obj = _tuple_from_wire(request["tuple"])
            await self._run_mutation(
                lambda: planner.insert(request["tid"], tuple_obj))
            return {"ok": True, "tid": request["tid"]}
        if op == "delete":
            await self._run_mutation(lambda: planner.delete(request["tid"]))
            return {"ok": True, "tid": request["tid"]}
        if op == "commit":
            if not self.config.data_dir:
                raise QueryError("commit needs a server data_dir")
            seq = await self._run_mutation(
                lambda: planner.commit(self.config.data_dir))
            return {"ok": True, "seq": seq, "wal_bytes": wal_size(planner)}
        raise QueryError(f"unhandled op {op!r}")  # pragma: no cover

    def _queue_observation(self, query, result, ids, note, started) -> None:
        """Defer one traced query's bookkeeping off the critical path.

        Histograms, the watchdog verdict, and the slow-query-log offer
        are not needed to answer the request, so the request path only
        stamps the latency and appends a tuple here; the loop drains
        the queue between I/O passes (``call_soon``), and every reader
        of the metrics or the log flushes it first
        (:meth:`flush_observations`) so nothing observable lags."""
        latency = (
            time.monotonic() - started if started is not None else 0.0)
        if len(self._obs_pending) >= _OBS_PENDING_MAX:
            # Overload: shed the bookkeeping, never the request.
            self._slowlog.note_dropped()
            return
        self._obs_pending.append((query, result, ids, note, latency))
        if not self._obs_scheduled:
            self._obs_scheduled = True
            asyncio.get_running_loop().call_soon(self._drain_observations)

    def _drain_observations(self) -> None:
        # Bounded chunk per loop pass so a burst can't starve I/O.
        with self._obs_lock:
            for _ in range(256):
                if not self._obs_pending:
                    break
                self._observe_traced(*self._obs_pending.popleft())
        if self._obs_pending:
            asyncio.get_running_loop().call_soon(self._drain_observations)
        else:
            self._obs_scheduled = False

    def flush_observations(self) -> None:
        """Drain every queued observation now. Called before anything
        reads the metrics or the slow-query log; safe (and cheap) when
        the queue is empty or tracing is off."""
        with self._obs_lock:
            while self._obs_pending:
                self._observe_traced(*self._obs_pending.popleft())

    def _observe_traced(self, query, result, ids, note, latency) -> None:
        """Record one traced query: histograms (exemplar-linked to the
        trace id), the watchdog verdict, and a slow-query-log offer.

        The latency was stamped when the batch answered (send and
        deferral excluded — the log ranks server-side work, not client
        socket time or bookkeeping lag). Runs under ``_obs_lock``; the
        cost model is only ever touched here, in queue order, so the
        predict-before-observe verdict stays out-of-sample."""
        global _query_to_json
        if _query_to_json is None:
            from repro.verify.differential import query_to_json
            _query_to_json = query_to_json

        ctx = note["ctx"]
        pages = note["pages"]
        model = self._cost_model
        predicted = ratio = None
        violation = False
        if model is not None:
            slope = query.slope_2d
            distance = model.distance(slope)
            # Predict before observing: the verdict is always
            # out-of-sample.
            predicted = model.predict(slope, distance=distance)
            model.observe(slope, pages, distance=distance)
            if predicted:
                ratio = pages / predicted
                violation = ratio > self.config.cost_budget
        exemplar = ctx.trace_id if ctx is not None else None
        self._h_pages.observe(pages, exemplar=exemplar)
        if ratio is not None:
            self._h_cost_ratio.observe(ratio, exemplar=exemplar)
        if violation:
            self._c_violations.inc()
        if not self._slowlog.would_keep(
            latency, pages, violation=violation
        ):
            # The common fast-request case: skip the entry build (the
            # answer digest is the expensive part) entirely.
            self._slowlog.note_dropped()
            return
        entry = SlowLogEntry(
            trace_id=ctx.trace_id if ctx is not None else "-",
            op="query",
            latency_s=latency,
            pages=pages,
            query=_query_to_json(query),
            technique=result.technique,
            accounting={
                "candidates": result.candidates,
                "false_hits": result.false_hits,
                "accepted_without_refinement":
                    result.accepted_without_refinement,
                "refinement_pages": result.refinement_pages,
                "cached": result.cached,
            },
            predicted_pages=predicted,
            ratio=ratio,
            reason="cost_model" if violation else "latency",
            batch_size=note["batch_size"],
            engine=dict(self._engine_meta),
            answer={"count": len(ids), "digest": answer_digest(ids)},
            span_tree=note["span_tree"],
        )
        self._slowlog.record(entry)

    @property
    def slowlog(self) -> SlowQueryLog | None:
        """The live slow-query log (None with tracing off)."""
        self.flush_observations()
        return self._slowlog

    # ------------------------------------------------------------------
    # metrics endpoint (HTTP sidecar)
    # ------------------------------------------------------------------
    def _healthz_body(self) -> bytes:
        """The ``/healthz`` JSON body; also updates the WAL/checkpoint
        gauges so durability debt is visible *between* auto-checkpoints
        (a probe is exactly when an operator is looking)."""
        engine = self._engine
        wal = (
            0 if engine is None or hasattr(engine, "planners")
            else wal_size(engine))
        lag = max(0, wal - self.config.wal_checkpoint_bytes)
        self._g_wal.set(float(wal))
        self._g_ckpt_lag.set(float(lag))
        payload = {
            "ok": True,
            "wal_bytes": wal,
            "checkpoint_lag_bytes": lag,
            "inflight": self._inflight,
            "draining": self._draining,
        }
        return (json.dumps(payload, sort_keys=True) + "\n") \
            .encode("utf-8")

    async def _handle_metrics(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP/1.0: GET /metrics → Prometheus text, /healthz →
        health JSON (WAL + checkpoint lag), /slowlog → the slow-query
        log; one request per connection."""
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.config.read_timeout)
            parts = line.decode("latin-1", "replace").split()
            target = parts[1] if len(parts) >= 2 else ""
            while True:  # drain headers up to the blank line
                header = await asyncio.wait_for(
                    reader.readline(), timeout=self.config.read_timeout)
                if header in (b"\r\n", b"\n", b""):
                    break
            if target == "/metrics":
                self.flush_observations()
                body = get_registry().export_prom().encode("utf-8")
                status, ctype = "200 OK", "text/plain; version=0.0.4"
            elif target == "/healthz":
                body = self._healthz_body()
                status, ctype = "200 OK", "application/json"
            elif target == "/slowlog":
                self.flush_observations()
                payload = (
                    self._slowlog.to_json() if self._slowlog is not None
                    else {"capacity": 0, "recorded": 0, "dropped": 0,
                          "entries": []})
                body = (json.dumps(payload, sort_keys=True) + "\n") \
                    .encode("utf-8")
                status, ctype = "200 OK", "application/json"
            else:
                body, status, ctype = b"not found\n", "404 Not Found", \
                    "text/plain"
            writer.write(
                f"HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n\r\n".encode("latin-1")
                + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


def _close_engine(engine) -> None:
    """Release an engine's pools and file descriptors."""
    if hasattr(engine, "planners"):
        engine.close()
        planners = engine.planners
    else:
        planners = [engine]
    for planner in planners:
        disk = planner.index.pager.disk
        close = getattr(disk, "close", None)
        if close is not None:
            close()


def _tuple_from_wire(atoms: list) -> "object":
    """Build a GeneralizedTuple from its wire form (list of
    ``{"coeffs", "const", "theta"}`` atoms, matching the fuzzer's
    ``tuple_to_json`` layout)."""
    from repro.constraints.linear import LinearConstraint
    from repro.constraints.tuples import GeneralizedTuple

    try:
        return GeneralizedTuple([
            LinearConstraint(tuple(a["coeffs"]), a["const"], a["theta"])
            for a in atoms
        ])
    except (TypeError, KeyError, ReproError) as exc:
        raise ProtocolError(f"malformed insert tuple: {exc}")


async def serve_until_interrupted(config: ServeConfig,
                                  events_out: str | None = None) -> None:
    """Run a server until SIGINT/SIGTERM (the ``repro serve`` CLI loop).

    On shutdown, optionally dumps the event ring to ``events_out`` as
    JSONL (the CI trace artifact).
    """
    server = ReproServer(config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # pragma: no cover - non-main-thread embedding
    print(f"serving {config.data_dir} on {config.host}:{server.port}"
          + (f" (metrics :{server.metrics_port})"
             if server.metrics_port is not None else ""),
          flush=True)
    try:
        await stop.wait()
    finally:
        await server.stop()
        if events_out:
            get_event_log().write_jsonl(events_out)
            if not os.environ.get("REPRO_QUIET"):
                print(f"wrote events to {events_out}", flush=True)
