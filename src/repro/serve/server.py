"""Asyncio query server over a shared read-mostly engine.

One :class:`ReproServer` owns one engine (planner or sharded, opened
from a ``--data-dir`` catalog via
:func:`repro.storage.checkpoint.open_engine`) and serves it over the
length-prefixed JSON protocol of :mod:`repro.serve.protocol`.

Concurrency model: the engine is **not** thread-safe, so every engine
touch — query batches, mutations, reloads, checkpoints — runs on a
single dedicated executor thread. The asyncio side never blocks on the
engine; it parks queries in a :class:`~repro.serve.coalesce.Coalescer`
whose flushes become single ``query_batch`` calls on that thread. The
serialization doubles as drain correctness: a reload queued behind
in-flight batches cannot observe or interrupt them.

Admission control is a bounded in-flight count: past
``max_queue_depth``, new requests are answered immediately with a typed
``OVERLOADED`` error frame (never silently dropped) so clients back
off. SIGHUP (or a ``reload`` request) reopens the engine from the data
directory and swaps it atomically between batches. After every
mutation the server checks the WAL size and, past
``wal_checkpoint_bytes``, folds the log into the page file via
:func:`repro.storage.checkpoint.maybe_checkpoint` — closing the loop
left open by ``commit_planner``'s grow-forever log.

Observability: ``serve_*`` metrics in the process registry (exported
from the sidecar HTTP ``/metrics`` endpoint in Prometheus text form),
one event per lifecycle action in the default event ring, and a span
per request when tracing is active.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import signal
import time
from dataclasses import dataclass

from repro.errors import (
    FrameTooLargeError,
    ProtocolError,
    QueryError,
    ReproError,
)
from repro.obs import slopelog
from repro.obs import trace as obs
from repro.obs.events import get_event_log
from repro.obs.metrics import get_registry
from repro.serve.coalesce import Coalescer
from repro.serve.protocol import (
    MAX_FRAME,
    FrameDecoder,
    encode_frame,
    error_response,
    query_from_request,
    validate_request,
)
from repro.storage.checkpoint import maybe_checkpoint, open_engine, wal_size

#: Latency-scale histogram buckets (seconds).
_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
#: Coalesced batch-size buckets.
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass
class ServeConfig:
    """Tunables for :class:`ReproServer`.

    ``data_dir`` is the saved engine to open (and the target of reloads
    and auto-checkpoints). ``port``/``metrics_port`` of 0 bind an
    ephemeral port (read the bound one back from ``server.port``).
    """

    data_dir: str | None = None
    host: str = "127.0.0.1"
    port: int = 0
    metrics_port: int | None = None
    #: Coalescing: flush at this many queries or after this many seconds.
    max_batch: int = 64
    max_delay: float = 0.002
    #: Admission control: in-flight requests beyond this get OVERLOADED.
    max_queue_depth: int = 256
    max_frame: int = MAX_FRAME
    #: Seconds a partially received frame may stall before the
    #: connection is dropped (slow-loris defense). Idle connections on a
    #: frame boundary are not timed out.
    read_timeout: float = 5.0
    #: WAL size that triggers an automatic checkpoint after a mutation.
    wal_checkpoint_bytes: int = 4 << 20
    columnar: bool | None = None
    #: Online slope-set tuning (``--auto-tune``): periodically learn a
    #: slope set from the served traffic's slope log and, when the cost
    #: model predicts a real win, rebuild on a background thread and
    #: hot-swap behind the engine-thread drain. The ``tune`` op works
    #: regardless; this flag only enables the periodic loop.
    auto_tune: bool = False
    #: Seconds between auto-tune checks.
    tune_interval: float = 5.0
    #: Minimum logged queries before a tune decision is attempted.
    tune_min_evidence: int = 64
    #: Slope-log reservoir capacity.
    tune_capacity: int = 4096


class ReproServer:
    """The asyncio front door. See the module docstring for the model.

    Typical embedded use (tests, the differential fuzzer)::

        server = ReproServer(ServeConfig(data_dir=...))
        await server.start()
        ...
        await server.stop()

    The CLI wraps this in :func:`serve_until_interrupted`.
    """

    def __init__(self, config: ServeConfig, engine=None) -> None:
        self.config = config
        self._engine = engine
        self._owns_engine = engine is None
        if engine is None and not config.data_dir:
            raise ValueError("ServeConfig.data_dir or an engine is required")
        self._exec = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine")
        self._server: asyncio.base_events.Server | None = None
        self._metrics_server: asyncio.base_events.Server | None = None
        self._coalescer: Coalescer | None = None
        self._inflight = 0
        self._draining = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._events = get_event_log()
        #: Traffic slope log feeding ``tune`` / auto-tune decisions.
        self._slope_log = slopelog.SlopeLog(capacity=config.tune_capacity)
        self._prev_slope_log: slopelog.SlopeLog | None = None
        #: Bumped on the engine thread per mutation; a tune rebuild that
        #: raced a mutation is detected and discarded at swap time.
        self._mutation_seq = 0
        self._tune_seq = 0
        self._tune_task: asyncio.Task | None = None
        registry = get_registry()
        self._c_requests = registry.counter(
            "serve_requests", "Requests received", labelnames=("op",))
        self._c_errors = registry.counter(
            "serve_errors", "Error responses sent", labelnames=("code",))
        self._c_batches = registry.counter(
            "serve_batches", "Coalesced batches executed")
        self._c_reloads = registry.counter(
            "serve_reloads", "Engine reloads (SIGHUP or reload op)")
        self._c_checkpoints = registry.counter(
            "serve_autocheckpoints",
            "Automatic WAL-threshold checkpoints")
        self._c_timeouts = registry.counter(
            "serve_timeouts", "Connections dropped on read timeout")
        self._c_tune_swaps = registry.counter(
            "tune_swaps",
            "Engines hot-swapped to a learned slope set while serving")
        self._c_tune_skips = registry.counter(
            "tune_skipped",
            "Tune checks that declined to rebuild",
            labelnames=("reason",))
        self._c_disconnects = registry.counter(
            "serve_disconnects", "Connections that ended mid-frame")
        self._g_inflight = registry.gauge(
            "serve_inflight", "Requests admitted and not yet answered")
        self._g_depth = registry.gauge(
            "serve_queue_depth", "Queries parked in the coalescing buffer")
        self._g_connections = registry.gauge(
            "serve_connections", "Open client connections")
        self._h_batch = registry.histogram(
            "serve_batch_size", "Queries per coalesced batch",
            buckets=_BATCH_BUCKETS)
        self._h_latency = registry.histogram(
            "serve_request_seconds", "Per-request wall time",
            labelnames=("op",), buckets=_LATENCY_BUCKETS)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound query port (resolves an ephemeral config port)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> int | None:
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    @property
    def engine(self):
        """The currently served engine (swapped by reload)."""
        return self._engine

    async def start(self) -> None:
        """Open the engine (if not injected) and start listening."""
        loop = asyncio.get_running_loop()
        if self._engine is None:
            self._engine = await loop.run_in_executor(
                self._exec, self._open_engine)
        self._coalescer = Coalescer(
            self._execute_batch,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay,
            on_flush=self._note_flush,
        )
        self._coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics, self.config.host,
                self.config.metrics_port)
        try:
            loop.add_signal_handler(
                signal.SIGHUP, lambda: loop.create_task(self.reload()))
        except (NotImplementedError, RuntimeError, ValueError):
            # Non-main thread (embedded/test servers) or platforms
            # without signal support: reload stays available as an op.
            pass
        # Record served query slopes for the tune op; the hook costs one
        # global load per query, and the log is bounded.
        self._prev_slope_log = slopelog.install(self._slope_log)
        if self.config.auto_tune:
            self._tune_task = loop.create_task(self._auto_tune_loop())
        self._events.emit(
            "serve", "start", host=self.config.host, port=self.port)

    def _open_engine(self):
        return open_engine(self.config.data_dir,
                           columnar=self.config.columnar)

    async def stop(self) -> None:
        """Drain: stop accepting, finish in-flight work, close engine."""
        self._draining = True
        if self._tune_task is not None:
            self._tune_task.cancel()
            try:
                await self._tune_task
            except asyncio.CancelledError:
                pass
            self._tune_task = None
        slopelog.install(self._prev_slope_log)
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        if self._coalescer is not None:
            await self._coalescer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        try:
            loop.remove_signal_handler(signal.SIGHUP)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        if self._owns_engine and self._engine is not None:
            await loop.run_in_executor(
                self._exec, _close_engine, self._engine)
            self._engine = None
        self._exec.shutdown(wait=True)
        self._events.emit("serve", "stop")

    async def reload(self) -> None:
        """Reopen the engine from ``data_dir`` and swap it in.

        Runs on the engine thread, which serializes it *behind* every
        batch already queued: in-flight queries drain against the old
        engine, queries coalesced afterwards see the new one. The old
        engine is closed after the swap.
        """
        if not self.config.data_dir:
            raise QueryError("reload needs a data_dir to reopen from")
        loop = asyncio.get_running_loop()

        def _swap():
            fresh = self._open_engine()
            stale, self._engine = self._engine, fresh
            if stale is not None:
                _close_engine(stale)

        await loop.run_in_executor(self._exec, _swap)
        self._c_reloads.inc()
        self._events.emit("serve", "reload", data_dir=self.config.data_dir)

    # ------------------------------------------------------------------
    # online retune
    # ------------------------------------------------------------------
    def _current_slopes(self):
        engine = self._engine
        planner = engine.planners[0] if hasattr(engine, "planners") \
            else engine
        return planner.index.slopes

    async def tune(self, apply: bool = False) -> dict:
        """Learn a slope set from the served traffic; with ``apply``,
        rebuild and hot-swap when the cost model predicts a win.

        The decision (``repro.tune.propose``) is pure and works on any
        engine; applying is supported on single-planner engines only.
        The rebuild never runs on the engine thread — queries keep
        flowing — and the swap itself does, so it serializes behind
        every in-flight batch exactly like a SIGHUP reload: no query
        ever observes a half-swapped engine or gets dropped.
        """
        from repro.tune import propose

        snapshot = self._slope_log.snapshot()
        if snapshot.count < self.config.tune_min_evidence:
            self._c_tune_skips.labels(reason="evidence").inc()
            return {
                "tuned": False,
                "reason": "evidence",
                "evidence": snapshot.count,
                "required": self.config.tune_min_evidence,
            }
        current = self._current_slopes()
        loop = asyncio.get_running_loop()
        decision = await loop.run_in_executor(
            None, lambda: propose(snapshot, current))
        report = {"tuned": False, "decision": decision.to_dict()}
        if not apply:
            return report
        if not decision.worthwhile:
            self._c_tune_skips.labels(reason="not_worthwhile").inc()
            report["reason"] = "not_worthwhile"
            return report
        if await self._apply_decision(decision):
            # Evidence is consumed: the next decision must be earned by
            # fresh traffic measured against the *new* slope set.
            self._slope_log.drain()
            self._c_tune_swaps.inc()
            report["tuned"] = True
            self._events.emit(
                "serve", "tune-swap", slopes=list(decision.learned),
                evidence=decision.evidence)
        else:
            self._c_tune_skips.labels(reason="mutated").inc()
            report["reason"] = "mutated"
        return report

    async def _apply_decision(self, decision) -> bool:
        """Rebuild to ``decision.learned`` off-thread, hot-swap on the
        engine thread. Returns False if a mutation raced the rebuild
        (the stale rebuild is discarded; the next cycle retries)."""
        from repro.tune import rebuild_planner, relation_from_planner

        if hasattr(self._engine, "planners"):
            raise QueryError(
                "online retune is not supported on a sharded engine")
        planner = self._engine
        loop = asyncio.get_running_loop()

        def _extract():
            return relation_from_planner(planner), self._mutation_seq

        # Extraction serializes behind in-flight batches and mutations.
        relation, seq_before = await loop.run_in_executor(
            self._exec, _extract)
        # The rebuild touches only the extracted copy: run it on the
        # default pool so queries keep draining on the engine thread.
        fresh = await loop.run_in_executor(
            None,
            lambda: rebuild_planner(
                planner, decision.learned, relation=relation))
        out_dir = None
        if self.config.data_dir:
            # Persist the tuned engine as a sibling data-dir (rollback =
            # keep pointing at the old one) and reopen from it, so the
            # swapped-in engine is WAL-backed and commits/reloads/
            # auto-checkpoints follow the swap.
            self._tune_seq += 1
            out_dir = f"{self.config.data_dir.rstrip('/')}" \
                      f"-tuned{self._tune_seq}"

            def _persist():
                fresh.save(out_dir)
                return open_engine(out_dir, columnar=self.config.columnar)

            fresh = await loop.run_in_executor(None, _persist)

        def _swap():
            if self._mutation_seq != seq_before:
                _close_engine(fresh)
                return False
            stale, self._engine = self._engine, fresh
            if out_dir is not None:
                self.config.data_dir = out_dir
            if self._owns_engine:
                _close_engine(stale)
            self._owns_engine = True
            return True

        return await loop.run_in_executor(self._exec, _swap)

    async def _auto_tune_loop(self) -> None:
        """The ``--auto-tune`` background cadence."""
        try:
            while True:
                await asyncio.sleep(self.config.tune_interval)
                try:
                    await self.tune(apply=True)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    self._c_tune_skips.labels(reason="error").inc()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # engine thread
    # ------------------------------------------------------------------
    def _note_flush(self, size: int) -> None:
        self._c_batches.inc()
        self._h_batch.observe(size)

    async def _execute_batch(self, queries: list):
        """Coalescer flush → one ``query_batch`` on the engine thread."""
        loop = asyncio.get_running_loop()

        def _run():
            return self._engine.query_batch(queries).results

        return await loop.run_in_executor(self._exec, _run)

    async def _run_mutation(self, fn):
        """Run ``fn`` on the engine thread, then auto-checkpoint if the
        WAL outgrew its threshold."""
        loop = asyncio.get_running_loop()

        def _run():
            result = fn()
            self._mutation_seq += 1
            checkpointed = False
            planner = self._engine
            if (
                self.config.data_dir
                and not hasattr(planner, "planners")
                and wal_size(planner) > self.config.wal_checkpoint_bytes
            ):
                checkpointed = maybe_checkpoint(
                    planner, self.config.data_dir,
                    self.config.wal_checkpoint_bytes)
            return result, checkpointed

        result, checkpointed = await loop.run_in_executor(self._exec, _run)
        if checkpointed:
            self._c_checkpoints.inc()
            self._events.emit(
                "serve", "auto-checkpoint", data_dir=self.config.data_dir)
        return result

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._g_connections.inc()
        decoder = FrameDecoder(self.config.max_frame)
        write_lock = asyncio.Lock()
        request_tasks: set[asyncio.Task] = set()
        try:
            while True:
                # Slow-loris defense: a *partial* frame must keep
                # making progress; an idle boundary may sit forever.
                timeout = (
                    self.config.read_timeout if decoder.pending_bytes
                    else None)
                try:
                    chunk = await asyncio.wait_for(
                        reader.read(65536), timeout=timeout)
                except asyncio.TimeoutError:
                    self._c_timeouts.inc()
                    await self._send(
                        writer, write_lock,
                        error_response(
                            None, "BAD_REQUEST",
                            f"no progress on a partial frame within "
                            f"{self.config.read_timeout}s"))
                    break
                if not chunk:
                    try:
                        decoder.finish()
                    except ProtocolError:
                        self._c_disconnects.inc()
                    break
                try:
                    requests = decoder.feed(chunk)
                except ProtocolError as exc:
                    await self._send(
                        writer, write_lock,
                        error_response(None, "BAD_REQUEST", str(exc)))
                    break
                for request in requests:
                    # Task-per-request so pipelined queries land in the
                    # same coalesced batch instead of serializing.
                    rtask = asyncio.get_running_loop().create_task(
                        self._handle_request(request, writer, write_lock))
                    request_tasks.add(rtask)
                    rtask.add_done_callback(request_tasks.discard)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            for rtask in list(request_tasks):
                rtask.cancel()
            if request_tasks:
                await asyncio.gather(
                    *request_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._g_connections.dec()
            self._conn_tasks.discard(task)

    async def _send(self, writer, write_lock, obj: dict) -> None:
        if not obj.get("ok", True):
            self._c_errors.labels(code=obj["error"]["code"]).inc()
        try:
            frame = encode_frame(obj, self.config.max_frame)
        except FrameTooLargeError:
            obj = error_response(
                obj.get("id"), "INTERNAL",
                "response exceeds the frame cap")
            self._c_errors.labels(code="INTERNAL").inc()
            frame = encode_frame(obj, self.config.max_frame)
        async with write_lock:
            writer.write(frame)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                # Client went away mid-response; their loss.
                self._c_disconnects.inc()

    async def _handle_request(self, request, writer, write_lock) -> None:
        started = time.monotonic()
        rid = request.get("id") if isinstance(request, dict) else None
        op = request.get("op") if isinstance(request, dict) else None
        try:
            validate_request(request)
        except ProtocolError as exc:
            await self._send(
                writer, write_lock,
                error_response(
                    rid if isinstance(rid, int) else None,
                    "BAD_REQUEST", str(exc)))
            return
        self._c_requests.labels(op=op).inc()
        if self._draining:
            await self._send(
                writer, write_lock,
                error_response(rid, "SHUTTING_DOWN", "server is draining"))
            return
        if self._inflight >= self.config.max_queue_depth:
            await self._send(
                writer, write_lock,
                error_response(
                    rid, "OVERLOADED",
                    f"{self._inflight} requests in flight (cap "
                    f"{self.config.max_queue_depth}); back off and retry"))
            return
        self._inflight += 1
        self._g_inflight.set(self._inflight)
        try:
            with obs.span(f"serve.{op}", id=rid):
                response = await self._dispatch(request)
            response["id"] = rid
            await self._send(writer, write_lock, response)
        except asyncio.CancelledError:
            raise
        except QueryError as exc:
            # The request was well-formed but this engine can't do it
            # (mutation on a sharded engine, commit without a data_dir).
            await self._send(
                writer, write_lock,
                error_response(rid, "UNSUPPORTED", str(exc)))
        except ReproError as exc:
            # Engine-side failure (storage fault, injected crash): the
            # client's request was fine, the server hurt itself.
            await self._send(
                writer, write_lock,
                error_response(
                    rid, "INTERNAL", f"{type(exc).__name__}: {exc}"))
        except Exception as exc:
            await self._send(
                writer, write_lock,
                error_response(
                    rid, "INTERNAL", f"{type(exc).__name__}: {exc}"))
        finally:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)
            self._g_depth.set(
                self._coalescer.depth if self._coalescer else 0)
            self._h_latency.labels(op=op).observe(
                time.monotonic() - started)

    async def _dispatch(self, request: dict) -> dict:
        op = request["op"]
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "query":
            query = query_from_request(request)
            result = await self._coalescer.submit(query)
            return {
                "ok": True,
                "ids": sorted(result.ids),
                "technique": result.technique,
                "cached": result.cached,
            }
        if op == "stats":
            registry = get_registry()
            return {
                "ok": True,
                "metrics": registry.collect(),
                "wal_bytes": (
                    0 if hasattr(self._engine, "planners")
                    else wal_size(self._engine)),
            }
        if op == "reload":
            await self.reload()
            return {"ok": True, "reloaded": True}
        if op == "tune":
            report = await self.tune(apply=bool(request.get("apply")))
            return {"ok": True, **report}
        if op == "shutdown":
            # Acknowledge first; the drain starts a beat later so this
            # response reaches the client before connections close.
            async def _stop_soon():
                await asyncio.sleep(0.05)
                await self.stop()

            asyncio.get_running_loop().create_task(_stop_soon())
            return {"ok": True, "stopping": True}
        if hasattr(self._engine, "planners"):
            raise QueryError(f"op {op!r} is not supported on a sharded "
                             "engine (mutations need a single planner)")
        planner = self._engine
        if op == "insert":
            tuple_obj = _tuple_from_wire(request["tuple"])
            await self._run_mutation(
                lambda: planner.insert(request["tid"], tuple_obj))
            return {"ok": True, "tid": request["tid"]}
        if op == "delete":
            await self._run_mutation(lambda: planner.delete(request["tid"]))
            return {"ok": True, "tid": request["tid"]}
        if op == "commit":
            if not self.config.data_dir:
                raise QueryError("commit needs a server data_dir")
            seq = await self._run_mutation(
                lambda: planner.commit(self.config.data_dir))
            return {"ok": True, "seq": seq, "wal_bytes": wal_size(planner)}
        raise QueryError(f"unhandled op {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # metrics endpoint (HTTP sidecar)
    # ------------------------------------------------------------------
    async def _handle_metrics(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP/1.0: GET /metrics → Prometheus text, one
        request per connection."""
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.config.read_timeout)
            parts = line.decode("latin-1", "replace").split()
            target = parts[1] if len(parts) >= 2 else ""
            while True:  # drain headers up to the blank line
                header = await asyncio.wait_for(
                    reader.readline(), timeout=self.config.read_timeout)
                if header in (b"\r\n", b"\n", b""):
                    break
            if target == "/metrics":
                body = get_registry().export_prom().encode("utf-8")
                status, ctype = "200 OK", "text/plain; version=0.0.4"
            elif target == "/healthz":
                body, status, ctype = b"ok\n", "200 OK", "text/plain"
            else:
                body, status, ctype = b"not found\n", "404 Not Found", \
                    "text/plain"
            writer.write(
                f"HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n\r\n".encode("latin-1")
                + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


def _close_engine(engine) -> None:
    """Release an engine's pools and file descriptors."""
    if hasattr(engine, "planners"):
        engine.close()
        planners = engine.planners
    else:
        planners = [engine]
    for planner in planners:
        disk = planner.index.pager.disk
        close = getattr(disk, "close", None)
        if close is not None:
            close()


def _tuple_from_wire(atoms: list) -> "object":
    """Build a GeneralizedTuple from its wire form (list of
    ``{"coeffs", "const", "theta"}`` atoms, matching the fuzzer's
    ``tuple_to_json`` layout)."""
    from repro.constraints.linear import LinearConstraint
    from repro.constraints.tuples import GeneralizedTuple

    try:
        return GeneralizedTuple([
            LinearConstraint(tuple(a["coeffs"]), a["const"], a["theta"])
            for a in atoms
        ])
    except (TypeError, KeyError, ReproError) as exc:
        raise ProtocolError(f"malformed insert tuple: {exc}")


async def serve_until_interrupted(config: ServeConfig,
                                  events_out: str | None = None) -> None:
    """Run a server until SIGINT/SIGTERM (the ``repro serve`` CLI loop).

    On shutdown, optionally dumps the event ring to ``events_out`` as
    JSONL (the CI trace artifact).
    """
    server = ReproServer(config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # pragma: no cover - non-main-thread embedding
    print(f"serving {config.data_dir} on {config.host}:{server.port}"
          + (f" (metrics :{server.metrics_port})"
             if server.metrics_port is not None else ""),
          flush=True)
    try:
        await stop.wait()
    finally:
        await server.stop()
        if events_out:
            get_event_log().write_jsonl(events_out)
            if not os.environ.get("REPRO_QUIET"):
                print(f"wrote events to {events_out}", flush=True)
