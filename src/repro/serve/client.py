"""Clients for the serve protocol.

:class:`ReproClient` is the asyncio client ``repro loadgen`` and the
server tests use: it pipelines — requests carry client-assigned ids and
a background reader task resolves each response to its waiter, so many
requests can be in flight on one connection (that is what gives the
server something to coalesce). :class:`SyncReproClient` is a plain
blocking-socket client for synchronous callers (the differential
fuzzer's served engine, quick scripting).
"""

from __future__ import annotations

import asyncio
import itertools
import socket

from repro.core.query import HalfPlaneQuery
from repro.errors import OverloadedError, ProtocolError, ServeError
from repro.serve.protocol import (
    MAX_FRAME,
    FrameDecoder,
    encode_frame,
    query_to_request,
)


def raise_for_error(response: dict) -> dict:
    """Return ``response`` if ok; raise the typed error it carries."""
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    code = error.get("code", "INTERNAL")
    message = f"{code}: {error.get('message', 'unknown server error')}"
    if code == "OVERLOADED":
        raise OverloadedError(message)
    raise ServeError(message)


class ReproClient:
    """Pipelined asyncio client.

    ::

        client = await ReproClient.connect("127.0.0.1", port)
        response = await client.query(HalfPlaneQuery("EXIST", 1, 0, ">="))
        await client.close()

    Concurrent ``request`` calls interleave on the wire; the reader task
    matches responses back by id.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame)
        self._max_frame = max_frame
        self._ids = itertools.count(1)
        self._waiters: dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name="repro-client-reader")

    @classmethod
    async def connect(
        cls, host: str, port: int, max_frame: int = MAX_FRAME,
    ) -> "ReproClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame)

    async def _read_loop(self) -> None:
        error: BaseException | None = None
        try:
            while True:
                chunk = await self._reader.read(65536)
                if not chunk:
                    self._decoder.finish()  # raises if torn mid-frame
                    break
                for response in self._decoder.feed(chunk):
                    waiter = self._waiters.pop(response.get("id"), None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(response)
        except (ProtocolError, ConnectionError, OSError) as exc:
            error = exc
        finally:
            if error is None:
                error = ConnectionError("server closed the connection")
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(error)
            self._waiters.clear()

    async def request(self, envelope: dict) -> dict:
        """Send one request (id assigned here); await its response."""
        rid = next(self._ids)
        envelope = dict(envelope, id=rid)
        future = asyncio.get_running_loop().create_future()
        self._waiters[rid] = future
        frame = encode_frame(envelope, self._max_frame)
        async with self._write_lock:
            self._writer.write(frame)
            await self._writer.drain()
        return await future

    async def query(
        self, query: HalfPlaneQuery, trace: dict | None = None,
    ) -> dict:
        """Run one half-plane query; raises on typed server errors.

        ``trace={"id": ..., "sampled": bool}`` attaches a client-minted
        trace context; the server adopts the id end to end and echoes
        it back as ``response["trace_id"]``.
        """
        return raise_for_error(
            await self.request(query_to_request(query, rid=0, trace=trace)))

    async def query_ids(self, query: HalfPlaneQuery) -> set[int]:
        """Just the answer set of one query."""
        return set((await self.query(query))["ids"])

    async def ping(self) -> dict:
        return raise_for_error(await self.request({"op": "ping"}))

    async def stats(self) -> dict:
        return raise_for_error(await self.request({"op": "stats"}))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, ProtocolError, ConnectionError):
            pass


class SyncReproClient:
    """Blocking-socket client: one request in flight at a time.

    The differential fuzzer routes its served-engine queries through
    this — a deliberately boring, separate implementation, so a bug in
    the async plumbing cannot hide in both directions of the check.
    """

    def __init__(self, host: str, port: int,
                 max_frame: int = MAX_FRAME, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder(max_frame)
        self._max_frame = max_frame
        self._ids = itertools.count(1)

    def request(self, envelope: dict) -> dict:
        rid = next(self._ids)
        self._sock.sendall(
            encode_frame(dict(envelope, id=rid), self._max_frame))
        while True:
            chunk = self._sock.recv(65536)
            if not chunk:
                self._decoder.finish()
                raise ConnectionError("server closed the connection")
            for response in self._decoder.feed(chunk):
                if response.get("id") == rid:
                    return response
        # unreachable: matching response returns above

    def query(self, query: HalfPlaneQuery, trace: dict | None = None) -> dict:
        return raise_for_error(
            self.request(query_to_request(query, rid=0, trace=trace)))

    def query_ids(self, query: HalfPlaneQuery) -> set[int]:
        return set(self.query(query)["ids"])

    def ping(self) -> dict:
        return raise_for_error(self.request({"op": "ping"}))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
