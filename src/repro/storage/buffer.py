"""An LRU buffer pool between the pager and the simulated disk.

The paper's numbers are cold-cache page accesses; the pool exists for the
buffer-sensitivity ablation (A3 in DESIGN.md) and to make the storage
stack realistic. Eviction writes back dirty frames; ``flush`` forces all
of them out.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import StorageError
from repro.storage.disk import DiskSimulator


class BufferPool:
    """A write-back LRU cache of page frames.

    ``capacity`` is the number of frames; 0 disables caching entirely
    (every access goes to disk). ``hits``/``misses`` count *reads* only
    — identically in both modes, so ``hits + misses`` always equals the
    pager's logical read count and a zero-capacity pool reports every
    read as a miss.
    """

    def __init__(self, disk: DiskSimulator, capacity: int) -> None:
        if capacity < 0:
            raise StorageError("buffer capacity must be >= 0")
        self.disk = disk
        self.capacity = capacity
        self._frames: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()
        self._pins: dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # cache operations
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> bytes:
        """Page contents, from cache or disk."""
        if self.capacity == 0:
            self.misses += 1
            return self.disk.read_page(page_id)
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        data = self.disk.read_page(page_id)
        self._install(page_id, data, dirty=False)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Stage a page image; written back on eviction or flush.

        Both the cached and the zero-capacity path validate the target
        up front, so a bad write fails identically (and is accounted
        identically by the pager above) whatever the capacity — staging
        an invalid frame would otherwise only explode at eviction time.
        """
        if self.capacity == 0:
            self.disk.write_page(page_id, data)
            return
        if not self.disk.is_allocated(page_id):
            raise StorageError(f"page {page_id} is not allocated")
        if len(data) != self.disk.page_size:
            raise StorageError(
                f"page image of {len(data)} bytes on a "
                f"{self.disk.page_size}-byte disk"
            )
        self._install(page_id, bytes(data), dirty=True)

    def discard(self, page_id: int) -> None:
        """Drop a frame without write-back (page was freed)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)
        self._pins.pop(page_id, None)

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def pin(self, page_id: int) -> None:
        """Protect a page's frame from eviction until :meth:`unpin`.

        Pins nest (a refcount per page). A batch executor pins the heap
        pages its refinement step will revisit so that, even with a tiny
        pool, every distinct page is read physically at most once per
        batch. With ``capacity == 0`` there are no frames to protect and
        pinning is a no-op; pinned frames may transiently push the pool
        over ``capacity`` (eviction skips them and resumes once unpinned).
        """
        if self.capacity == 0:
            return
        self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin; the frame becomes evictable at zero pins."""
        if self.capacity == 0:
            return
        count = self._pins.get(page_id)
        if count is None:
            raise StorageError(f"page {page_id} is not pinned")
        if count <= 1:
            del self._pins[page_id]
            self._shrink()
        else:
            self._pins[page_id] = count - 1

    @property
    def pinned_pages(self) -> int:
        """Number of distinct pages currently pinned."""
        return len(self._pins)

    def flush(self) -> None:
        """Write back every dirty frame (frames stay cached)."""
        for page_id in sorted(self._dirty):
            self.disk.write_page(page_id, self._frames[page_id])
        self._dirty.clear()

    def clear(self) -> None:
        """Flush then empty the cache — returns the stack to cold state.

        Outstanding pins are dropped too: cold state means no frame is
        resident, pinned or not.
        """
        self.flush()
        self._frames.clear()
        self._pins.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _install(self, page_id: int, data: bytes, dirty: bool) -> None:
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
        self._frames[page_id] = data
        if dirty:
            self._dirty.add(page_id)
        self._shrink()

    def _shrink(self) -> None:
        """Evict LRU-first down to ``capacity``, skipping pinned frames.

        When everything over capacity is pinned the pool stays
        transiently oversized; :meth:`unpin` re-runs the shrink.
        """
        while len(self._frames) > self.capacity:
            victim = next(
                (pid for pid in self._frames if pid not in self._pins), None
            )
            if victim is None:
                return
            victim_data = self._frames.pop(victim)
            if victim in self._dirty:
                self.disk.write_page(victim, victim_data)
                self._dirty.discard(victim)

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<BufferPool frames={len(self._frames)}/{self.capacity} "
            f"hit_rate={self.hit_rate:.2f}>"
        )
