"""An LRU buffer pool between the pager and the simulated disk.

The paper's numbers are cold-cache page accesses; the pool exists for the
buffer-sensitivity ablation (A3 in DESIGN.md) and to make the storage
stack realistic. Eviction writes back dirty frames; ``flush`` forces all
of them out.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import StorageError
from repro.storage.disk import DiskSimulator


class BufferPool:
    """A write-back LRU cache of page frames.

    ``capacity`` is the number of frames; 0 disables caching entirely
    (every access goes to disk). ``hits``/``misses`` count *reads* only
    — identically in both modes, so ``hits + misses`` always equals the
    pager's logical read count and a zero-capacity pool reports every
    read as a miss.
    """

    def __init__(self, disk: DiskSimulator, capacity: int) -> None:
        if capacity < 0:
            raise StorageError("buffer capacity must be >= 0")
        self.disk = disk
        self.capacity = capacity
        self._frames: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # cache operations
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> bytes:
        """Page contents, from cache or disk."""
        if self.capacity == 0:
            self.misses += 1
            return self.disk.read_page(page_id)
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        data = self.disk.read_page(page_id)
        self._install(page_id, data, dirty=False)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Stage a page image; written back on eviction or flush.

        Both the cached and the zero-capacity path validate the target
        up front, so a bad write fails identically (and is accounted
        identically by the pager above) whatever the capacity — staging
        an invalid frame would otherwise only explode at eviction time.
        """
        if self.capacity == 0:
            self.disk.write_page(page_id, data)
            return
        if not self.disk.is_allocated(page_id):
            raise StorageError(f"page {page_id} is not allocated")
        if len(data) != self.disk.page_size:
            raise StorageError(
                f"page image of {len(data)} bytes on a "
                f"{self.disk.page_size}-byte disk"
            )
        self._install(page_id, bytes(data), dirty=True)

    def discard(self, page_id: int) -> None:
        """Drop a frame without write-back (page was freed)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)

    def flush(self) -> None:
        """Write back every dirty frame (frames stay cached)."""
        for page_id in sorted(self._dirty):
            self.disk.write_page(page_id, self._frames[page_id])
        self._dirty.clear()

    def clear(self) -> None:
        """Flush then empty the cache — returns the stack to cold state."""
        self.flush()
        self._frames.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _install(self, page_id: int, data: bytes, dirty: bool) -> None:
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
        self._frames[page_id] = data
        if dirty:
            self._dirty.add(page_id)
        while len(self._frames) > self.capacity:
            victim, victim_data = self._frames.popitem(last=False)
            if victim in self._dirty:
                self.disk.write_page(victim, victim_data)
                self._dirty.discard(victim)

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<BufferPool frames={len(self._frames)}/{self.capacity} "
            f"hit_rate={self.hit_rate:.2f}>"
        )
