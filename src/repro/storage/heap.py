"""A slotted-page heap file for generalized-tuple records.

Records are addressed by RIDs — ``(page_id, slot)`` packed into a 4-byte
integer so index entries stay at the paper's 4-byte value size. The page
layout is the classic slot directory::

    [u16 slot_count | u16 free_offset | slots…]          (from the front)
    [… record bytes …]                                   (from the back)

Each slot is ``u16 offset | u16 length``; a zero length marks a deleted
slot. Fetching a record by RID costs exactly one logical page read —
this is the refinement-step cost the benchmarks charge per candidate.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

import numpy as np

from repro.errors import PageOverflowError, StorageError
from repro.obs import trace as obs
from repro.storage.pager import Pager

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")

#: Slot index width inside the packed RID (low bits).
_SLOT_BITS = 8
_SLOT_MASK = (1 << _SLOT_BITS) - 1


def pack_rid(page_id: int, slot: int) -> int:
    """Pack (page, slot) into one 32-bit RID."""
    if slot > _SLOT_MASK:
        raise StorageError(f"slot {slot} exceeds RID layout")
    rid = (page_id << _SLOT_BITS) | slot
    if rid >= 1 << 32:
        raise StorageError("RID exceeds 32 bits")
    return rid


def unpack_rid(rid: int) -> tuple[int, int]:
    """Inverse of :func:`pack_rid`."""
    return rid >> _SLOT_BITS, rid & _SLOT_MASK


def rid_pages(rids) -> np.ndarray:
    """Distinct heap page ids of an array of packed RIDs (vectorized
    ``unpack_rid(...)[0]`` + dedup, used by the columnar batch path)."""
    return np.unique(np.asarray(rids, dtype=np.int64) >> _SLOT_BITS)


class HeapFile:
    """Append-mostly record store with slot reuse."""

    def __init__(self, pager: Pager) -> None:
        self.pager = pager
        self._pages: list[int] = []  # pages owned by this heap, append order
        self._open_page: int | None = None

    # ------------------------------------------------------------------
    # snapshot state (checkpoint/restore)
    # ------------------------------------------------------------------
    def state_payload(self) -> dict:
        """The heap's non-page state (record bytes live in the pager)."""
        return {"pages": list(self._pages), "open_page": self._open_page}

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_payload`."""
        self._pages = list(payload["pages"])
        self._open_page = payload["open_page"]

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> int:
        """Store a record; returns its RID."""
        max_payload = self.pager.page_size - _HEADER.size - _SLOT.size
        if len(record) > max_payload:
            raise PageOverflowError(
                f"record of {len(record)} bytes exceeds page payload "
                f"{max_payload}"
            )
        if self._open_page is not None:
            rid = self._try_insert(self._open_page, record)
            if rid is not None:
                return rid
        page_id = self.pager.allocate()
        image = bytearray(self.pager.page_size)
        _HEADER.pack_into(image, 0, 0, self.pager.page_size)
        self.pager.write(page_id, bytes(image))
        self._pages.append(page_id)
        self._open_page = page_id
        rid = self._try_insert(page_id, record)
        assert rid is not None  # fresh page always fits (size checked above)
        return rid

    def delete(self, rid: int) -> None:
        """Mark a record slot deleted (space is not compacted)."""
        page_id, slot = unpack_rid(rid)
        image = bytearray(self.pager.read(page_id))
        count, free = _HEADER.unpack_from(image, 0)
        if slot >= count:
            raise StorageError(f"RID {rid}: slot {slot} out of range")
        offset, length = _SLOT.unpack_from(image, _HEADER.size + slot * _SLOT.size)
        if length == 0:
            raise StorageError(f"RID {rid}: record already deleted")
        _SLOT.pack_into(image, _HEADER.size + slot * _SLOT.size, offset, 0)
        self.pager.write(page_id, bytes(image))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def fetch(self, rid: int) -> bytes:
        """Record bytes by RID (one logical page read)."""
        obs.incr("heap.record_fetches")
        page_id, slot = unpack_rid(rid)
        image = self.pager.read(page_id)
        count, _free = _HEADER.unpack_from(image, 0)
        if slot >= count:
            raise StorageError(f"RID {rid}: slot {slot} out of range")
        offset, length = _SLOT.unpack_from(image, _HEADER.size + slot * _SLOT.size)
        if length == 0:
            raise StorageError(f"RID {rid}: record deleted")
        return image[offset : offset + length]

    def fetch_batch(self, rids: Iterable[int]) -> dict[int, bytes]:
        """Fetch many records, reading each distinct page once.

        This is how a refinement step pays for its candidates: candidates
        are grouped by page, so the I/O cost is the number of distinct
        pages touched, not the number of records.
        """
        by_page: dict[int, list[int]] = {}
        for rid in rids:
            page_id, _slot = unpack_rid(rid)
            by_page.setdefault(page_id, []).append(rid)
        obs.incr("heap.pages_fetched", len(by_page))
        obs.incr("heap.record_fetches", sum(len(v) for v in by_page.values()))
        result: dict[int, bytes] = {}
        for page_id in sorted(by_page):
            image = self.pager.read(page_id)
            count, _free = _HEADER.unpack_from(image, 0)
            for rid in by_page[page_id]:
                _page, slot = unpack_rid(rid)
                if slot >= count:
                    raise StorageError(f"RID {rid}: slot {slot} out of range")
                offset, length = _SLOT.unpack_from(
                    image, _HEADER.size + slot * _SLOT.size
                )
                if length == 0:
                    raise StorageError(f"RID {rid}: record deleted")
                result[rid] = image[offset : offset + length]
        return result

    def scan(self) -> Iterator[tuple[int, bytes]]:
        """All live records as ``(rid, bytes)`` in page order."""
        for page_id in self._pages:
            image = self.pager.read(page_id)
            count, _free = _HEADER.unpack_from(image, 0)
            for slot in range(count):
                offset, length = _SLOT.unpack_from(
                    image, _HEADER.size + slot * _SLOT.size
                )
                if length:
                    yield pack_rid(page_id, slot), image[offset : offset + length]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Pages owned by this heap."""
        return len(self._pages)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _try_insert(self, page_id: int, record: bytes) -> int | None:
        image = bytearray(self.pager.read(page_id))
        count, free = _HEADER.unpack_from(image, 0)
        slot_table_end = _HEADER.size + (count + 1) * _SLOT.size
        if count + 1 > _SLOT_MASK + 1:
            return None
        if free - len(record) < slot_table_end:
            return None
        offset = free - len(record)
        image[offset:free] = record
        _SLOT.pack_into(image, _HEADER.size + count * _SLOT.size, offset, len(record))
        _HEADER.pack_into(image, 0, count + 1, offset)
        self.pager.write(page_id, bytes(image))
        return pack_rid(page_id, count)
