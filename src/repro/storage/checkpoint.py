"""Checkpoint catalogs: save/commit/open for built engines.

The page file + WAL (``repro.storage.filepager``) persist page images;
this module persists the *engine* state on top — which pages form which
B+-tree, the tuple↔RID catalog, slopes, technique — as a JSON payload
in a CRC'd ping-pong catalog file pair (``catalog.0``/``catalog.1``).

The catalog write **is the commit point**: recovery replays the WAL
only up to the sequence number the newest valid catalog names, so a
crash between a WAL commit and the catalog write simply rolls back to
the previous catalog — engine state and page state can never be seen
out of step. Byte layout (spec in ``docs/STORAGE.md``)::

    b"RCAT" | u16 version | u16 reserved | u64 generation |
    u64 commit_seq | u32 payload_len | u32 crc32 | payload (UTF-8 JSON)

``crc32`` covers the 28 header bytes before it plus the payload. The
two slots alternate by generation; the valid slot with the higher
generation wins. The JSON payload may contain ``Infinity`` literals
(Python's default ``json`` dialect) — assignment extrema are ±inf on
empty strips.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.errors import RecoveryError, StorageError
from repro.storage.disk import DiskSimulator
from repro.storage.filepager import FileDisk
from repro.storage.pager import Pager

_MAGIC = b"RCAT"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQQI")  # magic, ver, reserved, gen, seq, len
_CRC = struct.Struct("<I")

CATALOG_FILES = ("catalog.0", "catalog.1")


# ----------------------------------------------------------------------
# catalog files
# ----------------------------------------------------------------------
def write_catalog(data_dir: str, payload: dict, commit_seq: int) -> int:
    """Durably write ``payload`` as the new catalog generation.

    Writes the slot the current generation does *not* occupy, fsyncs
    it, then fsyncs the directory (the slot file may be new). Returns
    the generation written.
    """
    current = _read_slots(data_dir)
    generation = (current[0][0] + 1) if current else 1
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = _HEADER.pack(_MAGIC, _VERSION, 0, generation, commit_seq,
                        len(body))
    crc = zlib.crc32(head + body)
    path = os.path.join(data_dir, CATALOG_FILES[generation % 2])
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        os.ftruncate(fd, 0)
        os.pwrite(fd, head + _CRC.pack(crc) + body, 0)
        os.fsync(fd)
    finally:
        os.close(fd)
    try:  # directory fsync: make the new file name itself durable
        dfd = os.open(data_dir, os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    return generation


def read_catalog(data_dir: str) -> tuple[dict, int, int]:
    """The newest valid catalog: ``(payload, commit_seq, generation)``.

    A corrupt newer slot falls back to the older one (the torn state of
    a crash mid-catalog-write); no valid slot at all raises
    :class:`~repro.errors.RecoveryError`.
    """
    slots = _read_slots(data_dir)
    if not slots:
        raise RecoveryError(f"{data_dir}: no valid catalog slot")
    generation, commit_seq, payload = slots[0]
    return payload, commit_seq, generation


def _read_slots(data_dir: str) -> list[tuple[int, int, dict]]:
    """Valid slots as ``(generation, commit_seq, payload)``, newest first."""
    out = []
    for name in CATALOG_FILES:
        path = os.path.join(data_dir, name)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            continue
        if len(raw) < _HEADER.size + _CRC.size:
            continue
        head = raw[:_HEADER.size]
        magic, version, _, generation, commit_seq, length = \
            _HEADER.unpack(head)
        if magic != _MAGIC or version != _VERSION:
            continue
        (crc,) = _CRC.unpack(raw[_HEADER.size:_HEADER.size + _CRC.size])
        body = raw[_HEADER.size + _CRC.size:]
        if len(body) < length or zlib.crc32(head + body[:length]) != crc:
            continue
        try:
            payload = json.loads(body[:length].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
        out.append((generation, commit_seq, payload))
    out.sort(key=lambda s: s[0], reverse=True)
    return out


# ----------------------------------------------------------------------
# planner save / commit / open
# ----------------------------------------------------------------------
def _planner_payload(planner) -> dict:
    return {
        "kind": "planner",
        "technique": planner.technique,
        "pivot_x": planner.pivot_x,
        "page_size": planner.index.pager.page_size,
        "index": planner.index.catalog_payload(),
    }


def _live_disk(planner, data_dir: str) -> "FileDisk | None":
    """The planner's own FileDisk if it already lives in ``data_dir``."""
    disk = planner.index.pager.disk
    if (
        isinstance(disk, FileDisk)
        and disk.durability == "wal"
        and os.path.realpath(disk.data_dir) == os.path.realpath(data_dir)
    ):
        return disk
    return None


def commit_planner(planner, data_dir: str) -> int:
    """Durability point *without* a checkpoint: flush, fsync the WAL,
    write the catalog. Cheap (no page-file rewrite); recovery replays
    the WAL up to the returned sequence number. Requires the planner to
    already run on a WAL-mode :class:`FileDisk` in ``data_dir``."""
    disk = _live_disk(planner, data_dir)
    if disk is None:
        raise StorageError(
            f"commit requires a durability='wal' FileDisk in {data_dir}; "
            "use save() to snapshot an in-memory engine"
        )
    planner.index.pager.flush()
    seq = disk.commit()
    write_catalog(data_dir, _planner_payload(planner), seq)
    return seq


def save_planner(planner, data_dir: str) -> None:
    """Persist a planner to ``data_dir`` (checkpointed, WAL empty).

    A planner already running on a WAL-mode :class:`FileDisk` in
    ``data_dir`` is committed + checkpointed in place. Any other
    planner — on the in-memory simulator, or on a different directory —
    is *snapshotted*: its pages are cloned into a fresh FileDisk with
    identical allocator state, so the resulting directory reopens to a
    bit-identical index (same page ids, same free-list order, same
    future page accounting). The snapshot becomes visible atomically
    with the catalog write.
    """
    os.makedirs(data_dir, exist_ok=True)
    disk = _live_disk(planner, data_dir)
    if disk is not None:
        # Catalog *before* checkpoint: the checkpoint folds every
        # overlay page into the page file, so the catalog's commit
        # sequence must already cover them — a crash mid-fold then
        # replays every partially-folded page from the WAL instead of
        # reading a torn mix through the old catalog's sequence.
        planner.index.pager.flush()
        seq = disk.commit()
        write_catalog(data_dir, _planner_payload(planner), seq)
        disk.checkpoint()
        return
    planner.index.pager.flush()
    source = planner.index.pager.disk
    target = FileDisk(data_dir, page_size=source.page_size,
                      durability="wal")
    if target._next_id or target._allocated:
        raise StorageError(
            f"{data_dir} already holds a page file; save() snapshots "
            "into an empty directory (or the planner's own)"
        )
    target._next_id = source._next_id
    target._free = list(source._free)
    for pid in _page_ids(source):
        target._allocated.add(pid)
        target._overlay[pid] = _raw_page(source, pid)
    seq = target.checkpoint()  # folds the clone into the page file
    write_catalog(data_dir, _planner_payload(planner), seq)
    target.close()


def _page_ids(disk) -> list[int]:
    if isinstance(disk, DiskSimulator):
        return sorted(disk._pages)
    if isinstance(disk, FileDisk):
        return sorted(disk._allocated)
    raise StorageError(f"cannot snapshot pages from {type(disk).__name__}")


def _raw_page(disk, pid: int) -> bytes:
    """A page image without touching the source's physical counters."""
    if isinstance(disk, DiskSimulator):
        return disk._pages[pid]
    image = disk._overlay.get(pid)
    return image if image is not None else disk._read_raw(pid)


def open_planner(data_dir: str, columnar: bool | None = None,
                 buffer_frames: int = 0):
    """Open a saved planner from disk without rebuilding.

    Reads the newest valid catalog, then opens the page file with WAL
    replay bounded by the catalog's commit sequence — mutations logged
    after the catalog was written are rolled back, keeping engine and
    page state consistent.
    """
    from repro.core.dual_index import DualIndex
    from repro.core.planner import DualIndexPlanner
    from repro.storage.serialize import KeyCodec

    payload, seq, _generation = read_catalog(data_dir)
    if payload.get("kind") != "planner":
        raise StorageError(
            f"{data_dir} holds a {payload.get('kind')!r} catalog, "
            "expected 'planner' (use open_engine for either kind)")
    disk = FileDisk(data_dir, page_size=payload["page_size"],
                    durability="wal", replay_upto=seq)
    pager = Pager(page_size=payload["page_size"],
                  buffer_frames=buffer_frames, disk=disk)
    state = payload["index"]
    index = DualIndex(
        pager=pager,
        slopes=state["slopes"],
        key_codec=KeyCodec(state["key_bytes"]),
        dynamic=state["dynamic"],
        name=state["name"],
        columnar=columnar,
    )
    index.restore_catalog(state)
    planner = DualIndexPlanner(index, technique=payload["technique"],
                               pivot_x=payload["pivot_x"])
    planner.data_dir = data_dir
    return planner


def wal_size(planner) -> int:
    """Bytes currently in the planner's WAL (0 for non-durable planners).

    Includes the 16-byte file header, so an empty-but-present log
    reports a small non-zero size.
    """
    disk = planner.index.pager.disk
    if isinstance(disk, FileDisk) and disk.wal is not None:
        return disk.wal.size_bytes
    return 0


def maybe_checkpoint(planner, data_dir: str, threshold_bytes: int) -> bool:
    """Checkpoint the planner iff its WAL has outgrown ``threshold_bytes``.

    This is the serve layer's WAL-bounding primitive: `commit_planner`
    keeps commits cheap by letting the log grow, and this folds the log
    back into the page file once it passes the threshold. Returns True
    when a checkpoint ran. Ordering matches :func:`save_planner` — the
    catalog (commit point) is written *before* the page-file fold, so a
    crash mid-checkpoint replays the still-intact WAL on reopen.
    """
    disk = _live_disk(planner, data_dir)
    if disk is None or disk.wal is None:
        return False
    if disk.wal.size_bytes <= threshold_bytes:
        return False
    planner.index.pager.flush()
    seq = disk.commit()
    write_catalog(data_dir, _planner_payload(planner), seq)
    disk.checkpoint()
    return True


# ----------------------------------------------------------------------
# sharded save / open
# ----------------------------------------------------------------------
def save_sharded(engine, data_dir: str) -> None:
    """Persist a :class:`ShardedDualIndex`: one subdirectory per shard
    plus a manifest catalog. Each shard directory is individually
    crash-consistent; the manifest makes the set openable."""
    os.makedirs(data_dir, exist_ok=True)
    for n, planner in enumerate(engine.planners):
        save_planner(planner, os.path.join(data_dir, f"shard-{n}"))
    write_catalog(data_dir, {
        "kind": "sharded",
        "shards": len(engine.planners),
        "fanout": engine.fanout,
    }, 0)


def open_sharded(data_dir: str, columnar: bool | None = None,
                 fanout: str | None = None):
    """Open a saved :class:`ShardedDualIndex` from its manifest."""
    from repro.shard.sharded import ShardedDualIndex

    payload, _seq, _generation = read_catalog(data_dir)
    if payload.get("kind") != "sharded":
        raise StorageError(
            f"{data_dir} holds a {payload.get('kind')!r} catalog, "
            "expected 'sharded'")
    planners = [
        open_planner(os.path.join(data_dir, f"shard-{n}"), columnar=columnar)
        for n in range(payload["shards"])
    ]
    return ShardedDualIndex(
        planners, fanout=fanout if fanout is not None else payload["fanout"])


# ----------------------------------------------------------------------
# kind-dispatching front door (what the CLI uses)
# ----------------------------------------------------------------------
def save_engine(engine, data_dir: str) -> None:
    """Persist a planner or sharded engine, whichever ``engine`` is."""
    if hasattr(engine, "planners"):
        save_sharded(engine, data_dir)
    else:
        save_planner(engine, data_dir)


def open_engine(data_dir: str, columnar: bool | None = None):
    """Open whatever engine kind ``data_dir``'s catalog names."""
    payload, _seq, _generation = read_catalog(data_dir)
    if payload.get("kind") == "sharded":
        return open_sharded(data_dir, columnar=columnar)
    return open_planner(data_dir, columnar=columnar)
