"""Storage engine: disk, buffer pool, pager, heap file, codecs — plus
the durable substrate (file-backed pager, WAL, checkpoint catalogs).

A byte-accurate reproduction of the paper's storage substrate (1024-byte
pages, 4-byte values) with exact page-access accounting — the metric every
experiment in Section 5 reports. The file-backed :class:`FileDisk` keeps
that accounting bit-identical while making pages survive a process exit;
``docs/STORAGE.md`` specifies the on-disk format.
"""

from repro.storage.buffer import BufferPool
from repro.storage.checkpoint import (
    commit_planner,
    open_engine,
    open_planner,
    open_sharded,
    read_catalog,
    save_engine,
    save_planner,
    save_sharded,
    write_catalog,
)
from repro.storage.disk import DEFAULT_PAGE_SIZE, NULL_PAGE, DiskSimulator
from repro.storage.filepager import FileDisk
from repro.storage.heap import HeapFile, pack_rid, unpack_rid
from repro.storage.pager import Pager
from repro.storage.serialize import (
    KeyCodec,
    RID_BYTES,
    decode_tuple,
    encode_tuple,
    tuple_record_size,
)
from repro.storage.stats import IOStats, StatsScope
from repro.storage.wal import WriteAheadLog

__all__ = [
    "DiskSimulator",
    "FileDisk",
    "WriteAheadLog",
    "BufferPool",
    "Pager",
    "HeapFile",
    "KeyCodec",
    "IOStats",
    "StatsScope",
    "encode_tuple",
    "decode_tuple",
    "tuple_record_size",
    "pack_rid",
    "unpack_rid",
    "save_planner",
    "commit_planner",
    "open_planner",
    "save_sharded",
    "open_sharded",
    "save_engine",
    "open_engine",
    "write_catalog",
    "read_catalog",
    "DEFAULT_PAGE_SIZE",
    "NULL_PAGE",
    "RID_BYTES",
]
