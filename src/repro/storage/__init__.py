"""Simulated storage engine: disk, buffer pool, pager, heap file, codecs.

A byte-accurate reproduction of the paper's storage substrate (1024-byte
pages, 4-byte values) with exact page-access accounting — the metric every
experiment in Section 5 reports.
"""

from repro.storage.buffer import BufferPool
from repro.storage.disk import DEFAULT_PAGE_SIZE, NULL_PAGE, DiskSimulator
from repro.storage.heap import HeapFile, pack_rid, unpack_rid
from repro.storage.pager import Pager
from repro.storage.serialize import (
    KeyCodec,
    RID_BYTES,
    decode_tuple,
    encode_tuple,
    tuple_record_size,
)
from repro.storage.stats import IOStats, StatsScope

__all__ = [
    "DiskSimulator",
    "BufferPool",
    "Pager",
    "HeapFile",
    "KeyCodec",
    "IOStats",
    "StatsScope",
    "encode_tuple",
    "decode_tuple",
    "tuple_record_size",
    "pack_rid",
    "unpack_rid",
    "DEFAULT_PAGE_SIZE",
    "NULL_PAGE",
    "RID_BYTES",
]
