"""Binary codecs for keys and generalized-tuple records.

The paper stores 4-byte values in 1024-byte pages. :class:`KeyCodec`
supports both the paper's 4-byte (float32) key layout and an 8-byte
(float64) layout for exactness-sensitive tests; node capacities are
derived from the codec, so fan-out follows the chosen layout.

Float32 keys quantise: ``encode(decode(x)) == decode(x)`` but
``decode(encode(x)) != x`` in general. Query code compensates by widening
sweep boundaries with :func:`KeyCodec.down`/:func:`KeyCodec.up`, relying
on the refinement step to discard the handful of extra candidates —
no result can be lost to quantisation.
"""

from __future__ import annotations

import math
import struct
from typing import Sequence

import numpy as np

from repro.constraints.linear import LinearConstraint
from repro.constraints.theta import Theta
from repro.constraints.tuples import GeneralizedTuple
from repro.errors import StorageError, TruncatedRecordError

#: Encodings of Theta in tuple records.
_THETA_CODES = {Theta.LE: 0, Theta.GE: 1, Theta.EQ: 2, Theta.LT: 3, Theta.GT: 4}
_THETA_FROM_CODE = {v: k for k, v in _THETA_CODES.items()}

#: 4-byte record id / page pointer.
RID_BYTES = 4

#: Pre-parsed key structs, shared by every codec instance (parsing the
#: format string once per key was a measurable build-path cost).
_KEY_STRUCTS = {4: struct.Struct("<f"), 8: struct.Struct("<d")}
_KEY_DTYPES = {4: np.dtype("<f4"), 8: np.dtype("<f8")}

#: Float32 saturation threshold of :meth:`KeyCodec.encode`.
_F32_SATURATE = 3.4e38


class KeyCodec:
    """Fixed-width float key codec (4 or 8 bytes)."""

    def __init__(self, key_bytes: int = 4) -> None:
        if key_bytes not in (4, 8):
            raise StorageError("key_bytes must be 4 or 8")
        self.key_bytes = key_bytes
        self._struct = _KEY_STRUCTS[key_bytes]
        self._dtype = _KEY_DTYPES[key_bytes]
        self._fmt = self._struct.format

    def encode(self, value: float) -> bytes:
        """Pack a key (float32 saturates very large magnitudes to ±inf)."""
        if self.key_bytes == 4 and math.isfinite(value):
            if value > _F32_SATURATE:
                value = math.inf
            elif value < -_F32_SATURATE:
                value = -math.inf
        return self._struct.pack(value)

    def decode(self, data: bytes) -> float:
        """Unpack a key.

        Raises :class:`~repro.errors.TruncatedRecordError` if ``data``
        is not exactly one key wide (the torn read after a crash).
        """
        if len(data) != self.key_bytes:
            raise TruncatedRecordError(
                f"key buffer of {len(data)} bytes, expected {self.key_bytes}"
            )
        return self._struct.unpack(data)[0]

    # ------------------------------------------------------------------
    # batch paths (B+-tree node (de)serialization)
    # ------------------------------------------------------------------
    def saturate_array(self, values: Sequence[float] | np.ndarray) -> np.ndarray:
        """``values`` as float64 with :meth:`encode`'s saturation applied.

        Finite magnitudes beyond the float32 threshold become ±inf for
        4-byte keys (bit-identical to the scalar path); 8-byte keys pass
        through untouched.
        """
        arr = np.asarray(values, dtype=np.float64)
        if self.key_bytes == 8 or arr.size == 0:
            return arr
        out = arr.copy()
        finite = np.isfinite(out)
        out[finite & (out > _F32_SATURATE)] = math.inf
        out[finite & (out < -_F32_SATURATE)] = -math.inf
        return out

    def encode_keys(self, values: Sequence[float] | np.ndarray) -> bytes:
        """Pack many keys contiguously.

        Byte-identical to concatenating :meth:`encode` over ``values``
        (same rounding, same saturation) but one vectorized cast instead
        of one ``struct.pack`` per key.
        """
        out = self.saturate_array(values)
        with np.errstate(over="ignore"):
            return out.astype(self._dtype).tobytes()

    def decode_keys(
        self, data: bytes, count: int, offset: int = 0
    ) -> list[float]:
        """Unpack ``count`` contiguous keys starting at ``offset``.

        The inverse of :meth:`encode_keys`; values equal per-key
        :meth:`decode` results exactly (float32 widens losslessly).
        Raises :class:`~repro.errors.TruncatedRecordError` when the
        buffer is too short for the promised count.
        """
        if count < 0 or offset < 0:
            raise TruncatedRecordError(
                f"invalid key range count={count} offset={offset}"
            )
        if offset + count * self.key_bytes > len(data):
            raise TruncatedRecordError(
                f"key buffer of {len(data)} bytes cannot hold {count} "
                f"keys of {self.key_bytes} bytes at offset {offset}"
            )
        arr = np.frombuffer(data, dtype=self._dtype, count=count,
                            offset=offset)
        return arr.astype(np.float64).tolist()

    def quantize_many(self, values: Sequence[float] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`quantize`: the stored representation of each
        value, as a float64 array (bit-identical to the scalar path)."""
        out = self.saturate_array(values)
        if self.key_bytes == 8:
            return out
        with np.errstate(over="ignore"):
            return out.astype(self._dtype).astype(np.float64)

    def quantize(self, value: float) -> float:
        """The stored representation of ``value`` (round-trip)."""
        return self.decode(self.encode(value))

    def down(self, value: float) -> float:
        """A stored-precision value guaranteed ``<= value``.

        When the nearest representable value rounds *up*, step down by a
        full unit-in-the-last-place of the storage format (a float64
        ``nextafter`` would re-quantise to the same float32).
        """
        if not math.isfinite(value):
            return value
        q = self.quantize(value)
        if q <= value:
            return q
        return self.quantize(q - 1.5 * self._ulp(q))

    def up(self, value: float) -> float:
        """Mirror of :meth:`down` for descending boundaries."""
        if not math.isfinite(value):
            return value
        q = self.quantize(value)
        if q >= value:
            return q
        return self.quantize(q + 1.5 * self._ulp(q))

    def _ulp(self, value: float) -> float:
        if self.key_bytes == 8:
            return math.ulp(value)
        return max(2.0 ** -149, abs(value) * 2.0 ** -23)


# ----------------------------------------------------------------------
# generalized tuple records
# ----------------------------------------------------------------------
def encode_tuple(tuple_id: int, t: GeneralizedTuple) -> bytes:
    """Serialise a generalized tuple for the heap file.

    Layout: ``u32 tuple_id | u8 dim | u8 m | m × (dim × f64 coeffs,
    f64 const, u8 theta)``. Coefficients are stored at full float64
    precision: the refinement step and dynamic key re-derivation both
    work from fetched records, so record decoding must be lossless.
    (The 4-byte value size of the paper governs *index* keys/pointers,
    which dominate the structures Figure 10 compares.)
    """
    dim = t.dimension
    atoms = t.constraints
    if dim > 255 or len(atoms) > 255:
        raise StorageError("tuple too wide for the record layout")
    parts = [struct.pack("<IBB", tuple_id, dim, len(atoms))]
    for atom in atoms:
        parts.append(struct.pack(f"<{dim}d", *atom.coeffs))
        parts.append(struct.pack("<dB", atom.const, _THETA_CODES[atom.theta]))
    return b"".join(parts)


def decode_tuple(data: bytes) -> tuple[int, GeneralizedTuple]:
    """Inverse of :func:`encode_tuple`.

    A buffer shorter than its own header promises raises
    :class:`~repro.errors.TruncatedRecordError`; an unknown theta code
    (bit rot rather than tearing) raises :class:`StorageError`.
    """
    if len(data) < 6:
        raise TruncatedRecordError(
            f"tuple record of {len(data)} bytes is shorter than its header"
        )
    tuple_id, dim, m = struct.unpack_from("<IBB", data, 0)
    needed = tuple_record_size(dim, m)
    if len(data) < needed:
        raise TruncatedRecordError(
            f"tuple record of {len(data)} bytes, header promises {needed}"
        )
    offset = 6
    atoms = []
    for _ in range(m):
        coeffs = struct.unpack_from(f"<{dim}d", data, offset)
        offset += 8 * dim
        const, code = struct.unpack_from("<dB", data, offset)
        offset += 9
        if code not in _THETA_FROM_CODE:
            raise StorageError(f"unknown theta code {code} in tuple record")
        atoms.append(LinearConstraint(coeffs, const, _THETA_FROM_CODE[code]))
    return tuple_id, GeneralizedTuple(atoms)


def tuple_record_size(dim: int, num_atoms: int) -> int:
    """Byte size of an encoded tuple record."""
    return 6 + num_atoms * (8 * dim + 9)
