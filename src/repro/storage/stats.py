"""I/O statistics for the simulated disk stack.

The paper's experimental metric is *page accesses*. :class:`IOStats`
counts logical reads/writes (every page the code touches — what a cold
buffer pool would fetch) separately from physical reads/writes (what
actually crossed the simulated disk boundary when a buffer pool is
active). Benchmarks report logical reads to match the paper's cold-cache
setting; ablation A3 contrasts the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Counters for one pager stack."""

    logical_reads: int = 0
    logical_writes: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    allocations: int = 0
    frees: int = 0

    @property
    def page_accesses(self) -> int:
        """The paper's metric: logical page reads plus writes."""
        return self.logical_reads + self.logical_writes

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(
            self.logical_reads,
            self.logical_writes,
            self.physical_reads,
            self.physical_writes,
            self.allocations,
            self.frees,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counter difference ``self - earlier``."""
        return IOStats(
            self.logical_reads - earlier.logical_reads,
            self.logical_writes - earlier.logical_writes,
            self.physical_reads - earlier.physical_reads,
            self.physical_writes - earlier.physical_writes,
            self.allocations - earlier.allocations,
            self.frees - earlier.frees,
        )

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (the trace/metrics JSON schema)."""
        return {
            "logical_reads": self.logical_reads,
            "logical_writes": self.logical_writes,
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "allocations": self.allocations,
            "frees": self.frees,
        }

    def reset(self) -> None:
        """Zero every counter in place."""
        self.logical_reads = 0
        self.logical_writes = 0
        self.physical_reads = 0
        self.physical_writes = 0
        self.allocations = 0
        self.frees = 0


@dataclass
class StatsScope:
    """Context manager measuring the I/O delta of a code block.

    Example::

        with StatsScope(pager.stats) as scope:
            index.exist(...)
        print(scope.delta.page_accesses)
    """

    stats: IOStats
    delta: IOStats = field(default_factory=IOStats)
    _before: IOStats = field(default_factory=IOStats)

    def __enter__(self) -> "StatsScope":
        self._before = self.stats.snapshot()
        return self

    def __exit__(self, *exc_info) -> None:
        self.delta = self.stats.delta_since(self._before)
