"""The pager: one facade for every structure that touches pages.

Counts *logical* accesses (the paper's metric — what a cold cache would
pay) and routes physical I/O through an optional buffer pool. Each index
structure and heap file in a benchmark shares one pager so space and
access accounting line up with the paper's single-machine setting — or
gets its own pager when per-structure accounting is wanted.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.storage.buffer import BufferPool
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskSimulator
from repro.storage.stats import IOStats, StatsScope


def _default_disk(page_size: int) -> DiskSimulator:
    """The disk behind a ``Pager()`` with no explicit ``disk=``.

    Normally the in-memory :class:`DiskSimulator`. With ``REPRO_DATA_DIR``
    set, every default pager instead gets an ephemeral file-backed
    :class:`~repro.storage.filepager.FileDisk` under that directory —
    how CI runs the whole tier-1 suite against real files while keeping
    page accounting bit-identical.
    """
    root = os.environ.get("REPRO_DATA_DIR")
    if not root:
        return DiskSimulator(page_size)
    from repro.storage.filepager import FileDisk

    return FileDisk.ephemeral(root, page_size=page_size)


class _PinScope:
    """Pins a set of pages on enter, unpins on exit (see Pager.pinned)."""

    def __init__(self, buffer: BufferPool, page_ids: list[int]) -> None:
        self._buffer = buffer
        self._page_ids = page_ids

    def __enter__(self) -> "_PinScope":
        for pid in self._page_ids:
            self._buffer.pin(pid)
        return self

    def __exit__(self, *exc_info) -> None:
        for pid in self._page_ids:
            self._buffer.unpin(pid)


class Pager:
    """Logical page interface with access accounting."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_frames: int = 0,
        disk: DiskSimulator | None = None,
    ) -> None:
        self.disk = disk if disk is not None else _default_disk(page_size)
        self.buffer = BufferPool(self.disk, buffer_frames)
        self.stats = IOStats()

    # ------------------------------------------------------------------
    # page operations
    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        """Page size in bytes."""
        return self.disk.page_size

    def allocate(self) -> int:
        """Allocate a fresh page."""
        self.stats.allocations += 1
        return self.disk.allocate()

    def free(self, page_id: int) -> None:
        """Free a page and drop any cached frame.

        The disk is asked first: a rejected free (double free, bad page
        id) raises with the pager's stats and cached frames untouched.
        """
        self.disk.free(page_id)
        self.buffer.discard(page_id)
        self.stats.frees += 1

    def read(self, page_id: int) -> bytes:
        """Read a page (one logical read; physical only on cache miss)."""
        self.stats.logical_reads += 1
        data = self.buffer.read(page_id)
        self._sync_physical()
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write a page image (one logical write)."""
        self.stats.logical_writes += 1
        self.buffer.write(page_id, data)
        self._sync_physical()

    def flush(self) -> None:
        """Force dirty frames to disk."""
        self.buffer.flush()
        self._sync_physical()

    def cool_down(self) -> None:
        """Flush and empty the buffer — the cold-cache starting state."""
        self.buffer.clear()
        self._sync_physical()

    def pinned(self, page_ids: Iterable[int]) -> "_PinScope":
        """Context manager pinning pages in the buffer pool for a block.

        Used by the batch executor to keep the heap pages shared by a
        batch's refinement steps resident across query groups. A no-op
        when the pool has no frames (``buffer_frames=0``).
        """
        return _PinScope(self.buffer, list(page_ids))

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def measure(self) -> StatsScope:
        """Context manager capturing the I/O delta of a block."""
        return StatsScope(self.stats)

    @property
    def allocated_pages(self) -> int:
        """Live page count."""
        return self.disk.allocated_pages

    @property
    def allocated_bytes(self) -> int:
        """Live byte count (Figure 10's space metric)."""
        return self.disk.allocated_bytes

    def _sync_physical(self) -> None:
        self.stats.physical_reads = self.disk.stats.physical_reads
        self.stats.physical_writes = self.disk.stats.physical_writes

    def __repr__(self) -> str:
        return (
            f"<Pager pages={self.allocated_pages} "
            f"logical_reads={self.stats.logical_reads} "
            f"buffer={self.buffer.capacity}>"
        )
