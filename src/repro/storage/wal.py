"""Write-ahead log: typed, CRC32-framed records with fsync-on-commit.

The durable pager (:mod:`repro.storage.filepager`) never touches the
page file between checkpoints. Every mutation instead appends a redo
record here; ``commit`` appends a COMMIT marker and fsyncs, making the
whole batch durable at one well-defined point. Recovery replays
committed batches in order and *truncates* anything after the last
commit it can prove complete — a torn tail (short frame or CRC
mismatch) is the expected crash artifact, not corruption.

Byte layout (full spec in ``docs/STORAGE.md``):

- file header, 16 bytes: ``b"RWAL" | u16 version | u16 reserved |
  u32 page_size | u32 crc32(bytes[0:12])``
- record frame: ``u32 crc32(type+payload) | u32 len(type+payload) |
  u8 type | payload``

Record types::

    1  PAGE    u32 page_id + page image   (redo: full page image)
    2  ALLOC   u32 page_id                (redo: replays the allocator)
    3  FREE    u32 page_id
    4  COMMIT  u64 seq                    (batch boundary, fsynced)

All integers are little-endian. Everything between two COMMITs belongs
to the *later* COMMIT's sequence number; records after the final COMMIT
are uncommitted and discarded by recovery.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

from repro.errors import FaultInjectedError, WalCorruptionError

_MAGIC = b"RWAL"
_VERSION = 1
_HEADER = struct.Struct("<4sHHI")  # magic, version, reserved, page_size
_HEADER_SIZE = _HEADER.size + 4  # + u32 crc
_FRAME = struct.Struct("<II")  # crc, length (of type byte + payload)

#: Record type tags.
REC_PAGE = 1
REC_ALLOC = 2
REC_FREE = 3
REC_COMMIT = 4

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Sanity bound on a single record (a PAGE record plus slack).
_MAX_RECORD = 1 << 26


@dataclass
class WalBatch:
    """One committed batch: ``(seq, records)`` with records as
    ``(type, page_id_or_seq, image_or_None)`` tuples."""

    seq: int
    records: list[tuple[int, int, bytes | None]]


class WriteAheadLog:
    """Append-only redo log over a single file.

    Appends buffer in the OS page cache (plain ``os.write``); only
    :meth:`commit` fsyncs. Crash-injection hooks (``fail_append_at``)
    let the fuzzer tear an append mid-frame exactly the way a power cut
    would, then prove recovery discards it.
    """

    def __init__(self, path: str, page_size: int) -> None:
        self.path = path
        self.page_size = page_size
        self.appends_seen = 0
        #: Armed crash point: tear the Nth append (absolute index).
        self.fail_append_at: int | None = None
        #: How many bytes of the torn frame reach the file (default half).
        self.torn_bytes: int | None = None
        from repro.obs.metrics import get_registry

        registry = get_registry()
        self._c_appends = registry.counter(
            "wal_appends", "WAL records appended")
        self._c_fsyncs = registry.counter(
            "wal_fsyncs", "WAL fsync calls (one per commit)")
        self._c_replayed = registry.counter(
            "wal_replayed_records", "WAL records reapplied during recovery")
        # A file shorter than its header can only be a torn creation —
        # no record can precede the header, so rewriting it is safe.
        existing = (
            os.path.exists(path) and os.path.getsize(path) >= _HEADER_SIZE
        )
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        if existing:
            self._check_header()
            self._end = os.path.getsize(path)
        else:
            self._write_header()
            self._end = _HEADER_SIZE
        # High-water mark of committed bytes; replay() corrects it after
        # a crash (an existing file may end in a torn, uncommitted tail).
        self._clean_end = self._end
        self.last_seq = 0

    # ------------------------------------------------------------------
    # header
    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        head = _HEADER.pack(_MAGIC, _VERSION, 0, self.page_size)
        head += _U32.pack(zlib.crc32(head))
        os.pwrite(self._fd, head, 0)

    def _check_header(self) -> None:
        head = os.pread(self._fd, _HEADER_SIZE, 0)
        if len(head) < _HEADER_SIZE:
            raise WalCorruptionError(f"{self.path}: short WAL header")
        magic, version, _, page_size = _HEADER.unpack(head[:_HEADER.size])
        (crc,) = _U32.unpack(head[_HEADER.size:])
        if magic != _MAGIC or crc != zlib.crc32(head[:_HEADER.size]):
            raise WalCorruptionError(f"{self.path}: bad WAL header")
        if version != _VERSION:
            raise WalCorruptionError(
                f"{self.path}: WAL format v{version}, expected v{_VERSION}")
        if page_size != self.page_size:
            raise WalCorruptionError(
                f"{self.path}: WAL page size {page_size} != {self.page_size}")

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def _append(self, rec_type: int, payload: bytes) -> None:
        body = bytes([rec_type]) + payload
        frame = _FRAME.pack(zlib.crc32(body), len(body)) + body
        index = self.appends_seen
        self.appends_seen += 1
        self._c_appends.inc()
        if self.fail_append_at is not None and index >= self.fail_append_at:
            torn = self.torn_bytes
            if torn is None:
                torn = len(frame) // 2
            torn = max(1, min(torn, len(frame) - 1))
            os.pwrite(self._fd, frame[:torn], self._end)
            self._end += torn
            self.fail_append_at = None
            raise FaultInjectedError(
                f"injected crash tearing WAL append #{index} "
                f"({torn}/{len(frame)} bytes reached {self.path})",
                op="wal-append", op_index=index,
            )
        os.pwrite(self._fd, frame, self._end)
        self._end += len(frame)

    def append_page(self, page_id: int, image: bytes) -> None:
        """Redo record: full page image."""
        self._append(REC_PAGE, _U32.pack(page_id) + image)

    def append_alloc(self, page_id: int) -> None:
        """Redo record: the allocator handed out ``page_id``."""
        self._append(REC_ALLOC, _U32.pack(page_id))

    def append_free(self, page_id: int) -> None:
        """Redo record: ``page_id`` returned to the free list."""
        self._append(REC_FREE, _U32.pack(page_id))

    def commit(self) -> int:
        """Append a COMMIT marker and fsync; returns its sequence number.

        Idempotent when nothing was appended since the last commit: the
        current sequence number is returned without touching the file.
        """
        if self._end == self._clean_end:
            return self.last_seq
        seq = self.last_seq + 1
        self._append(REC_COMMIT, _U64.pack(seq))
        os.fsync(self._fd)
        self._c_fsyncs.inc()
        self.last_seq = seq
        self._clean_end = self._end
        return seq

    # ------------------------------------------------------------------
    # replay / reset
    # ------------------------------------------------------------------
    def replay(self, upto_seq: int | None = None) -> list[WalBatch]:
        """Committed batches with ``seq <= upto_seq`` (all if ``None``).

        Scans from the header, validating each frame's CRC. The first
        torn or corrupt frame ends the scan — everything before the last
        complete COMMIT at or below ``upto_seq`` is returned, everything
        after is truncated away so later appends start from a clean
        tail. Also resets :attr:`last_seq` to the replayed high-water
        mark.
        """
        size = os.path.getsize(self.path)
        offset = _HEADER_SIZE
        batches: list[WalBatch] = []
        pending: list[tuple[int, int, bytes | None]] = []
        keep_end = _HEADER_SIZE
        while offset + _FRAME.size <= size:
            head = os.pread(self._fd, _FRAME.size, offset)
            if len(head) < _FRAME.size:
                break
            crc, length = _FRAME.unpack(head)
            if length < 1 or length > _MAX_RECORD:
                break
            if offset + _FRAME.size + length > size:
                break  # torn tail
            body = os.pread(self._fd, length, offset + _FRAME.size)
            if len(body) < length or zlib.crc32(body) != crc:
                break
            offset += _FRAME.size + length
            rec_type, payload = body[0], body[1:]
            if rec_type == REC_COMMIT:
                (seq,) = _U64.unpack(payload)
                if upto_seq is not None and seq > upto_seq:
                    break
                batches.append(WalBatch(seq, pending))
                pending = []
                keep_end = offset
            elif rec_type == REC_PAGE:
                (page_id,) = _U32.unpack(payload[:4])
                image = payload[4:]
                if len(image) != self.page_size:
                    raise WalCorruptionError(
                        f"{self.path}: PAGE record with {len(image)}-byte "
                        f"image on a {self.page_size}-byte pager")
                pending.append((REC_PAGE, page_id, image))
            elif rec_type in (REC_ALLOC, REC_FREE):
                (page_id,) = _U32.unpack(payload[:4])
                pending.append((rec_type, page_id, None))
            else:
                break  # unknown type: treat as torn tail
        os.ftruncate(self._fd, keep_end)
        self._end = keep_end
        self._clean_end = keep_end
        self.last_seq = batches[-1].seq if batches else 0
        n = sum(len(b.records) for b in batches)
        if n:
            self._c_replayed.inc(n)
        return batches

    @property
    def size_bytes(self) -> int:
        """Current log size in bytes, header included.

        The serve layer polls this after write batches to decide when a
        checkpoint should fold the log back into the page file (see
        :func:`repro.storage.checkpoint.maybe_checkpoint`).
        """
        return self._end

    def reset(self) -> None:
        """Empty the log (after a checkpoint made its contents moot)."""
        os.ftruncate(self._fd, _HEADER_SIZE)
        os.fsync(self._fd)
        self._c_fsyncs.inc()
        self._end = _HEADER_SIZE
        self._clean_end = _HEADER_SIZE

    def close(self) -> None:
        """Close the file descriptor (no implicit flush or fsync)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __repr__(self) -> str:
        return (
            f"<WriteAheadLog {self.path!r} seq={self.last_seq} "
            f"bytes={self._end}>"
        )
