"""A file-backed page store, drop-in compatible with ``DiskSimulator``.

``FileDisk`` keeps the simulator's exact accounting semantics — same
allocation order (LIFO free list), same error messages, one physical
read/write counted per ``read_page``/``write_page`` and none for
allocate/free — so every pinned page-count baseline holds unchanged
when the substrate becomes real files. Reads go through an mmap fast
path with a ``pread`` fallback; writes use ``pwrite`` on a raw fd, so
forked shard workers sharing the descriptor never race a seek offset.

Two durability modes:

- ``"wal"`` — the page file is written **only at checkpoint**. Mutations
  append redo records to the WAL and park the page image in an
  in-memory overlay; :meth:`commit` fsyncs the WAL, :meth:`checkpoint`
  folds the overlay into the page file and resets the WAL. Crash
  recovery replays committed WAL batches on open.
- ``"none"`` — write-through ``pwrite`` with no WAL; the header and
  free list are persisted on :meth:`close`. This is the cheap mode the
  ``REPRO_DATA_DIR`` gate uses to run the whole test suite file-backed.

On-disk layout (full byte-level spec in ``docs/STORAGE.md``): two
64-byte ping-pong header slots at offsets 0 and 64 (the valid slot with
the higher generation wins), then page ``i`` at ``128 + i*page_size``.
The free stack lives in a generation-tagged ping-pong file
(``freelist.0``/``freelist.1``, slot = generation % 2) written *before*
the header flips, so the slot the surviving header reads is never
touched by a crashed checkpoint; on open it restores the exact LIFO pop
order the process would have had without the restart.
"""

from __future__ import annotations

import mmap
import os
import shutil
import struct
import tempfile
import weakref
import zlib

from repro.errors import (
    DoubleFreeError,
    FaultInjectedError,
    RecoveryError,
    StorageError,
)
from repro.storage.disk import DEFAULT_PAGE_SIZE, NULL_PAGE
from repro.storage.stats import IOStats
from repro.storage.wal import (
    REC_ALLOC,
    REC_FREE,
    REC_PAGE,
    WriteAheadLog,
)

PAGE_FILE = "pages.rpg"
WAL_FILE = "wal.rwl"
FREE_FILES = ("freelist.0", "freelist.1")

_MAGIC = b"RPGF"
_FREE_MAGIC = b"RFRE"
_VERSION = 1
#: magic, version, reserved, page_size, next_id, free_count,
#: generation, checkpoint_seq, reserved — 60 bytes, + u32 crc32 = 64.
_HEADER = struct.Struct("<4sHHIIIQQ24s")
#: free-list file header: magic, count, generation (then crc, then body).
_FREE_HEADER = struct.Struct("<4sIQ")
_SLOT_SIZE = 64
_PAGE0 = 2 * _SLOT_SIZE
_U32 = struct.Struct("<I")


class _Handles:
    """fd + mmap holder shared between ``close()`` and the ephemeral
    finalizer (so cleanup is idempotent whichever runs first)."""

    __slots__ = ("fd", "mm")

    def __init__(self) -> None:
        self.fd: int | None = None
        self.mm: mmap.mmap | None = None


def _release(handles: _Handles, wal: WriteAheadLog | None = None,
             rmdir: str | None = None) -> None:
    if handles.mm is not None:
        handles.mm.close()
        handles.mm = None
    if handles.fd is not None:
        os.close(handles.fd)
        handles.fd = None
    if wal is not None:
        wal.close()
    if rmdir is not None:
        shutil.rmtree(rmdir, ignore_errors=True)


class FileDisk:
    """Durable page store under ``data_dir`` (``pages.rpg`` +
    ``wal.rwl``), presenting the :class:`DiskSimulator` protocol."""

    def __init__(
        self,
        data_dir: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        durability: str = "wal",
        replay_upto: int | None = None,
    ) -> None:
        if page_size < 64:
            raise StorageError(f"page size {page_size} is unrealistically small")
        if durability not in ("wal", "none"):
            raise StorageError(f"unknown durability mode {durability!r}")
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.path = os.path.join(data_dir, PAGE_FILE)
        self.page_size = page_size
        self.durability = durability
        self.stats = IOStats()
        self._allocated: set[int] = set()
        self._free: list[int] = []
        self._next_id = 0
        self._overlay: dict[int, bytes] = {}
        self._generation = 0
        self.checkpoint_seq = 0
        #: Armed crash point: raise after N checkpoint page writes.
        self.fail_checkpoint_after: int | None = None
        self._h = _Handles()
        self._mapped = 0
        existing = (
            os.path.exists(self.path)
            and os.path.getsize(self.path) >= _SLOT_SIZE
        )
        self._h.fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if existing:
            self._load_header()
        else:
            self._write_header()
        wal_path = os.path.join(data_dir, WAL_FILE)
        if durability == "wal":
            from repro.obs.metrics import get_registry

            self._c_ckpt_pages = get_registry().counter(
                "checkpoint_pages", "pages folded into the page file at "
                "checkpoint")
            self.wal = WriteAheadLog(wal_path, page_size)
            self._recover(replay_upto)
        else:
            if (
                os.path.exists(wal_path)
                and os.path.getsize(wal_path) > 16
            ):
                raise StorageError(
                    f"{data_dir} has a non-empty WAL; open it with "
                    "durability='wal' so committed records are not lost"
                )
            self.wal = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def ephemeral(
        cls, root: str, page_size: int = DEFAULT_PAGE_SIZE
    ) -> "FileDisk":
        """A throwaway ``durability="none"`` disk in a fresh temp dir
        under ``root``, deleted when the disk is garbage-collected.

        This is what ``REPRO_DATA_DIR`` hands to every default pager.
        """
        os.makedirs(root, exist_ok=True)
        path = tempfile.mkdtemp(prefix="pager-", dir=root)
        disk = cls(path, page_size=page_size, durability="none")
        disk._finalizer = weakref.finalize(
            disk, _release, disk._h, None, path)
        return disk

    # ------------------------------------------------------------------
    # header + free chain
    # ------------------------------------------------------------------
    def _pack_header(self) -> bytes:
        body = _HEADER.pack(
            _MAGIC, _VERSION, 0, self.page_size, self._next_id,
            len(self._free), self._generation,
            self.checkpoint_seq, b"\0" * 24,
        )
        return body + _U32.pack(zlib.crc32(body))

    def _write_header(self, fsync: bool = False) -> None:
        slot = self._generation % 2
        os.pwrite(self._h.fd, self._pack_header(), slot * _SLOT_SIZE)
        if fsync:
            os.fsync(self._h.fd)

    def _load_header(self) -> None:
        best = None
        for slot in (0, 1):
            raw = os.pread(self._h.fd, _SLOT_SIZE, slot * _SLOT_SIZE)
            if len(raw) < _SLOT_SIZE:
                continue
            body, (crc,) = raw[:60], _U32.unpack(raw[60:])
            if zlib.crc32(body) != crc:
                continue
            magic, version, _, psize, next_id, free_count, \
                generation, ckpt_seq, _pad = _HEADER.unpack(body)
            if magic != _MAGIC or version != _VERSION:
                continue
            if best is None or generation > best[0]:
                best = (generation, psize, next_id, free_count, ckpt_seq)
        if best is None:
            raise RecoveryError(f"{self.path}: no valid header slot")
        generation, psize, next_id, free_count, ckpt_seq = best
        if psize != self.page_size:
            raise StorageError(
                f"{self.path}: page size {psize} != requested "
                f"{self.page_size}")
        self._generation = generation
        self._next_id = next_id
        self.checkpoint_seq = ckpt_seq
        self._free = self._read_free_list(generation, free_count)
        self._allocated = set(range(next_id)) - set(self._free)

    def _free_path(self, generation: int) -> str:
        return os.path.join(self.data_dir, FREE_FILES[generation % 2])

    def _write_free_list(self, generation: int) -> None:
        """Durably write the free stack (bottom first) to the slot file
        of ``generation``'s parity. Ping-pong like the header: the slot
        the *current* generation reads stays intact until the header
        flips, so a crash mid-checkpoint never corrupts it."""
        body = struct.pack(f"<{len(self._free)}I", *self._free)
        head = _FREE_HEADER.pack(_FREE_MAGIC, len(self._free), generation)
        blob = head + _U32.pack(zlib.crc32(head + body)) + body
        fd = os.open(self._free_path(generation),
                     os.O_RDWR | os.O_CREAT, 0o644)
        try:
            os.ftruncate(fd, 0)
            os.pwrite(fd, blob, 0)
            os.fsync(fd)
        finally:
            os.close(fd)

    def _read_free_list(self, generation: int, count: int) -> list[int]:
        """Inverse of :meth:`_write_free_list` for the given generation."""
        path = self._free_path(generation)
        if not os.path.exists(path):
            if count == 0:
                return []
            raise RecoveryError(
                f"{self.path}: header expects {count} free pages but "
                f"{path} is missing")
        with open(path, "rb") as fh:
            raw = fh.read()
        head_size = _FREE_HEADER.size + 4
        if len(raw) < head_size:
            raise RecoveryError(f"{path}: short free-list header")
        magic, stored_count, stored_gen = _FREE_HEADER.unpack(
            raw[:_FREE_HEADER.size])
        (crc,) = _U32.unpack(raw[_FREE_HEADER.size:head_size])
        body = raw[head_size:head_size + 4 * stored_count]
        if (
            magic != _FREE_MAGIC
            or len(body) != 4 * stored_count
            or zlib.crc32(raw[:_FREE_HEADER.size] + body) != crc
        ):
            raise RecoveryError(f"{path}: corrupt free-list file")
        if stored_gen != generation or stored_count != count:
            raise RecoveryError(
                f"{path}: free list is generation {stored_gen} "
                f"({stored_count} pages), header wants generation "
                f"{generation} ({count} pages)")
        return list(struct.unpack(f"<{stored_count}I", body))

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _recover(self, replay_upto: int | None) -> None:
        """Replay committed WAL batches against the checkpointed state.

        Each ALLOC is checked against a deterministic re-run of the
        allocator; a mismatch means the checkpoint and the log disagree
        and recovery refuses rather than guessing.
        """
        for batch in self.wal.replay(upto_seq=replay_upto):
            for rec_type, pid, image in batch.records:
                if rec_type == REC_ALLOC:
                    expected = self._free[-1] if self._free else self._next_id
                    if pid != expected:
                        raise RecoveryError(
                            f"{self.path}: replayed ALLOC({pid}) but the "
                            f"allocator would hand out {expected}")
                    if self._free:
                        self._free.pop()
                    else:
                        self._next_id += 1
                    self._allocated.add(pid)
                    self._overlay[pid] = bytes(self.page_size)
                elif rec_type == REC_FREE:
                    if pid not in self._allocated:
                        raise RecoveryError(
                            f"{self.path}: replayed FREE({pid}) on an "
                            "unallocated page")
                    self._allocated.discard(pid)
                    self._free.append(pid)
                    self._overlay.pop(pid, None)
                elif rec_type == REC_PAGE:
                    if pid not in self._allocated:
                        raise RecoveryError(
                            f"{self.path}: replayed PAGE({pid}) on an "
                            "unallocated page")
                    self._overlay[pid] = image

    # ------------------------------------------------------------------
    # DiskSimulator protocol
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a zeroed page; returns its page id."""
        if self._free:
            page_id = self._free.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
            if page_id >= NULL_PAGE:
                raise StorageError("page id space exhausted")
        self._allocated.add(page_id)
        if self.wal is not None:
            self.wal.append_alloc(page_id)
            self._overlay[page_id] = bytes(self.page_size)
        else:
            os.pwrite(self._h.fd, bytes(self.page_size),
                      self._offset(page_id))
        self.stats.allocations += 1
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list (typed error on double free)."""
        if page_id not in self._allocated:
            if page_id in self._free:
                raise DoubleFreeError(f"page {page_id} is already free")
            raise StorageError(f"page {page_id} is not allocated")
        if self.wal is not None:
            self.wal.append_free(page_id)
        self._allocated.discard(page_id)
        self._free.append(page_id)
        self._overlay.pop(page_id, None)
        self.stats.frees += 1

    def read_page(self, page_id: int) -> bytes:
        """Read a full page (counted as one physical read)."""
        self._require(page_id)
        self.stats.physical_reads += 1
        image = self._overlay.get(page_id)
        if image is not None:
            return image
        return self._read_raw(page_id)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write a full page image (counted as one physical write)."""
        self._require(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"page image of {len(data)} bytes on a "
                f"{self.page_size}-byte disk"
            )
        self.stats.physical_writes += 1
        if self.wal is not None:
            image = bytes(data)
            self.wal.append_page(page_id, image)
            self._overlay[page_id] = image
        else:
            os.pwrite(self._h.fd, bytes(data), self._offset(page_id))

    def is_allocated(self, page_id: int) -> bool:
        """Whether a page id refers to a live page."""
        return page_id in self._allocated

    @property
    def allocated_pages(self) -> int:
        """Number of live (allocated, not freed) pages."""
        return len(self._allocated)

    @property
    def allocated_bytes(self) -> int:
        """Total bytes held by live pages."""
        return len(self._allocated) * self.page_size

    # ------------------------------------------------------------------
    # durability points
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Make everything since the last commit durable; returns the
        commit's sequence number (0 in ``durability="none"`` mode, where
        this persists the header + free list)."""
        if self.wal is None:
            self._persist_allocator()
            return 0
        return self.wal.commit()

    def checkpoint(self) -> int:
        """Fold the overlay into the page file and reset the WAL.

        Implicitly commits first. The sequence is crash-safe at every
        step: page writes are idempotent redo, and the header flip to
        the new generation is a single fsynced 64-byte slot write — a
        crash before it leaves the old checkpoint + a replayable WAL, a
        crash after it leaves the new checkpoint (replaying the
        not-yet-reset WAL is a no-op because every batch's seq is at or
        below the header's ``checkpoint_seq``).
        """
        if self.wal is None:
            self._persist_allocator()
            return 0
        seq = self.wal.commit()
        needed = self._offset(self._next_id)
        if os.fstat(self._h.fd).st_size < needed:
            os.ftruncate(self._h.fd, needed)
        pages_done = 0
        for pid in sorted(self._overlay):
            self._maybe_crash(pages_done)
            os.pwrite(self._h.fd, self._overlay[pid], self._offset(pid))
            pages_done += 1
        self._maybe_crash(pages_done)
        os.fsync(self._h.fd)
        self._c_ckpt_pages.inc(pages_done)
        self._generation += 1
        self.checkpoint_seq = seq
        self._write_free_list(self._generation)
        self._write_header(fsync=True)
        self.wal.reset()
        self._overlay.clear()
        self._mapped = 0  # force a remap over the grown file
        return seq

    def close(self) -> None:
        """Release file handles. ``durability="none"`` persists the
        header + free list first (its only durability point); WAL mode
        persists nothing here — that is what commit/checkpoint are for.
        """
        if self._h.fd is not None and self.wal is None:
            self._persist_allocator()
        _release(self._h, self.wal)

    def _persist_allocator(self) -> None:
        """``durability="none"`` durability point: grow the file to
        cover every allocated page, then flip to a new generation so the
        free-list slot ping-pongs (a torn write hits the slot the old
        header does not read)."""
        needed = self._offset(self._next_id)
        if os.fstat(self._h.fd).st_size < needed:
            os.ftruncate(self._h.fd, needed)
        os.fsync(self._h.fd)
        self._generation += 1
        self._write_free_list(self._generation)
        self._write_header(fsync=True)

    def _maybe_crash(self, pages_done: int) -> None:
        if (
            self.fail_checkpoint_after is not None
            and pages_done >= self.fail_checkpoint_after
        ):
            self.fail_checkpoint_after = None
            raise FaultInjectedError(
                f"injected crash after {pages_done} checkpoint page "
                f"writes (before the header flip)",
                op="checkpoint", op_index=pages_done,
            )

    # ------------------------------------------------------------------
    # raw I/O
    # ------------------------------------------------------------------
    def _offset(self, page_id: int) -> int:
        return _PAGE0 + page_id * self.page_size

    def _read_raw(self, page_id: int) -> bytes:
        offset = self._offset(page_id)
        end = offset + self.page_size
        if self._h.mm is None or end > self._mapped:
            self._try_remap(end)
        mm = self._h.mm
        if mm is not None and end <= self._mapped:
            return bytes(mm[offset:end])
        data = os.pread(self._h.fd, self.page_size, offset)
        if len(data) < self.page_size:
            raise RecoveryError(
                f"{self.path}: page {page_id} extends past end of file")
        return data

    def _try_remap(self, needed_end: int) -> None:
        size = os.fstat(self._h.fd).st_size
        if size < needed_end:
            return
        if self._h.mm is not None:
            self._h.mm.close()
            self._h.mm = None
        self._h.mm = mmap.mmap(self._h.fd, size, access=mmap.ACCESS_READ)
        self._mapped = size

    def _require(self, page_id: int) -> None:
        if page_id not in self._allocated:
            raise StorageError(f"page {page_id} is not allocated")

    def __repr__(self) -> str:
        return (
            f"<FileDisk {self.data_dir!r} pages={self.allocated_pages} "
            f"durability={self.durability} gen={self._generation}>"
        )
