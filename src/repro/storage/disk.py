"""A byte-accurate simulated disk of fixed-size pages.

The paper's experiments fix the page size at 1024 bytes and every stored
value at 4 bytes. :class:`DiskSimulator` reproduces the storage substrate:
pages are real ``bytes`` buffers, reads return copies, writes must match
the page size exactly, and the free list recycles freed pages — so space
measurements (Figure 10) are exact byte counts.
"""

from __future__ import annotations

from repro.errors import DoubleFreeError, StorageError
from repro.storage.stats import IOStats

#: The paper's page size (Section 5).
DEFAULT_PAGE_SIZE = 1024

#: Sentinel for "no page" in serialised sibling/child pointers.
NULL_PAGE = 0xFFFFFFFF


class DiskSimulator:
    """Fixed-size page store with physical I/O counters."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 64:
            raise StorageError(f"page size {page_size} is unrealistically small")
        self.page_size = page_size
        self._pages: dict[int, bytes] = {}
        self._free: list[int] = []
        self._next_id = 0
        self.stats = IOStats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a zeroed page; returns its page id."""
        if self._free:
            page_id = self._free.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
            if page_id >= NULL_PAGE:
                raise StorageError("page id space exhausted")
        self._pages[page_id] = bytes(self.page_size)
        self.stats.allocations += 1
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list.

        Freeing a page that is already on the free list raises
        :class:`~repro.errors.DoubleFreeError` (a double free would
        corrupt a persistent free chain); freeing a page that was never
        allocated raises the generic :class:`StorageError`.
        """
        if page_id not in self._pages:
            if page_id in self._free:
                raise DoubleFreeError(f"page {page_id} is already free")
            raise StorageError(f"page {page_id} is not allocated")
        del self._pages[page_id]
        self._free.append(page_id)
        self.stats.frees += 1

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read_page(self, page_id: int) -> bytes:
        """Read a full page (counted as one physical read)."""
        self._require(page_id)
        self.stats.physical_reads += 1
        return self._pages[page_id]

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write a full page image (counted as one physical write)."""
        self._require(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"page image of {len(data)} bytes on a "
                f"{self.page_size}-byte disk"
            )
        self.stats.physical_writes += 1
        self._pages[page_id] = bytes(data)

    def is_allocated(self, page_id: int) -> bool:
        """Whether a page id refers to a live page."""
        return page_id in self._pages

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def allocated_pages(self) -> int:
        """Number of live (allocated, not freed) pages."""
        return len(self._pages)

    @property
    def allocated_bytes(self) -> int:
        """Total bytes held by live pages — Figure 10's space metric."""
        return len(self._pages) * self.page_size

    def _require(self, page_id: int) -> None:
        if page_id not in self._pages:
            raise StorageError(f"page {page_id} is not allocated")

    def __repr__(self) -> str:
        return (
            f"<DiskSimulator pages={self.allocated_pages} "
            f"page_size={self.page_size}>"
        )
