"""Randomized + adversarial workloads for the differential runner.

Tuple mix: the paper's bounded polygons plus everything it glosses over —
unbounded wedges/slabs/half-planes (±∞ envelopes), single-point tuples
(degenerate polygons whose TOP and BOT coincide), and *empty* tuples
(satisfiable-looking atom systems with empty extensions, which the index
must skip and the oracle must treat as vacuous).

Query mix: random half-planes, plus queries engineered at the exact
decision boundaries — slopes drawn from the predefined set ``S`` (the
restricted-technique fast path), slopes at dual-envelope breakpoints,
and intercepts placed exactly at ``TOP^P(s)`` / ``BOT^P(s)`` of sampled
tuples (and ±ε around them), where Proposition 2.2's comparisons flip.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

from repro.constraints.linear import LinearConstraint
from repro.constraints.relation import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.core.query import ALL, EXIST, HalfPlaneQuery
from repro.geometry import dual
from repro.workloads.generator import polygon_tuple, unbounded_tuple
from repro.workloads.window import PAPER_WINDOW, Window

#: Boundary offsets probed around each exact TOP/BOT intercept.
_EPSILONS = (0.0, 1e-9, -1e-9, 1e-4, -1e-4)


def singleton_tuple(
    rng: random.Random, window: Window = PAPER_WINDOW
) -> GeneralizedTuple:
    """A single-point tuple (box with ``lo == hi``)."""
    x = rng.uniform(window.xmin, window.xmax)
    y = rng.uniform(window.ymin, window.ymax)
    return GeneralizedTuple.from_box((x, y), (x, y), label="singleton")


def empty_tuple(
    rng: random.Random, window: Window = PAPER_WINDOW
) -> GeneralizedTuple:
    """An empty tuple: two parallel half-planes facing away from each other."""
    slope = rng.uniform(-2.0, 2.0)
    b = rng.uniform(window.ymin, window.ymax)
    gap = rng.uniform(0.5, 5.0)
    return GeneralizedTuple(
        [
            LinearConstraint.from_slope_intercept(slope, b + gap, ">="),
            LinearConstraint.from_slope_intercept(slope, b, "<="),
        ],
        label="empty",
    )


def bounded_tuple(
    rng: random.Random, window: Window = PAPER_WINDOW
) -> GeneralizedTuple:
    """One bounded polygon tuple (redraws until construction succeeds)."""
    while True:
        center = (
            rng.uniform(window.xmin, window.xmax),
            rng.uniform(window.ymin, window.ymax),
        )
        target_area = window.area * rng.uniform(0.01, 0.10)
        t = polygon_tuple(rng, center, target_area)
        if t is not None:
            return t


def make_tuples(
    rng: random.Random,
    n: int,
    *,
    unbounded_fraction: float = 0.2,
    singleton_fraction: float = 0.1,
    empty_fraction: float = 0.05,
    window: Window = PAPER_WINDOW,
) -> list[GeneralizedTuple]:
    """``n`` tuples in the adversarial mix (remainder bounded polygons)."""
    out: list[GeneralizedTuple] = []
    for _ in range(n):
        roll = rng.random()
        if roll < empty_fraction:
            out.append(empty_tuple(rng, window))
        elif roll < empty_fraction + singleton_fraction:
            out.append(singleton_tuple(rng, window))
        elif roll < empty_fraction + singleton_fraction + unbounded_fraction:
            out.append(unbounded_tuple(rng, window))
        else:
            out.append(bounded_tuple(rng, window))
    return out


def as_relation(
    tuples: Iterable[GeneralizedTuple], name: str = "fuzz"
) -> GeneralizedRelation:
    """Wrap a tuple list in a relation (ids assigned in order)."""
    relation = GeneralizedRelation(name=name)
    for t in tuples:
        relation.add(t)
    return relation


def _candidate_slopes(
    relation: GeneralizedRelation,
    slopes: Sequence[float],
    rng: random.Random,
    extra_random: int = 4,
) -> list[float]:
    """Predefined slopes, envelope breakpoints, and a few random ones."""
    out = list(slopes)
    for _tid, t in relation:
        poly = t.extension()
        if poly.is_empty or poly.dimension != 2:
            continue
        if poly.is_bounded and rng.random() < 0.5:
            profile = dual.top_profile_2d(poly)
            out.extend(profile.breakpoints[:2])
    out.extend(rng.uniform(-3.0, 3.0) for _ in range(extra_random))
    return out


def boundary_queries(
    relation: GeneralizedRelation,
    slopes: Sequence[float],
    rng: random.Random,
    budget: int = 32,
) -> list[HalfPlaneQuery]:
    """Queries whose intercepts sit exactly at (and ±ε around) envelope
    values of sampled tuples."""
    pool = _candidate_slopes(relation, slopes, rng)
    tuples = [t for _tid, t in relation]
    queries: list[HalfPlaneQuery] = []
    attempts = 0
    while len(queries) < budget and attempts < budget * 8:
        attempts += 1
        t = rng.choice(tuples)
        s = rng.choice(pool)
        poly = t.extension()
        if poly.is_empty:
            continue
        value = dual.top(poly, s) if rng.random() < 0.5 else dual.bot(poly, s)
        if value is None or not math.isfinite(value):
            continue
        eps = rng.choice(_EPSILONS)
        queries.append(
            HalfPlaneQuery(
                rng.choice((ALL, EXIST)),
                s,
                value + eps,
                rng.choice((">=", "<=")),
            )
        )
    return queries


def random_queries(
    rng: random.Random,
    n: int,
    slopes: Sequence[float],
    window: Window = PAPER_WINDOW,
) -> list[HalfPlaneQuery]:
    """Uniform half-plane queries; half use predefined slopes (exact path)."""
    queries = []
    for _ in range(n):
        s = (
            rng.choice(list(slopes))
            if slopes and rng.random() < 0.5
            else rng.uniform(-3.0, 3.0)
        )
        b = rng.uniform(window.ymin * 2.0, window.ymax * 2.0)
        queries.append(
            HalfPlaneQuery(
                rng.choice((ALL, EXIST)), s, b, rng.choice((">=", "<="))
            )
        )
    return queries
