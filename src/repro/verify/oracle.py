"""A brute-force geometric oracle, independent of every index structure.

Answers ALL/EXIST half-plane selections straight from the *constraint
representation* of each generalized tuple by linear programming: the
supremum/infimum of ``x_d - s·x'`` over the raw atom system is computed
with HiGHS (``scipy.optimize.linprog``), and Proposition 2.2 is applied
to the LP value with the same tolerance the production oracle uses.

Nothing here touches ``repro.geometry``'s vertex/ray engine, the dual
profiles, the B+-trees or the heap — the code path shares only the atom
dataclasses — so an agreement between this oracle and an index path is
evidence about the *geometry*, not about two copies of one bug
(quantifier-elimination-style evaluation as the reference, cf.
arXiv:1110.2196).

Floating-point caveat: HiGHS solves to ~1e-9; the differential runner
therefore treats per-tuple differences *within a small band of the
decision boundary* as tolerance artifacts, not disagreements (see
``repro.verify.differential``). Differences away from the boundary are
real bugs.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.constraints.theta import Theta
from repro.constraints.tuples import GeneralizedTuple
from repro.core.query import ALL, EXIST, HalfPlaneQuery
from repro.errors import QueryError, VerificationError
from repro.geometry.predicates import ORACLE_TOL


def _ineq_rows(
    atoms: Iterable,
) -> tuple[list[tuple[float, ...]], list[float]]:
    """The atom system as ``A x <= b`` rows (weak inequalities only)."""
    a_rows: list[tuple[float, ...]] = []
    b_rows: list[float] = []
    for atom in atoms:
        if atom.theta is Theta.LE:
            a_rows.append(atom.coeffs)
            b_rows.append(-atom.const)
        elif atom.theta is Theta.GE:
            a_rows.append(tuple(-a for a in atom.coeffs))
            b_rows.append(atom.const)
        else:  # pragma: no cover - normalize() closes strict operators
            raise VerificationError(
                f"non-weak operator {atom.theta} in oracle input"
            )
    return a_rows, b_rows


def lp_feasible(atoms: Sequence) -> bool:
    """LP feasibility of a conjunction of weak linear constraints."""
    from scipy.optimize import linprog

    a_rows, b_rows = _ineq_rows(atoms)
    if not a_rows:
        return True
    dim = len(a_rows[0])
    result = linprog(
        c=np.zeros(dim),
        A_ub=np.array(a_rows, dtype=float),
        b_ub=np.array(b_rows, dtype=float),
        bounds=[(None, None)] * dim,
        method="highs",
    )
    if result.status == 2:
        return False
    if result.success or result.status == 3:
        return True
    raise VerificationError(  # pragma: no cover - numerical trouble
        f"feasibility LP failed: {result.message}"
    )


def lp_support(atoms: Sequence, objective: Sequence[float]) -> float | None:
    """``sup { objective·x }`` over the atom system, by LP.

    ``None`` when the system is infeasible, ``math.inf`` when unbounded
    in the objective direction.
    """
    from scipy.optimize import linprog

    a_rows, b_rows = _ineq_rows(atoms)
    if not a_rows:
        return math.inf if any(v != 0.0 for v in objective) else 0.0
    result = linprog(
        c=-np.asarray(objective, dtype=float),
        A_ub=np.array(a_rows, dtype=float),
        b_ub=np.array(b_rows, dtype=float),
        bounds=[(None, None)] * len(a_rows[0]),
        method="highs",
    )
    if result.status == 2:  # infeasible
        return None
    if result.status == 3:  # unbounded
        return math.inf
    if not result.success:  # pragma: no cover - numerical trouble
        raise VerificationError(f"support LP failed: {result.message}")
    return float(-result.fun)


class BruteForceOracle:
    """LP-backed reference answers for half-plane ALL/EXIST selections.

    Per (tuple, slope) the oracle solves two LPs — max and min of
    ``x_d - s·x'`` — yielding an index-free ``TOP``/``BOT`` pair, then
    applies Proposition 2.2 with :data:`~repro.geometry.predicates.ORACLE_TOL`.
    Values are memoised (tuples are immutable and hashable).

    Example::

        >>> from repro import parse_tuple
        >>> from repro.verify.oracle import BruteForceOracle
        >>> oracle = BruteForceOracle()
        >>> t = parse_tuple("y >= x and y <= 4 and x >= 0")
        >>> oracle.top(t, 0.0), oracle.bot(t, 0.0)
        (4.0, 0.0)
        >>> oracle.exist(t, 0.0, 2.0, ">="), oracle.all_(t, 0.0, 2.0, ">=")
        (True, False)
    """

    def __init__(self, tol: float = ORACLE_TOL) -> None:
        self.tol = tol
        self._cache: dict[tuple[GeneralizedTuple, float, bool], float | None] = {}
        self._feasible: dict[GeneralizedTuple, bool] = {}

    # ------------------------------------------------------------------
    # LP-backed TOP / BOT
    # ------------------------------------------------------------------
    def is_satisfiable(self, t: GeneralizedTuple) -> bool:
        """Feasibility of the tuple's atom system (one LP, memoised)."""
        if t.syntactically_false:
            return False
        if t not in self._feasible:
            self._feasible[t] = lp_feasible(t.constraints)
        return self._feasible[t]

    def top(self, t: GeneralizedTuple, slope: float) -> float | None:
        """``TOP^P(slope)`` by LP: ``sup { x_d - s·x' }``."""
        return self._extremum(t, float(slope), upper=True)

    def bot(self, t: GeneralizedTuple, slope: float) -> float | None:
        """``BOT^P(slope)`` by LP: ``inf { x_d - s·x' }``."""
        return self._extremum(t, float(slope), upper=False)

    def _extremum(
        self, t: GeneralizedTuple, slope: float, upper: bool
    ) -> float | None:
        key = (t, slope, upper)
        if key not in self._cache:
            if not self.is_satisfiable(t):
                self._cache[key] = None
            else:
                d = t.dimension
                # objective x_d - s·x' (2-D: (-s, 1)); BOT minimises, i.e.
                # maximises the negation and flips the sign afterwards.
                direction = tuple(-slope if i < d - 1 else 1.0 for i in range(d))
                if not upper:
                    direction = tuple(-v for v in direction)
                value = lp_support(t.constraints, direction)
                if value is not None and not upper:
                    value = -value
                self._cache[key] = value
        return self._cache[key]

    # ------------------------------------------------------------------
    # Proposition 2.2 predicates
    # ------------------------------------------------------------------
    def exist(
        self, t: GeneralizedTuple, slope: float, intercept: float, theta
    ) -> bool:
        """EXIST(q(θ), t): the extension meets ``x_d θ s·x' + b``."""
        theta = Theta.from_symbol(theta) if isinstance(theta, str) else theta
        if not self.is_satisfiable(t):
            return False
        if theta is Theta.GE:
            top = self.top(t, slope)
            assert top is not None
            return intercept <= top + self.tol
        bot = self.bot(t, slope)
        assert bot is not None
        return intercept >= bot - self.tol

    def all_(
        self, t: GeneralizedTuple, slope: float, intercept: float, theta
    ) -> bool:
        """ALL(q(θ), t): the extension is contained in ``x_d θ s·x' + b``."""
        theta = Theta.from_symbol(theta) if isinstance(theta, str) else theta
        if not self.is_satisfiable(t):
            return True  # vacuous containment
        if theta is Theta.GE:
            bot = self.bot(t, slope)
            assert bot is not None
            if bot == -math.inf:
                return False
            return intercept <= bot + self.tol
        top = self.top(t, slope)
        assert top is not None
        if top == math.inf:
            return False
        return intercept >= top - self.tol

    def holds(self, query: HalfPlaneQuery, t: GeneralizedTuple) -> bool:
        """The query predicate on one tuple."""
        if query.query_type == EXIST:
            return self.exist(t, query.slope_2d, query.intercept, query.theta)
        if query.query_type == ALL:
            return self.all_(t, query.slope_2d, query.intercept, query.theta)
        raise QueryError(f"unknown query type {query.query_type!r}")

    def answer(self, relation, query: HalfPlaneQuery) -> set[int]:
        """Reference answer set over a relation (or any id→tuple pairs)."""
        return {tid for tid, t in relation if self.holds(query, t)}

    def boundary_distance(
        self, query: HalfPlaneQuery, t: GeneralizedTuple
    ) -> float:
        """|intercept − deciding support value| for the waiver band.

        ``inf`` when the deciding value is infinite or the tuple is empty
        (those decisions are sign-based, not tolerance-based).
        """
        if not self.is_satisfiable(t):
            return math.inf
        use_top = (
            query.query_type == EXIST and query.theta is Theta.GE
        ) or (query.query_type == ALL and query.theta is Theta.LE)
        value = (
            self.top(t, query.slope_2d)
            if use_top
            else self.bot(t, query.slope_2d)
        )
        assert value is not None
        if not math.isfinite(value):
            return math.inf
        return abs(query.intercept - value)
