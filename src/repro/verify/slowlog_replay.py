"""Replay slow-query-log entries against their recorded engine.

A :class:`~repro.obs.slowlog.SlowLogEntry` carries everything needed to
re-ask its question after the fact: the query (the fuzzer's
``query_to_json`` atom form), the engine identity at answer time
(data dir, catalog commit seq / generation, slope-set hash), the answer
fingerprint (id count + digest) and the per-query accounting columns.
Those columns — candidates, false hits, accepted-without-refinement,
refinement pages — are deliberately batch-independent (a query answers
with the same counts alone or coalesced into a 64-query batch), so a
*cold single-query replay* can compare them strictly against what the
server recorded under load.

The replay speaks the differential fuzzer's repro dialect: a payload
with ``"kind": "slowlog"`` round-trips through
:func:`repro.verify.differential.write_repro` /
:func:`~repro.verify.differential.replay_repro`, and findings use the
same ``{"kind": ...}`` shape, so ``repro fuzz --replay`` and ``repro
slowlog --replay`` are two doors into one machine.

An empty findings list means the entry replayed bit-identically:
same answer ids (by digest and count), same technique, same accounting.
"""

from __future__ import annotations

import json

from repro.obs.slowlog import SlowLogEntry, answer_digest, slope_set_hash
from repro.storage.checkpoint import open_engine, read_catalog

#: Accounting counters compared strictly on replay (batch-independent).
ACCOUNTING_FIELDS = (
    "candidates",
    "false_hits",
    "accepted_without_refinement",
    "refinement_pages",
)


def entry_to_repro(entry: SlowLogEntry, data_dir: str | None = None) -> dict:
    """The repro-file payload for one slow-log entry.

    ``data_dir`` overrides the engine location recorded in the entry
    (the log may have been copied off the serving host).
    """
    payload = {
        "kind": "slowlog",
        "entry": entry.to_json(),
    }
    resolved = data_dir or entry.engine.get("data_dir")
    if resolved:
        payload["data_dir"] = resolved
    return payload


def replay_slowlog_case(data: dict) -> list[dict]:
    """The :func:`~repro.verify.differential.replay_repro` branch for
    ``"kind": "slowlog"`` payloads."""
    entry = SlowLogEntry.from_json(data["entry"])
    return replay_entry(
        entry,
        data_dir=data.get("data_dir"),
        columnar=data.get("columnar"),
    )


def replay_entry(
    entry: SlowLogEntry,
    data_dir: str | None = None,
    columnar: bool | None = None,
    engine=None,
) -> list[dict]:
    """Re-run one entry's query cold; return divergence findings.

    The engine is reopened from ``data_dir`` (or the entry's recorded
    one) unless an already-open ``engine`` is injected. Identity checks
    run first: a slope-hash or catalog mismatch is reported as
    ``slowlog-engine-mismatch`` and the answer comparison still runs —
    a divergence on a mismatched engine is expected, and the finding
    says why.
    """
    from repro.verify.differential import query_from_json

    findings: list[dict] = []
    if entry.query is None:
        return [{"kind": "slowlog-not-replayable", "op": entry.op}]
    resolved = data_dir or entry.engine.get("data_dir")
    owns_engine = False
    if engine is None:
        if not resolved:
            return [{
                "kind": "slowlog-not-replayable",
                "reason": "no data_dir recorded or given "
                          "(in-memory engines cannot be reopened)",
            }]
        engine = open_engine(resolved, columnar=columnar)
        owns_engine = True
    try:
        planner = engine.planners[0] if hasattr(engine, "planners") \
            else engine
        live_hash = slope_set_hash(planner.index.slopes)
        recorded_hash = entry.engine.get("slope_hash")
        if recorded_hash and live_hash != recorded_hash:
            findings.append({
                "kind": "slowlog-engine-mismatch",
                "field": "slope_hash",
                "recorded": recorded_hash,
                "live": live_hash,
            })
        if resolved and entry.engine.get("commit_seq") is not None:
            _payload, commit_seq, generation = read_catalog(resolved)
            for fieldname, live in (
                ("commit_seq", commit_seq),
                ("generation", generation),
            ):
                recorded = entry.engine.get(fieldname)
                if recorded is not None and recorded != live:
                    findings.append({
                        "kind": "slowlog-engine-mismatch",
                        "field": fieldname,
                        "recorded": recorded,
                        "live": live,
                    })
        query = query_from_json(entry.query)
        result = engine.query_batch([query]).results[0]
        ids = sorted(result.ids)
        recorded_answer = entry.answer or {}
        if recorded_answer:
            digest = answer_digest(ids)
            if (
                digest != recorded_answer.get("digest")
                or len(ids) != recorded_answer.get("count")
            ):
                findings.append({
                    "kind": "slowlog-answer-divergence",
                    "trace_id": entry.trace_id,
                    "recorded": dict(recorded_answer),
                    "live": {"count": len(ids), "digest": digest},
                })
        if entry.technique and result.technique != entry.technique:
            findings.append({
                "kind": "slowlog-technique-changed",
                "recorded": entry.technique,
                "live": result.technique,
            })
        recorded_acc = {
            k: entry.accounting[k]
            for k in ACCOUNTING_FIELDS if k in entry.accounting
        }
        live_acc = {
            k: getattr(result, k) for k in recorded_acc
        }
        if recorded_acc != live_acc:
            findings.append({
                "kind": "slowlog-accounting-divergence",
                "trace_id": entry.trace_id,
                "recorded": recorded_acc,
                "live": live_acc,
            })
    finally:
        if owns_engine:
            _close(engine)
    return findings


def _close(engine) -> None:
    from repro.serve.server import _close_engine

    _close_engine(engine)


def load_entry(path: str, index: int = 0, by: str = "latency") -> SlowLogEntry:
    """Load the ``index``-th worst entry from a slow-log artifact.

    Accepts either the server's JSONL dump (one entry per line) or a
    single repro-format JSON file with ``"kind": "slowlog"``.
    """
    from repro.obs.slowlog import load_jsonl

    # Both formats start with "{": a repro file is one JSON document, a
    # JSONL dump has one document per line (so whole-file parse fails).
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        if data.get("kind") == "slowlog":
            return SlowLogEntry.from_json(data["entry"])
        if "trace_id" in data:  # a single-entry JSONL dump
            return SlowLogEntry.from_json(data)
        raise ValueError(f"{path}: not a slowlog repro file")
    entries = load_jsonl(path)
    if not entries:
        raise ValueError(f"{path}: empty slow-query log")
    key = {
        "latency": lambda e: e.latency_s,
        "pages": lambda e: e.pages,
    }[by]
    ranked = sorted(entries, key=key, reverse=True)
    if not 0 <= index < len(ranked):
        raise ValueError(
            f"entry index {index} out of range (log has {len(ranked)})")
    return ranked[index]
