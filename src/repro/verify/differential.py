"""The differential runner: every query path against two oracles.

One round builds a fresh workload (:mod:`repro.verify.workload`) and
answers every query through each production path —

* restricted-slope B+-tree sweeps / T1 app-queries (a T1 planner),
* T2 two-sweep interior approximation (a T2 planner),
* the R+-tree baseline (bounded-only rounds),
* the vectorized :class:`~repro.geometry.vectorized.DualSurface`,
* the :class:`~repro.exec.BatchExecutor`, cache cold *and* hot,
* the :class:`~repro.shard.ShardedDualIndex` (2 shards), direct and
  batched — sharded answers must be bit-identical to unsharded,
* the explain-instrumented path (:func:`repro.obs.explain.traced_answer`
  — the same query under a trace with checked exclusive/inclusive
  attribution; observability must never change answers) —

comparing each answer set **strictly** against the exact geometric
oracle (:func:`repro.geometry.predicates.evaluate_relation`, minus the
tuples the index legitimately skips), and comparing the geometric oracle
against the LP-backed :class:`~repro.verify.oracle.BruteForceOracle`
with a small waiver band around decision boundaries (HiGHS solves to
~1e-9; a query engineered to sit *exactly* on ``TOP^P(s)`` may land on
either side of ``ORACLE_TOL`` — those per-tuple flips are counted as
``fuzz_waivers``, not bugs). Mutation rounds interleave inserts/deletes
on a dynamic index; fault rounds arm the fault-injection pager and
assert a clean typed error plus untouched state; recovery rounds build
a durable engine on a WAL-mode :class:`~repro.storage.FileDisk`, crash
it mid-WAL-append or mid-checkpoint, reopen the directory, and hold the
recovered engine to the same oracle over the committed live set.

Any finding is minimised by greedy delta debugging (drop tuples, then
queries, re-running the check) and written as a replayable JSON repro;
:func:`replay_repro` re-executes one.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.constraints.linear import LinearConstraint
from repro.constraints.tuples import GeneralizedTuple
from repro.core.planner import DualIndexPlanner
from repro.core.query import EXIST, HalfPlaneQuery
from repro.errors import FaultInjectedError, ReproError, VerificationError
from repro.geometry.predicates import evaluate_relation
from repro.geometry.vectorized import DualSurface
from repro.obs import trace as obs
from repro.obs.explain import traced_answer
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.rtree.planner import RTreePlanner
from repro.shard.sharded import ShardedDualIndex
from repro.storage.checkpoint import open_planner
from repro.storage.disk import DiskSimulator
from repro.storage.filepager import FileDisk
from repro.storage.pager import Pager
from repro.verify import workload
from repro.verify.faults import CrashPoint, FaultInjectingPager, arm_crash
from repro.verify.invariants import (
    check_buffer_pool,
    check_dual_index,
    check_envelopes,
)
from repro.verify.oracle import BruteForceOracle

#: Relative half-width of the LP-vs-geometric waiver band: per-tuple
#: disagreements whose deciding TOP/BOT value lies within this distance
#: of the query intercept are tolerance artifacts, not bugs.
BOUNDARY_BAND = 1e-4

#: Default predefined slope set for fuzz rounds.
DEFAULT_SLOPES = (-2.0, -0.5, 0.5, 2.0)


# ----------------------------------------------------------------------
# configuration / report
# ----------------------------------------------------------------------
@dataclass
class FuzzConfig:
    """Knobs of one fuzz run; everything derives from ``seed``."""

    seed: int = 0
    budget_seconds: float = 5.0
    max_rounds: int = 10_000
    n_tuples: int = 14
    queries_per_round: int = 12
    slopes: tuple[float, ...] = DEFAULT_SLOPES
    unbounded_fraction: float = 0.2
    singleton_fraction: float = 0.1
    empty_fraction: float = 0.05
    #: Every Nth round restricts to bounded tuples and adds the R+-tree.
    rtree_every: int = 2
    #: Every Nth round runs insert/delete interleavings on a dynamic index.
    mutation_every: int = 4
    #: Every Nth round arms the fault-injection pager.
    fault_every: int = 5
    #: Every Nth round crashes a durable engine mid-write and recovers it
    #: (prime, so it rarely collides with the other specialised rounds).
    recovery_every: int = 7
    check_invariants: bool = True
    out_dir: str = "fuzz-repros"


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    rounds: int = 0
    queries: int = 0
    comparisons: int = 0
    waivers: int = 0
    faults_injected: int = 0
    crashes_recovered: int = 0
    disagreements: list = field(default_factory=list)
    repro_paths: list = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every path agreed on every query."""
        return not self.disagreements

    def summary(self) -> str:
        """One human line for CLI / CI logs."""
        verdict = "OK" if self.ok else f"{len(self.disagreements)} DISAGREEMENTS"
        return (
            f"fuzz seed={self.seed}: {self.rounds} rounds, "
            f"{self.queries} queries, {self.comparisons} comparisons, "
            f"{self.waivers} boundary waivers, "
            f"{self.faults_injected} faults injected, "
            f"{self.crashes_recovered} crashes recovered — {verdict} "
            f"({self.elapsed:.1f}s)"
        )


# ----------------------------------------------------------------------
# JSON (de)serialisation for repro files
# ----------------------------------------------------------------------
def tuple_to_json(t: GeneralizedTuple) -> dict:
    """A tuple's atom system as plain JSON."""
    return {
        "label": t.label,
        "atoms": [
            {
                "coeffs": list(a.coeffs),
                "const": a.const,
                "theta": a.theta.value,
            }
            for a in t.constraints
        ],
    }


def tuple_from_json(data: dict) -> GeneralizedTuple:
    """Inverse of :func:`tuple_to_json`."""
    return GeneralizedTuple(
        [
            LinearConstraint(tuple(a["coeffs"]), a["const"], a["theta"])
            for a in data["atoms"]
        ],
        label=data.get("label"),
    )


def query_to_json(q: HalfPlaneQuery) -> dict:
    """A 2-D half-plane query as plain JSON."""
    return {
        "query_type": q.query_type,
        "slope": q.slope_2d,
        "intercept": q.intercept,
        "theta": q.theta.value,
    }


def query_from_json(data: dict) -> HalfPlaneQuery:
    """Inverse of :func:`query_to_json`."""
    return HalfPlaneQuery(
        data["query_type"], data["slope"], data["intercept"], data["theta"]
    )


def write_repro(payload: dict, out_dir: str, stem: str) -> str:
    """Write one repro JSON, returning its path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{stem}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


# ----------------------------------------------------------------------
# the core check: one (tuples, queries) case through every path
# ----------------------------------------------------------------------
def run_checks(
    tuples: Sequence[GeneralizedTuple],
    queries: Sequence[HalfPlaneQuery],
    slopes: Sequence[float] = DEFAULT_SLOPES,
    include_rtree: bool = False,
    check_invariants: bool = True,
    oracle: BruteForceOracle | None = None,
    registry: MetricsRegistry | None = None,
) -> list[dict]:
    """Cross-check one case; returns JSON-serialisable findings (``[]`` = ok).

    The strict reference for every index path is the exact geometric
    oracle minus legitimately skipped (empty) tuples; the LP oracle is
    compared with the :data:`BOUNDARY_BAND` waiver.
    """
    registry = registry if registry is not None else get_registry()
    relation = workload.as_relation(tuples)
    satisfiable = {tid: t for tid, t in relation if t.is_satisfiable()}
    skipped = {tid for tid, _ in relation} - set(satisfiable)
    findings: list[dict] = []

    t1 = DualIndexPlanner.build(relation, slopes, technique="T1")
    t2 = DualIndexPlanner.build(relation, slopes, technique="T2")
    if set(t2.index.skipped) != skipped:
        findings.append(
            {
                "kind": "skip-divergence",
                "index_skipped": sorted(t2.index.skipped),
                "oracle_skipped": sorted(skipped),
            }
        )
    rtree = RTreePlanner.build(relation) if include_rtree else None
    surface = DualSurface.from_items(sorted(satisfiable.items()))
    batch_cold = t2.query_batch(list(queries))
    batch_hot = t2.query_batch(list(queries))
    sharded = ShardedDualIndex.build(relation, slopes, shards=2)
    sharded_batch = sharded.query_batch(list(queries))
    # Vectorized-vs-scalar differential: the columnar hot path must be a
    # faster arrangement of the *same* computation, so both engines are
    # registered explicitly (ignoring the REPRO_SCALAR default) and their
    # per-query answers AND accounting are required to be bit-identical.
    scalar_engine = DualIndexPlanner.build(
        relation, slopes, technique="T2", columnar=False
    )
    columnar_engine = DualIndexPlanner.build(
        relation, slopes, technique="T2", columnar=True
    )
    scalar_batch = scalar_engine.query_batch(list(queries))
    columnar_batch = columnar_engine.query_batch(list(queries))
    # Served engine: the same queries through a real localhost server
    # socket — framing, envelope validation, coalescing, and the engine
    # thread all sit between the question and the answer, and none of
    # them may change it. A dedicated planner keeps the first pass
    # genuinely cache-cold; the second pass goes through the executor's
    # result cache behind the server.
    from repro.serve.testing import ServerThread

    served_engine = DualIndexPlanner.build(relation, slopes, technique="T2")
    with ServerThread(engine=served_engine, max_delay=0.0) as server:
        client = server.client()
        try:
            served_cold = [client.query_ids(q) for q in queries]
            served_hot = [client.query_ids(q) for q in queries]
        finally:
            client.close()

    # Tuned engine: the T2 planner rebuilt under a slope set *learned*
    # from this case's own query slopes (repro.tune). Tuning is a cost
    # transformation — a learned S may change page counts, never
    # answers — so the rebuilt engine faces the same strict oracle.
    from repro.obs.slopelog import SlopeLog
    from repro.tune import learn_slopes, rebuild_planner

    tuned = None
    tune_log = SlopeLog(capacity=256)
    for q in queries:
        tune_log.record(q.slope_2d, q.query_type)
    if tune_log.count:
        tuned = rebuild_planner(
            t2, learn_slopes(tune_log.snapshot(), k=len(list(slopes)))
        )

    lp = oracle if oracle is not None else BruteForceOracle()
    comparisons = 0
    for position, q in enumerate(queries):
        geo_full = evaluate_relation(
            relation, q.query_type, q.slope_2d, q.intercept, q.theta
        )
        expected = geo_full - skipped
        answers = {
            "t1-planner": t1.query(q).ids,
            "t2-planner": t2.query(q).ids,
            "vector": surface.answer(
                q.query_type, q.slope_2d, q.intercept, q.theta
            ),
            "batch-cold": batch_cold.results[position].ids,
            "batch-hot": batch_hot.results[position].ids,
            "sharded": sharded.query(q).ids,
            "sharded-batch": sharded_batch.results[position].ids,
            "batch-scalar": scalar_batch.results[position].ids,
            "batch-columnar": columnar_batch.results[position].ids,
            "served-cold": served_cold[position],
            "served-hot": served_hot[position],
        }
        if tuned is not None:
            answers["tuned"] = tuned.query(q).ids
        comparisons += 1
        scalar_acc = _accounting(scalar_batch.results[position])
        columnar_acc = _accounting(columnar_batch.results[position])
        if scalar_acc != columnar_acc:
            findings.append(
                {
                    "kind": "accounting-divergence",
                    "query": query_to_json(q),
                    "scalar": scalar_acc,
                    "columnar": columnar_acc,
                }
            )
        if obs.current() is None:
            # Explain-instrumented path: the same query under a trace
            # with checked attribution must never change the answer
            # (skipped when a trace is already active — they don't nest).
            answers["explain"] = traced_answer(t2, q).ids
        if rtree is not None:
            answers["rtree"] = rtree.query(q).ids
        for path, got in answers.items():
            comparisons += 1
            if got != expected:
                findings.append(
                    {
                        "kind": "path-divergence",
                        "path": path,
                        "query": query_to_json(q),
                        "missing": sorted(expected - got),
                        "extra": sorted(got - expected),
                    }
                )
        # LP oracle vs geometry, boundary flips waived.
        comparisons += 1
        lp_ids = lp.answer(relation, q)
        for tid in geo_full ^ lp_ids:
            distance = (
                lp.boundary_distance(q, satisfiable[tid])
                if tid in satisfiable
                else 0.0
            )
            if tid in skipped or distance <= BOUNDARY_BAND * max(
                1.0, abs(q.intercept)
            ):
                registry.counter(
                    "fuzz_waivers", "LP-vs-geometric boundary waivers"
                ).inc()
                _WAIVERS.append(1)
            else:
                findings.append(
                    {
                        "kind": "oracle-divergence",
                        "query": query_to_json(q),
                        "tuple_id": tid,
                        "in_geometric": tid in geo_full,
                        "in_lp": tid in lp_ids,
                        "boundary_distance": distance,
                    }
                )

    comparisons += 1
    if (
        scalar_batch.io.logical_reads != columnar_batch.io.logical_reads
        or scalar_batch.io.logical_writes != columnar_batch.io.logical_writes
    ):
        findings.append(
            {
                "kind": "accounting-divergence",
                "scope": "batch",
                "scalar": {
                    "logical_reads": scalar_batch.io.logical_reads,
                    "logical_writes": scalar_batch.io.logical_writes,
                },
                "columnar": {
                    "logical_reads": columnar_batch.io.logical_reads,
                    "logical_writes": columnar_batch.io.logical_writes,
                },
            }
        )

    sharded.close()
    if check_invariants:
        try:
            check_dual_index(t2.index)
            check_buffer_pool(t2.index.pager.buffer)
            for t in satisfiable.values():
                check_envelopes(t)
        except VerificationError as exc:
            findings.append({"kind": "invariant", "message": str(exc)})

    _COMPARISONS.append(comparisons)
    return findings


def _accounting(result) -> dict:
    """The per-query counters the scalar/columnar engines must agree on."""
    return {
        "candidates": result.candidates,
        "false_hits": result.false_hits,
        "duplicates": result.duplicates,
        "accepted_without_refinement": result.accepted_without_refinement,
        "refinement_pages": result.refinement_pages,
        "logical_reads": result.io.logical_reads,
        "logical_writes": result.io.logical_writes,
    }


#: Side-channel tallies run_checks leaves for the runner (reset per call
#: site); module-level so minimization replays don't need plumbing.
_COMPARISONS: list[int] = []
_WAIVERS: list[int] = []


def _drain(counter: list[int]) -> int:
    total = sum(counter)
    counter.clear()
    return total


# ----------------------------------------------------------------------
# mutation rounds: insert/delete interleavings on a dynamic index
# ----------------------------------------------------------------------
def mutation_round(
    rng: random.Random,
    slopes: Sequence[float],
    n_tuples: int,
    n_queries: int,
    check_invariants: bool = True,
) -> list[dict]:
    """Interleave deletes/inserts with queries on a dynamic index.

    After every mutation step the planner and its batch executor must
    match the geometric oracle over the *live* tuple set, and the index
    version must have advanced (stale cached answers are the regression
    this guards).
    """
    tuples = workload.make_tuples(
        rng, n_tuples, unbounded_fraction=0.15, singleton_fraction=0.1,
        empty_fraction=0.0,
    )
    relation = workload.as_relation(tuples)
    planner = DualIndexPlanner.build(
        relation, slopes, technique="T2", dynamic=True
    )
    live = dict(iter(relation))
    next_tid = max(live) + 1
    queries = workload.random_queries(rng, n_queries, slopes)
    findings: list[dict] = []
    for _step in range(3):
        version_before = planner.index.version
        for tid in rng.sample(sorted(live), k=min(2, max(0, len(live) - 1))):
            planner.delete(tid)
            del live[tid]
        for _ in range(2):
            t = workload.bounded_tuple(rng)
            planner.insert(next_tid, t)
            live[next_tid] = t
            next_tid += 1
        if planner.index.version <= version_before:
            findings.append(
                {
                    "kind": "version-not-bumped",
                    "before": version_before,
                    "after": planner.index.version,
                }
            )
        pairs = sorted(live.items())
        for q in queries:
            expected = evaluate_relation(
                pairs, q.query_type, q.slope_2d, q.intercept, q.theta
            )
            direct = planner.query(q).ids
            batched = planner.query_batch([q]).results[0].ids
            for path, got in (("dynamic", direct), ("dynamic-batch", batched)):
                if got != expected:
                    findings.append(
                        {
                            "kind": "path-divergence",
                            "path": path,
                            "query": query_to_json(q),
                            "missing": sorted(expected - got),
                            "extra": sorted(got - expected),
                        }
                    )
    if check_invariants:
        try:
            check_dual_index(planner.index)
        except VerificationError as exc:
            findings.append({"kind": "invariant", "message": str(exc)})
    return findings


# ----------------------------------------------------------------------
# fault rounds / the checked-in fault demo
# ----------------------------------------------------------------------
def fault_round(
    rng: random.Random, slopes: Sequence[float], n_tuples: int = 6
) -> tuple[list[dict], int]:
    """Arm the fault pager mid-query stream; the index must surface a
    clean :class:`~repro.errors.FaultInjectedError` and keep answering
    correctly once disarmed. Returns ``(findings, faults_injected)``."""
    tuples = [workload.bounded_tuple(rng) for _ in range(n_tuples)]
    relation = workload.as_relation(tuples)
    pager = FaultInjectingPager(seed=rng.randrange(2**31))
    pager.armed = False
    planner = DualIndexPlanner.build(relation, slopes, pager=pager)
    queries = workload.random_queries(rng, 6, slopes)
    findings: list[dict] = []
    faults = 0
    for q in queries:
        pager.reads_seen = 0
        pager.fail_read_at = frozenset({rng.randrange(3)})
        pager.armed = True
        try:
            planner.query(q)
        except FaultInjectedError:
            faults += 1
        except ReproError as exc:
            findings.append(
                {
                    "kind": "unclean-fault",
                    "query": query_to_json(q),
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
        finally:
            pager.armed = False
        expected = evaluate_relation(
            relation, q.query_type, q.slope_2d, q.intercept, q.theta
        )
        got = planner.query(q).ids
        if got != expected:
            findings.append(
                {
                    "kind": "state-corruption-after-fault",
                    "query": query_to_json(q),
                    "missing": sorted(expected - got),
                    "extra": sorted(got - expected),
                }
            )
    return findings, faults


def run_fault_scenario(
    seed: int = 0, out_dir: str = "fuzz-repros"
) -> tuple[FaultInjectedError, str]:
    """The acceptance-criterion demo: inject one read fault, verify the
    clean typed error and untouched state, minimise the tuple set, and
    write a replayable fault-repro JSON. Returns ``(error, repro_path)``.
    """
    rng = random.Random(seed)
    tuples = [workload.bounded_tuple(rng) for _ in range(6)]
    query = HalfPlaneQuery(EXIST, DEFAULT_SLOPES[0], 0.0, ">=")

    def fires_cleanly(ts: Sequence[GeneralizedTuple]) -> bool:
        error, clean = _inject_once(list(ts), query, op_index=0)
        return error is not None and clean

    if not fires_cleanly(tuples):
        raise VerificationError(
            "fault scenario did not produce a clean typed error"
        )
    tuples = _minimize_list(list(tuples), fires_cleanly)
    error, _clean = _inject_once(tuples, query, op_index=0)
    assert error is not None
    payload = {
        "kind": "fault",
        "seed": seed,
        "slopes": list(DEFAULT_SLOPES),
        "tuples": [tuple_to_json(t) for t in tuples],
        "query": query_to_json(query),
        "fault": {"op": "read", "op_index": 0},
        "error": {
            "type": type(error).__name__,
            "op": error.op,
            "op_index": error.op_index,
        },
    }
    path = write_repro(payload, out_dir, f"fault-seed{seed}")
    get_registry().counter(
        "fuzz_faults_injected", "Storage faults injected by repro.verify"
    ).inc()
    return error, path


def _inject_once(
    tuples: list[GeneralizedTuple],
    query: HalfPlaneQuery,
    op_index: int,
    slopes: Sequence[float] = DEFAULT_SLOPES,
) -> tuple[FaultInjectedError | None, bool]:
    """Build on a fault pager, fail read ``op_index`` of one query.

    Returns ``(error or None, state_clean_afterwards)``.
    """
    relation = workload.as_relation(tuples)
    pager = FaultInjectingPager()
    pager.armed = False
    planner = DualIndexPlanner.build(relation, slopes, pager=pager)
    pager.reads_seen = 0
    pager.fail_read_at = frozenset({op_index})
    pager.armed = True
    error: FaultInjectedError | None = None
    try:
        planner.query(query)
    except FaultInjectedError as exc:
        error = exc
    finally:
        pager.armed = False
    expected = evaluate_relation(
        relation, query.query_type, query.slope_2d, query.intercept, query.theta
    )
    clean = planner.query(query).ids == expected
    return error, clean


# ----------------------------------------------------------------------
# recovery rounds (crash the durable engine, reopen, re-verify)
# ----------------------------------------------------------------------
def _apply_ops(planner, live: dict, ops: Sequence, next_tid: int) -> int:
    """Apply JSON mutation ops (``["insert", tuple] | ["delete", tid]``)
    to a dynamic planner, mirroring them in ``live``; returns next_tid."""
    for op in ops:
        if op[0] == "insert":
            t = tuple_from_json(op[1])
            planner.insert(next_tid, t)
            live[next_tid] = t
            next_tid += 1
        else:
            tid = int(op[1])
            planner.delete(tid)
            del live[tid]
    return next_tid


def make_recovery_case(
    rng: random.Random,
    slopes: Sequence[float],
    n_tuples: int,
    n_queries: int,
    crash: CrashPoint | None = None,
) -> dict:
    """Generate one replayable recovery case (all-bounded tuples so the
    committed live set is exactly what the index must hold back)."""
    tuples = [workload.bounded_tuple(rng) for _ in range(n_tuples)]
    alive = list(range(n_tuples))
    next_tid = n_tuples

    def gen_ops(n_ops: int) -> list:
        nonlocal next_tid
        ops: list = []
        for _ in range(n_ops):
            if len(alive) > 1 and rng.random() < 0.4:
                tid = alive.pop(rng.randrange(len(alive)))
                ops.append(["delete", tid])
            else:
                ops.append(
                    ["insert", tuple_to_json(workload.bounded_tuple(rng))]
                )
                alive.append(next_tid)
                next_tid += 1
        return ops

    committed = gen_ops(3)
    crashed = gen_ops(3)
    if crash is None:
        point = rng.choice(("wal-append", "checkpoint"))
        at = rng.randrange(1, 5) if point == "wal-append" else rng.randrange(3)
        crash = CrashPoint(point, at)
    return {
        "kind": "recovery",
        "slopes": list(slopes),
        "tuples": [tuple_to_json(t) for t in tuples],
        "committed": committed,
        "crashed": crashed,
        "crash": crash.to_json(),
        "queries": [
            query_to_json(q)
            for q in workload.random_queries(rng, n_queries, slopes)
        ],
    }


def run_recovery_case(
    data: dict, keep_crashed_dir: str | None = None
) -> list[dict]:
    """Execute one recovery case; returns findings (``[]`` = ok).

    Builds a dynamic planner on a WAL-mode :class:`FileDisk` (checking
    its accounting stays bit-identical to a :class:`DiskSimulator` twin
    over the same build + queries), saves, applies committed mutations,
    commits, then arms the recorded :class:`CrashPoint` and applies the
    doomed mutations. After the injected crash the directory is reopened
    from disk and the recovered engine is checked against the geometric
    oracle over the exact live set durability semantics dictate: a torn
    WAL append rolls the doomed mutations back (they never committed),
    while a mid-checkpoint crash keeps them (``save()``'s commit point —
    the catalog write — precedes the page fold). ``keep_crashed_dir``
    copies the post-crash directory (torn WAL included) there before
    recovery, as the CI failure artifact.
    """
    slopes = [float(s) for s in data.get("slopes", DEFAULT_SLOPES)]
    crash = CrashPoint.from_json(data["crash"])
    queries = [query_from_json(qd) for qd in data["queries"]]
    tuples = [tuple_from_json(td) for td in data["tuples"]]
    findings: list[dict] = []
    tmp = tempfile.mkdtemp(prefix="repro-recovery-")
    engine_dir = os.path.join(tmp, "engine")
    try:
        disk = FileDisk(engine_dir, durability="wal")
        planner = DualIndexPlanner.build(
            workload.as_relation(tuples), slopes,
            pager=Pager(disk=disk), dynamic=True,
        )
        sim = DiskSimulator()
        sim_planner = DualIndexPlanner.build(
            workload.as_relation(tuples), slopes,
            pager=Pager(disk=sim), dynamic=True,
        )
        for q in queries:
            planner.query(q)
            sim_planner.query(q)
        if disk.stats.__dict__ != sim.stats.__dict__:
            findings.append(
                {
                    "kind": "accounting-drift",
                    "file_backed": dict(disk.stats.__dict__),
                    "simulator": dict(sim.stats.__dict__),
                }
            )
        planner.save(engine_dir)
        live = dict(
            (tid, t) for tid, t in enumerate(tuples)
            if tid not in planner.index.skipped
        )
        next_tid = len(tuples)
        next_tid = _apply_ops(planner, live, data["committed"], next_tid)
        planner.commit()
        arm_crash(disk, crash)
        doomed = dict(live)
        fired = False
        try:
            _apply_ops(planner, doomed, data["crashed"], next_tid)
            if crash.point == "checkpoint":
                planner.save(engine_dir)
            else:
                planner.commit()
        except FaultInjectedError:
            fired = True
        if not fired:
            findings.append(
                {"kind": "crash-not-injected", "crash": crash.to_json()}
            )
        # What must survive: a torn WAL append dies before its batch
        # commits, so the doomed mutations roll back to the committed
        # set. A mid-checkpoint crash dies *after* save()'s commit point
        # (the catalog is written before the page fold), so the doomed
        # mutations are durable and must all be there.
        if fired and crash.point == "wal-append":
            committed = sorted(live.items())
        else:
            committed = sorted(doomed.items())
        disk.close()
        if keep_crashed_dir is not None:
            shutil.copytree(engine_dir, keep_crashed_dir,
                            dirs_exist_ok=True)
        recovered = open_planner(engine_dir)
        try:
            if recovered.index.size != len(committed):
                findings.append(
                    {
                        "kind": "recovery-size-mismatch",
                        "expected": len(committed),
                        "got": recovered.index.size,
                    }
                )
            for q in queries:
                expected = evaluate_relation(
                    committed, q.query_type, q.slope_2d, q.intercept,
                    q.theta,
                )
                got = recovered.query(q).ids
                if got != expected:
                    findings.append(
                        {
                            "kind": "recovery-divergence",
                            "query": query_to_json(q),
                            "missing": sorted(expected - got),
                            "extra": sorted(got - expected),
                        }
                    )
            try:
                check_dual_index(recovered.index)
            except VerificationError as exc:
                findings.append(
                    {"kind": "recovery-invariant", "error": str(exc)}
                )
        finally:
            recovered.index.pager.disk.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return findings


def run_recovery_scenario(
    seed: int = 0, out_dir: str = "fuzz-repros"
) -> list[str]:
    """The durability acceptance demo: crash once mid-WAL-append and once
    mid-checkpoint, reopen each from disk, and require the differential
    oracle to accept the recovered engine. Writes one replayable
    kind-``recovery`` repro JSON per crash point plus a copy of each
    crashed data directory (page file + torn WAL) as inspectable
    artifacts; returns the repro paths. Raises on any finding.
    """
    paths: list[str] = []
    for point, at in (("wal-append", 2), ("checkpoint", 1)):
        rng = random.Random(f"recovery:{seed}:{point}")
        case = make_recovery_case(
            rng, DEFAULT_SLOPES, 10, 8, crash=CrashPoint(point, at)
        )
        artifact_dir = os.path.join(
            out_dir, f"recovery-seed{seed}-{point}-data"
        )
        findings = run_recovery_case(case, keep_crashed_dir=artifact_dir)
        if findings:
            raise VerificationError(
                f"recovery scenario ({point}) failed: {findings}"
            )
        paths.append(
            write_repro(case, out_dir, f"recovery-seed{seed}-{point}")
        )
        get_registry().counter(
            "fuzz_crashes_recovered",
            "Injected crashes recovered by WAL replay",
        ).inc()
    return paths


# ----------------------------------------------------------------------
# minimisation
# ----------------------------------------------------------------------
def _minimize_list(items: list, still_fails: Callable[[list], bool]) -> list:
    """Greedy ddmin-lite: drop one element at a time to a fixpoint."""
    changed = True
    while changed and len(items) > 1:
        changed = False
        for i in range(len(items)):
            candidate = items[:i] + items[i + 1 :]
            try:
                if still_fails(candidate):
                    items = candidate
                    changed = True
                    break
            except ReproError:
                # The reduced case crashes differently; keep reducing —
                # a crash is still a failure worth shrinking toward.
                items = candidate
                changed = True
                break
    return items


def minimize_case(
    tuples: list[GeneralizedTuple],
    queries: list[HalfPlaneQuery],
    slopes: Sequence[float],
    include_rtree: bool,
) -> tuple[list[GeneralizedTuple], list[HalfPlaneQuery]]:
    """Shrink a failing (tuples, queries) case, tuples first."""

    def fails(ts: list, qs: list) -> bool:
        return bool(
            run_checks(
                ts, qs, slopes, include_rtree=include_rtree,
                check_invariants=False,
            )
        )

    tuples = _minimize_list(tuples, lambda ts: fails(ts, queries))
    queries = _minimize_list(queries, lambda qs: fails(tuples, qs))
    return tuples, queries


# ----------------------------------------------------------------------
# the time-boxed runner
# ----------------------------------------------------------------------
def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run differential rounds until the budget expires.

    Every finding is minimised (differential rounds) and written to
    ``config.out_dir`` as a replayable JSON; the report aggregates
    counts and paths. Deterministic in ``config.seed``.
    """
    registry = get_registry()
    report = FuzzReport(seed=config.seed)
    start = time.monotonic()
    _drain(_COMPARISONS)
    _drain(_WAIVERS)
    while (
        time.monotonic() - start < config.budget_seconds
        and report.rounds < config.max_rounds
    ):
        report.rounds += 1
        round_no = report.rounds
        rng = random.Random(f"{config.seed}:{round_no}")
        registry.counter("fuzz_rounds", "Differential fuzz rounds run").inc()
        if config.recovery_every and round_no % config.recovery_every == 0:
            case = make_recovery_case(
                rng, config.slopes, config.n_tuples,
                config.queries_per_round,
            )
            findings = run_recovery_case(case)
            if not any(
                f["kind"] == "crash-not-injected" for f in findings
            ):
                report.crashes_recovered += 1
                registry.counter(
                    "fuzz_crashes_recovered",
                    "Injected crashes recovered by WAL replay",
                ).inc()
            if findings:
                report.disagreements.extend(findings)
                registry.counter(
                    "fuzz_disagreements",
                    "Differential disagreements found",
                ).inc(len(findings))
                path = write_repro(
                    {**case, "round": round_no, "findings": findings},
                    config.out_dir,
                    f"recovery-seed{config.seed}-round{round_no}",
                )
                report.repro_paths.append(path)
                registry.counter(
                    "fuzz_repros", "Minimised fuzz repro files written"
                ).inc()
            continue
        if config.fault_every and round_no % config.fault_every == 0:
            findings, faults = fault_round(rng, config.slopes)
            report.faults_injected += faults
            registry.counter(
                "fuzz_faults_injected",
                "Storage faults injected by repro.verify",
            ).inc(faults)
            tuples, queries = [], []
        elif config.mutation_every and round_no % config.mutation_every == 0:
            findings = mutation_round(
                rng,
                config.slopes,
                config.n_tuples,
                config.queries_per_round,
                config.check_invariants,
            )
            tuples, queries = [], []
        else:
            bounded_only = bool(
                config.rtree_every and round_no % config.rtree_every == 0
            )
            tuples = workload.make_tuples(
                rng,
                config.n_tuples,
                unbounded_fraction=0.0 if bounded_only else config.unbounded_fraction,
                singleton_fraction=0.0 if bounded_only else config.singleton_fraction,
                empty_fraction=0.0 if bounded_only else config.empty_fraction,
            )
            relation = workload.as_relation(tuples)
            queries = workload.random_queries(
                rng, config.queries_per_round // 2, config.slopes
            ) + workload.boundary_queries(
                relation, config.slopes, rng,
                budget=config.queries_per_round - config.queries_per_round // 2,
            )
            findings = run_checks(
                tuples,
                queries,
                config.slopes,
                include_rtree=bounded_only,
                check_invariants=config.check_invariants,
            )
            report.queries += len(queries)
            registry.counter("fuzz_queries", "Queries fuzzed").inc(
                len(queries)
            )
            if findings and tuples and queries:
                tuples, queries = minimize_case(
                    tuples, queries, list(config.slopes), bounded_only
                )
                findings = run_checks(
                    tuples, queries, config.slopes,
                    include_rtree=bounded_only, check_invariants=False,
                )
        if findings:
            report.disagreements.extend(findings)
            registry.counter(
                "fuzz_disagreements", "Differential disagreements found"
            ).inc(len(findings))
            payload = {
                "kind": "differential",
                "seed": config.seed,
                "round": round_no,
                "slopes": list(config.slopes),
                "rtree": bool(tuples) and all(
                    t.is_satisfiable() and t.extension().is_bounded
                    for t in tuples
                ),
                "tuples": [tuple_to_json(t) for t in tuples],
                "queries": [query_to_json(q) for q in queries],
                "findings": findings,
            }
            path = write_repro(
                payload,
                config.out_dir,
                f"diff-seed{config.seed}-round{round_no}",
            )
            report.repro_paths.append(path)
            registry.counter(
                "fuzz_repros", "Minimised fuzz repro files written"
            ).inc()
    report.comparisons = _drain(_COMPARISONS)
    report.waivers = _drain(_WAIVERS)
    report.elapsed = time.monotonic() - start
    return report


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def replay_repro(path: str) -> list[dict]:
    """Re-run a written repro file; returns current findings.

    An empty list means the recorded failure no longer reproduces (for a
    fault repro: the fault fired as recorded and state stayed clean).
    """
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data["kind"] == "recovery":
        return run_recovery_case(data)
    if data["kind"] == "slowlog":
        from repro.verify.slowlog_replay import replay_slowlog_case

        return replay_slowlog_case(data)
    tuples = [tuple_from_json(td) for td in data["tuples"]]
    if data["kind"] == "fault":
        query = query_from_json(data["query"])
        error, clean = _inject_once(
            tuples, query, data["fault"]["op_index"],
            slopes=data.get("slopes", DEFAULT_SLOPES),
        )
        findings: list[dict] = []
        if error is None:
            findings.append({"kind": "fault-not-reproduced"})
        elif type(error).__name__ != data["error"]["type"]:
            findings.append(
                {
                    "kind": "fault-error-changed",
                    "expected": data["error"]["type"],
                    "got": type(error).__name__,
                }
            )
        if not clean:
            findings.append({"kind": "state-corruption-after-fault"})
        return findings
    queries = [query_from_json(qd) for qd in data["queries"]]
    return run_checks(
        tuples,
        queries,
        data.get("slopes", DEFAULT_SLOPES),
        include_rtree=data.get("rtree", False),
    )
