"""Differential correctness & fault-injection subsystem.

Cross-checks every production query path — restricted-slope sweeps,
T1/T2 approximations, the R+-tree baseline, the vectorized dual surface,
and the cached batch executor — against two independent oracles (the
exact geometric predicates and an LP-backed brute-force oracle), with
structural invariant checkers, a fault-injection pager, and crash
recovery rounds that kill a durable engine mid-write and reopen it from
disk. Failing cases are minimised to replayable JSON repro files. CLI
entry point: ``repro fuzz``; docs: ``docs/TESTING.md``.
"""

from repro.verify.differential import (
    FuzzConfig,
    FuzzReport,
    minimize_case,
    replay_repro,
    run_checks,
    run_fault_scenario,
    run_fuzz,
    run_recovery_case,
    run_recovery_scenario,
)
from repro.verify.faults import CrashPoint, FaultInjectingPager, arm_crash
from repro.verify.invariants import (
    check_btree,
    check_buffer_pool,
    check_dual_index,
    check_envelopes,
)
from repro.verify.oracle import BruteForceOracle, lp_feasible, lp_support

__all__ = [
    "BruteForceOracle",
    "CrashPoint",
    "FaultInjectingPager",
    "FuzzConfig",
    "FuzzReport",
    "arm_crash",
    "check_btree",
    "check_buffer_pool",
    "check_dual_index",
    "check_envelopes",
    "lp_feasible",
    "lp_support",
    "minimize_case",
    "replay_repro",
    "run_checks",
    "run_fault_scenario",
    "run_fuzz",
    "run_recovery_case",
    "run_recovery_scenario",
]
