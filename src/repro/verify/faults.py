"""Fault injection at the pager boundary.

:class:`FaultInjectingPager` is a drop-in :class:`~repro.storage.pager.Pager`
whose reads/writes fail on a schedule drawn from a seeded RNG (or on an
explicit operation index). The fault is raised *before* any state —
stats counters, buffer frames, disk bytes — is touched, so a caller that
survives the exception observes storage exactly as it was: the property
the differential runner's fault rounds assert.

The schedule is deterministic in the seed, so a failing run is replayed
by re-creating the pager with the same ``(seed, read_rate, write_rate)``
triple; explicit ``fail_read_at`` / ``fail_write_at`` indices are how a
minimised repro pins the single fatal operation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.errors import FaultInjectedError, StorageError
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskSimulator
from repro.storage.filepager import FileDisk
from repro.storage.pager import Pager


@dataclass(frozen=True)
class CrashPoint:
    """A scheduled kill for the durable engine (recovery fuzz rounds).

    ``point`` is ``"wal-append"`` (tear the ``at``-th WAL append from
    arming, writing only ``torn_bytes`` of the frame — half if ``None``)
    or ``"checkpoint"`` (raise after ``at`` checkpoint page writes,
    always before the header flip). Both raise
    :class:`~repro.errors.FaultInjectedError`; the process-death
    simulation is completed by dropping the disk object and reopening
    the directory.
    """

    point: str
    at: int = 0
    torn_bytes: int | None = None

    def to_json(self) -> dict:
        return {"point": self.point, "at": self.at,
                "torn_bytes": self.torn_bytes}

    @classmethod
    def from_json(cls, data: dict) -> "CrashPoint":
        return cls(data["point"], data["at"], data.get("torn_bytes"))


def arm_crash(disk: FileDisk, crash: CrashPoint) -> None:
    """Arm ``crash`` on a WAL-mode :class:`FileDisk`."""
    if disk.wal is None:
        raise StorageError("crash injection needs durability='wal'")
    if crash.point == "wal-append":
        disk.wal.fail_append_at = disk.wal.appends_seen + crash.at
        disk.wal.torn_bytes = crash.torn_bytes
    elif crash.point == "checkpoint":
        disk.fail_checkpoint_after = crash.at
    else:
        raise StorageError(f"unknown crash point {crash.point!r}")


class _DisarmScope:
    def __init__(self, pager: "FaultInjectingPager") -> None:
        self._pager = pager

    def __enter__(self) -> "_DisarmScope":
        self._pager.armed = False
        return self

    def __exit__(self, *exc_info) -> None:
        self._pager.armed = True


class FaultInjectingPager(Pager):
    """A pager that injects :class:`~repro.errors.FaultInjectedError`.

    Parameters
    ----------
    seed:
        Seeds the per-operation coin flips for ``read_rate``/``write_rate``.
    read_rate, write_rate:
        Probability of failing each armed read/write.
    fail_read_at, fail_write_at:
        Explicit 0-based operation indices that always fail (counted over
        *armed* operations of that kind) — the deterministic form a
        minimised repro uses.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_frames: int = 0,
        disk: DiskSimulator | None = None,
        *,
        seed: int = 0,
        read_rate: float = 0.0,
        write_rate: float = 0.0,
        fail_read_at: Iterable[int] = (),
        fail_write_at: Iterable[int] = (),
    ) -> None:
        super().__init__(page_size, buffer_frames, disk)
        self.seed = seed
        self.read_rate = read_rate
        self.write_rate = write_rate
        self.fail_read_at = frozenset(fail_read_at)
        self.fail_write_at = frozenset(fail_write_at)
        self.armed = True
        self.reads_seen = 0
        self.writes_seen = 0
        self.faults_raised = 0
        self._rng = random.Random(seed)

    def disarmed(self) -> _DisarmScope:
        """Context manager suspending injection (e.g. during index build)."""
        return _DisarmScope(self)

    def read(self, page_id: int) -> bytes:
        if self.armed:
            index = self.reads_seen
            self.reads_seen += 1
            if index in self.fail_read_at or (
                self.read_rate > 0.0 and self._rng.random() < self.read_rate
            ):
                self.faults_raised += 1
                raise FaultInjectedError(
                    f"injected read fault on page {page_id} (read #{index})",
                    op="read",
                    page_id=page_id,
                    op_index=index,
                )
        return super().read(page_id)

    def write(self, page_id: int, data: bytes) -> None:
        if self.armed:
            index = self.writes_seen
            self.writes_seen += 1
            if index in self.fail_write_at or (
                self.write_rate > 0.0 and self._rng.random() < self.write_rate
            ):
                self.faults_raised += 1
                raise FaultInjectedError(
                    f"injected write fault on page {page_id} (write #{index})",
                    op="write",
                    page_id=page_id,
                    op_index=index,
                )
        super().write(page_id, data)

    def __repr__(self) -> str:
        return (
            f"<FaultInjectingPager seed={self.seed} armed={self.armed} "
            f"faults={self.faults_raised}>"
        )
