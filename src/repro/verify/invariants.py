"""Structural invariant checkers, standalone or as differential-run hooks.

Each checker raises :class:`repro.errors.VerificationError` (wrapping the
subsystem's own error where one exists) on the first violation and
returns quietly otherwise, so the differential runner can treat "an
invariant broke" exactly like "an answer set diverged": capture, minimise,
write a repro.

Checkers
--------
* :func:`check_btree` — ordering, separators, fill bounds, leaf chain
  (delegates to :meth:`BPlusTree.check_invariants`), plus dirty-leaf
  bookkeeping.
* :func:`check_dual_index` — per-tree invariants for all 2k trees, the
  tuple-id ↔ RID catalog bijection, and per-tree entry counts.
* :func:`check_envelopes` — TOP^P convexity and BOT^P concavity of the
  dual profiles (the shape facts Section 2.1 proves and the handicap
  machinery relies on), plus TOP ≥ BOT across the finite domain.
* :func:`check_buffer_pool` — frame-count vs capacity, dirty ⊆ resident,
  pin refcount sanity.
"""

from __future__ import annotations

import math

from repro.btree.tree import BPlusTree
from repro.constraints.tuples import GeneralizedTuple
from repro.errors import IndexError_, VerificationError
from repro.geometry import dual
from repro.storage.buffer import BufferPool

#: Slack for piecewise-slope monotonicity comparisons (profiles are
#: built from exact vertex arithmetic; this absorbs only float noise).
_SLOPE_SLACK = 1e-9


def check_btree(tree: BPlusTree) -> None:
    """Full structural check of one B+-tree."""
    try:
        tree.check_invariants()
    except IndexError_ as exc:
        raise VerificationError(f"B+-tree {tree.name!r}: {exc}") from exc
    stray = tree.dirty_leaves - tree.owned_pages
    if stray:
        raise VerificationError(
            f"B+-tree {tree.name!r}: dirty_leaves reference non-owned "
            f"pages {sorted(stray)}"
        )


def check_dual_index(index) -> None:
    """Invariants of a :class:`repro.core.dual_index.DualIndex`."""
    for tree in index.up + index.down:
        check_btree(tree)
        if tree.size != index.size:
            raise VerificationError(
                f"tree {tree.name!r} holds {tree.size} entries but the "
                f"index holds {index.size} tuples"
            )
    if len(index.rid_of) != index.size or len(index.tid_of) != index.size:
        raise VerificationError(
            f"catalog size mismatch: {len(index.rid_of)} tids / "
            f"{len(index.tid_of)} rids vs index size {index.size}"
        )
    for tid, rid in index.rid_of.items():
        if index.tid_of.get(rid) != tid:
            raise VerificationError(
                f"catalog not a bijection: tid {tid} -> rid {rid} -> "
                f"tid {index.tid_of.get(rid)!r}"
            )


def check_envelopes(t: GeneralizedTuple, samples: int = 5) -> None:
    """TOP convexity / BOT concavity of one tuple's dual profiles.

    A convex piecewise-linear function has non-decreasing piece slopes;
    a concave one non-increasing. Additionally ``TOP(s) >= BOT(s)`` at
    sampled slopes of the common finite domain. Empty tuples are
    skipped (they have no profile).
    """
    poly = t.extension()
    if poly.is_empty or poly.dimension != 2:
        return
    top_profile = dual.top_profile_2d(poly)
    bot_profile = dual.bot_profile_2d(poly)
    _check_piece_monotonicity(top_profile, increasing=True, label="TOP")
    _check_piece_monotonicity(bot_profile, increasing=False, label="BOT")
    lo = max(top_profile.domain_lo, bot_profile.domain_lo, -10.0)
    hi = min(top_profile.domain_hi, bot_profile.domain_hi, 10.0)
    if lo > hi:
        return
    for i in range(samples):
        s = lo + (hi - lo) * i / max(1, samples - 1)
        top_v, bot_v = top_profile(s), bot_profile(s)
        if top_v < bot_v - 1e-7 * max(1.0, abs(top_v), abs(bot_v)):
            raise VerificationError(
                f"TOP({s:g})={top_v:g} < BOT({s:g})={bot_v:g} for {t!r}"
            )


def _check_piece_monotonicity(profile, increasing: bool, label: str) -> None:
    slopes = [p.slope for p in profile.pieces]
    for a, b in zip(slopes, slopes[1:]):
        slack = _SLOPE_SLACK * max(1.0, abs(a), abs(b))
        if increasing and b < a - slack:
            raise VerificationError(
                f"{label} profile is not convex: piece slopes {a:g} -> {b:g}"
            )
        if not increasing and b > a + slack:
            raise VerificationError(
                f"{label} profile is not concave: piece slopes {a:g} -> {b:g}"
            )


def check_buffer_pool(pool: BufferPool) -> None:
    """Pin/page accounting of one buffer pool."""
    if pool.capacity == 0:
        if pool._frames or pool._pins:
            raise VerificationError(
                "zero-capacity pool holds frames or pins"
            )
        return
    unpinned = [pid for pid in pool._frames if pid not in pool._pins]
    overflow = len(pool._frames) - pool.capacity
    if overflow > 0 and len(unpinned) > 0 and overflow > len(pool._pins):
        raise VerificationError(
            f"pool holds {len(pool._frames)} frames over capacity "
            f"{pool.capacity} with evictable frames present"
        )
    if not set(pool._dirty) <= set(pool._frames):
        raise VerificationError(
            f"dirty pages {sorted(set(pool._dirty) - set(pool._frames))} "
            f"have no resident frame"
        )
    for pid, count in pool._pins.items():
        if count <= 0:
            raise VerificationError(f"page {pid} pinned with refcount {count}")
        if pid not in pool._frames:
            # Pinning a non-resident page is legal (it protects a future
            # frame), but a *negative* or zero count never is; nothing
            # more to check here.
            continue


def check_pager(pager) -> None:
    """Buffer-pool invariants reached through a pager facade."""
    check_buffer_pool(pager.buffer)
    if not math.isfinite(pager.stats.logical_reads):  # pragma: no cover
        raise VerificationError("non-finite I/O counters")
