"""A paged static interval tree (centered decomposition).

Footnote 6 of the paper notes that the restricted ALL/EXIST problem "can
be provided by reducing ALL and EXIST selections to the 1-dimensional
interval management problem". At a slope ``s ∈ S`` every tuple is the
interval ``[BOT^P(s), TOP^P(s)]``; endpoint sweeps answer ALL/EXIST, and
the interval view adds a new query the B+-tree pair cannot answer in one
pass: *stabbing* — all tuples whose extension the **line**
``x_d = s·x' + b`` crosses (``BOT ≤ b ≤ TOP``).

This module implements the classic Edelsbrunner interval tree on the
simulated disk: each node stores a center value and the intervals
crossing it, in two lists sorted by left endpoint (ascending) and right
endpoint (descending); a stabbing query reads only a prefix of one list
per node on the root-to-leaf path — ``O(log n + t)`` page accesses.

Endpoints may be ``±inf`` (unbounded tuples): infinite intervals simply
stab every query value and sit at the front of both lists.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import IndexError_
from repro.storage.disk import NULL_PAGE
from repro.storage.pager import Pager
from repro.storage.serialize import KeyCodec

_NODE = struct.Struct("<BBHdIIII")  # kind, pad, n_cross, center, 4 page ids
_LIST_HEADER = struct.Struct("<BBHI")  # kind, pad, count, next page
_RID = struct.Struct("<I")

_NODE_KIND = 2
_LIST_KIND = 3


@dataclass(frozen=True)
class Interval:
    """A closed interval with a record id."""

    left: float
    right: float
    rid: int

    def contains(self, value: float) -> bool:
        return self.left <= value <= self.right


class IntervalTree:
    """Static paged interval tree with stabbing queries."""

    def __init__(
        self,
        pager: Pager,
        key_codec: KeyCodec | None = None,
        name: str = "itree",
    ) -> None:
        self.pager = pager
        self.codec = key_codec if key_codec is not None else KeyCodec(4)
        self.name = name
        self.root: int = NULL_PAGE
        self.size = 0
        self.owned_pages: set[int] = set()
        kb = self.codec.key_bytes
        self._entries_per_page = (pager.page_size - _LIST_HEADER.size) // (
            kb + _RID.size
        )

    @property
    def page_count(self) -> int:
        return len(self.owned_pages)

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self, intervals: Iterable[Interval]) -> None:
        """Bulk-build from a collection of intervals."""
        if self.root != NULL_PAGE:
            raise IndexError_("build on a non-empty interval tree")
        data = list(intervals)
        for interval in data:
            if interval.left > interval.right:
                raise IndexError_(f"inverted interval {interval}")
        self.size = len(data)
        if data:
            self.root = self._build_node(data)

    def _build_node(self, intervals: list[Interval]) -> int:
        center = _median_endpoint(intervals)
        left_side = [i for i in intervals if i.right < center]
        right_side = [i for i in intervals if i.left > center]
        crossing = [
            i for i in intervals if i.left <= center <= i.right
        ]
        left_pid = self._build_node(left_side) if left_side else NULL_PAGE
        right_pid = self._build_node(right_side) if right_side else NULL_PAGE
        by_left = sorted(crossing, key=lambda i: i.left)
        by_right = sorted(crossing, key=lambda i: -i.right)
        left_list = self._write_list([(i.left, i.rid) for i in by_left])
        right_list = self._write_list([(i.right, i.rid) for i in by_right])
        pid = self._alloc()
        image = bytearray(self.pager.page_size)
        _NODE.pack_into(
            image, 0, _NODE_KIND, 0, len(crossing), center,
            left_pid, right_pid, left_list, right_list,
        )
        self.pager.write(pid, bytes(image))
        return pid

    def _write_list(self, entries: list[tuple[float, int]]) -> int:
        """A chain of list pages; returns the head pid (NULL if empty)."""
        if not entries:
            return NULL_PAGE
        head = NULL_PAGE
        kb = self.codec.key_bytes
        for start in reversed(range(0, len(entries), self._entries_per_page)):
            chunk = entries[start : start + self._entries_per_page]
            pid = self._alloc()
            image = bytearray(self.pager.page_size)
            _LIST_HEADER.pack_into(image, 0, _LIST_KIND, 0, len(chunk), head)
            pos = _LIST_HEADER.size
            for key, rid in chunk:
                image[pos : pos + kb] = self.codec.encode(key)
                pos += kb
                _RID.pack_into(image, pos, rid)
                pos += _RID.size
            self.pager.write(pid, bytes(image))
            head = pid
        return head

    def _alloc(self) -> int:
        pid = self.pager.allocate()
        self.owned_pages.add(pid)
        return pid

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stab(self, value: float, margin: float = 0.0) -> set[int]:
        """RIDs of intervals containing ``value`` (widened by ``margin``).

        The margin compensates key quantisation; callers refine exactly.
        """
        result: set[int] = set()
        pid = self.root
        lo = self.codec.down(value - margin)
        hi = self.codec.up(value + margin)
        while pid != NULL_PAGE:
            data = self.pager.read(pid)
            kind, _pad, _n, center, left_pid, right_pid, llist, rlist = (
                _NODE.unpack_from(data, 0)
            )
            assert kind == _NODE_KIND
            if hi < center:
                self._scan_prefix(llist, result, lambda k: k <= hi)
                pid = left_pid
            elif lo > center:
                self._scan_prefix(rlist, result, lambda k: k >= lo)
                pid = right_pid
            else:
                # value ~ center: every crossing interval stabs
                self._scan_prefix(llist, result, lambda k: True)
                # the widened window may also stab both subtrees; recurse
                # into the side the raw value is on, then sweep the other
                # via its boundary lists (margin is tiny: one side only
                # matters except at exact ties).
                pid = left_pid if value < center else right_pid
        return result

    def _scan_prefix(self, pid: int, out: set[int], keep) -> None:
        """Collect rids from a sorted list chain while ``keep(key)``."""
        kb = self.codec.key_bytes
        while pid != NULL_PAGE:
            data = self.pager.read(pid)
            kind, _pad, count, nxt = _LIST_HEADER.unpack_from(data, 0)
            assert kind == _LIST_KIND
            pos = _LIST_HEADER.size
            for _ in range(count):
                key = self.codec.decode(data[pos : pos + kb])
                pos += kb
                rid = _RID.unpack_from(data, pos)[0]
                pos += _RID.size
                if not keep(key):
                    return
                out.add(rid)
            pid = nxt


def _median_endpoint(intervals: Sequence[Interval]) -> float:
    finite: list[float] = []
    for i in intervals:
        if math.isfinite(i.left):
            finite.append(i.left)
        if math.isfinite(i.right):
            finite.append(i.right)
    if not finite:
        return 0.0
    finite.sort()
    return finite[len(finite) // 2]
