"""Interval management (footnote 6): paged interval tree + line queries."""

from repro.intervals.line_index import LineQueryIndex
from repro.intervals.tree import Interval, IntervalTree

__all__ = ["Interval", "IntervalTree", "LineQueryIndex"]
