"""Line-crossing selections via interval management (footnote 6).

For every slope in the predefined set ``S``, the relation's tuples are
the intervals ``[BOT^P(s), TOP^P(s)]`` on the intercept axis. The
interval tree answers the *line query* — all tuples whose extension the
line ``y = s·x + b`` crosses — in ``O(log n + t)`` page accesses, a
selection the B+-tree pair of Section 3 would need two sweeps plus an
intersection for.

Results are refined against the exact predicate (``BOT ≤ b ≤ TOP`` with
the oracle tolerance), so answers match the geometric truth even with
4-byte quantised keys.
"""

from __future__ import annotations

from repro.constraints.relation import GeneralizedRelation
from repro.core.query import QueryResult
from repro.core.slope_set import SlopeSet
from repro.errors import QueryError
from repro.geometry import bot, top
from repro.geometry.predicates import ORACLE_TOL
from repro.intervals.tree import Interval, IntervalTree
from repro.storage.heap import HeapFile, unpack_rid
from repro.storage.pager import Pager
from repro.storage.serialize import KeyCodec, decode_tuple, encode_tuple


class LineQueryIndex:
    """Per-slope interval trees answering line-crossing selections."""

    def __init__(
        self,
        pager: Pager | None = None,
        slopes: SlopeSet | None = None,
        key_codec: KeyCodec | None = None,
    ) -> None:
        if slopes is None:
            raise QueryError("LineQueryIndex needs a SlopeSet")
        self.pager = pager if pager is not None else Pager()
        self.slopes = slopes
        self.codec = key_codec if key_codec is not None else KeyCodec(4)
        self.heap = HeapFile(self.pager)
        self.trees = [
            IntervalTree(self.pager, self.codec, f"line[{i}]")
            for i in range(len(slopes))
        ]
        self.tid_of: dict[int, int] = {}
        self.size = 0
        self.skipped: list[int] = []

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        relation: GeneralizedRelation,
        slopes: SlopeSet,
        pager: Pager | None = None,
        key_bytes: int = 4,
    ) -> "LineQueryIndex":
        """Index a 2-D relation for line queries at the slopes of S."""
        index = cls(pager, slopes, KeyCodec(key_bytes))
        per_slope: list[list[Interval]] = [[] for _ in slopes]
        for tid, t in relation:
            poly = t.extension()
            if poly.is_empty:
                index.skipped.append(tid)
                continue
            rid = index.heap.insert(encode_tuple(tid, t))
            index.tid_of[rid] = tid
            for i, s in enumerate(slopes):
                lo = bot(poly, s)
                hi = top(poly, s)
                assert lo is not None and hi is not None
                per_slope[i].append(Interval(lo, hi, rid))
            index.size += 1
        for tree, intervals in zip(index.trees, per_slope):
            tree.build(intervals)
        return index

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def crossing(self, slope: float, intercept: float) -> QueryResult:
        """Tuples whose extension the line ``y = slope·x + intercept``
        crosses. The slope must belong to S (the restricted setting of
        Section 3 / footnote 6)."""
        slope_index = self.slopes.index_of(slope, tol=1e-12)
        if slope_index is None:
            raise QueryError(
                f"line queries require slope in S, got {slope} "
                f"(S = {list(self.slopes)})"
            )
        with self.pager.measure() as scope:
            result = self._execute(slope_index, float(intercept))
        result.io = scope.delta
        return result

    def _execute(self, slope_index: int, intercept: float) -> QueryResult:
        margin = self._margin(intercept)
        rids = self.trees[slope_index].stab(intercept, margin)
        result = QueryResult(technique="interval")
        result.candidates = len(rids)
        result.refinement_pages = len({unpack_rid(r)[0] for r in rids})
        slope = self.slopes[slope_index]
        records = self.heap.fetch_batch(rids)
        for data in records.values():
            tid, t = decode_tuple(data)
            poly = t.extension()
            lo = bot(poly, slope)
            hi = top(poly, slope)
            if lo - ORACLE_TOL <= intercept <= hi + ORACLE_TOL:
                result.ids.add(tid)
            else:
                result.false_hits += 1
        return result

    def _margin(self, value: float) -> float:
        scale = max(1.0, abs(value))
        return (1e-5 if self.codec.key_bytes == 4 else 1e-8) * scale

    def space_pages(self) -> int:
        """Interval-tree pages (excluding the shared heap)."""
        return sum(t.page_count for t in self.trees)
