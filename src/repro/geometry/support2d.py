"""Exact 2-D support functions over constraint conjunctions.

The support of a convex set ``P`` in direction ``c`` is
``h_P(c) = sup { c·x : x ∈ P }``. Everything the dual representation needs
reduces to support evaluations::

    TOP^P(s) = sup { y - s·x } = h_P((-s, 1))
    BOT^P(s) = inf { y - s·x } = -h_P((s, -1))

The evaluation strategy is candidate enumeration (sound for 2-D systems
with a handful of constraints, which is the paper's workload — 3..6
constraints per tuple):

1. decide unboundedness in direction ``c`` from the recession cone;
2. otherwise the supremum is attained on the boundary: enumerate all
   pairwise constraint-line intersections (vertices) and all per-line
   feasible intervals (edges), and take the best feasible value.

Infeasible systems are reported as ``None``; unbounded suprema as
``math.inf`` (and infima as ``-math.inf`` through :func:`infimum_2d`).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.geometry.cone2d import cone_normals, unbounded_in

Vec2 = tuple[float, float]
Ineq = tuple[Vec2, float]  # ((nx, ny), beta) meaning nx*x + ny*y <= beta

#: Relative feasibility tolerance for candidate points.
FEAS_TOL = 1e-7


def ineqs_from_atoms(atoms: Iterable) -> list[Ineq]:
    """Convert weak-inequality :class:`LinearConstraint` atoms to ≤-form.

    ``a·x + c ≤ 0`` becomes ``a·x ≤ -c``; ``≥`` atoms are mirrored.
    Trivial atoms must have been removed by normalisation; a remaining
    contradiction is encoded as an unsatisfiable inequality ``0 ≤ -1``
    handled by the feasibility check.
    """
    from repro.constraints.theta import Theta

    result: list[Ineq] = []
    for atom in atoms:
        if len(atom.coeffs) != 2:
            raise ValueError("ineqs_from_atoms is 2-D only")
        a, b = atom.coeffs
        if atom.theta is Theta.LE:
            result.append(((a, b), -atom.const))
        elif atom.theta is Theta.GE:
            result.append(((-a, -b), atom.const))
        else:
            raise ValueError(f"non-weak operator {atom.theta} after normalize")
    return result


def _scale(ineqs: Sequence[Ineq]) -> float:
    largest = 1.0
    for (nx, ny), beta in ineqs:
        largest = max(largest, abs(nx), abs(ny), abs(beta))
    return largest


def _feasible(ineqs: Sequence[Ineq], x: float, y: float, tol: float) -> bool:
    for (nx, ny), beta in ineqs:
        slack_tol = tol * max(1.0, abs(nx), abs(ny)) * max(1.0, abs(x), abs(y))
        if nx * x + ny * y - beta > slack_tol:
            return False
    return True


def _candidate_points(ineqs: Sequence[Ineq], tol: float) -> list[Vec2]:
    """Feasible vertices plus one feasible witness per constraint line."""
    points: list[Vec2] = []
    m = len(ineqs)
    # Pairwise line intersections.
    for i in range(m):
        (a1, b1), r1 = ineqs[i]
        for j in range(i + 1, m):
            (a2, b2), r2 = ineqs[j]
            det = a1 * b2 - a2 * b1
            scale = max(abs(a1), abs(b1), 1.0) * max(abs(a2), abs(b2), 1.0)
            if abs(det) <= 1e-13 * scale:
                continue
            x = (r1 * b2 - r2 * b1) / det
            y = (a1 * r2 - a2 * r1) / det
            if _feasible(ineqs, x, y, tol):
                points.append((x, y))
    # One witness per line (covers vertex-free regions such as half-planes
    # and slabs): clip the line by all other constraints and take a point
    # in the surviving parameter interval.
    for i in range(m):
        witness = _line_witness(ineqs, i, tol)
        if witness is not None:
            points.append(witness)
    return points


def _line_witness(
    ineqs: Sequence[Ineq], index: int, tol: float
) -> Vec2 | None:
    (a, b), beta = ineqs[index]
    norm_sq = a * a + b * b
    if norm_sq == 0.0:
        return None
    # Foot of the perpendicular from the origin; direction along the line.
    px, py = a * beta / norm_sq, b * beta / norm_sq
    dx, dy = -b, a
    t_lo, t_hi = -math.inf, math.inf
    for j, ((nx, ny), rhs) in enumerate(ineqs):
        if j == index:
            continue
        coef = nx * dx + ny * dy
        rest = rhs - (nx * px + ny * py)
        bound_tol = tol * max(1.0, abs(nx), abs(ny))
        if abs(coef) <= 1e-13:
            if rest < -bound_tol * max(1.0, abs(px), abs(py)):
                return None  # line entirely infeasible for constraint j
            continue
        t = rest / coef
        if coef > 0:
            t_hi = min(t_hi, t)
        else:
            t_lo = max(t_lo, t)
    if t_lo > t_hi + tol:
        return None
    if math.isfinite(t_lo) and math.isfinite(t_hi):
        t = 0.5 * (t_lo + t_hi)
    elif math.isfinite(t_lo):
        t = t_lo
    elif math.isfinite(t_hi):
        t = t_hi
    else:
        t = 0.0
    return (px + t * dx, py + t * dy)


def feasible_point_2d(ineqs: Sequence[Ineq], tol: float = FEAS_TOL) -> Vec2 | None:
    """A point satisfying all inequalities, or ``None`` when infeasible."""
    for (nx, ny), beta in ineqs:
        if nx == 0.0 and ny == 0.0 and beta < 0.0:
            return None  # encoded contradiction 0 <= beta < 0
    nontrivial = [((nx, ny), b) for (nx, ny), b in ineqs if (nx, ny) != (0.0, 0.0)]
    if not nontrivial:
        return (0.0, 0.0)
    if _feasible(nontrivial, 0.0, 0.0, tol):
        return (0.0, 0.0)
    candidates = _candidate_points(nontrivial, tol)
    return candidates[0] if candidates else None


def support_2d(
    ineqs: Sequence[Ineq], c: Vec2, tol: float = FEAS_TOL
) -> float | None:
    """``sup { c·x : x feasible }``.

    Returns ``None`` for an infeasible system, ``math.inf`` when the
    system is unbounded in direction ``c``, otherwise the finite supremum.
    """
    nontrivial = [((nx, ny), b) for (nx, ny), b in ineqs if (nx, ny) != (0.0, 0.0)]
    for (nx, ny), beta in ineqs:
        if nx == 0.0 and ny == 0.0 and beta < 0.0:
            return None
    if not nontrivial:
        if c == (0.0, 0.0):
            return 0.0
        return math.inf
    normals = cone_normals(nontrivial)
    candidates = _candidate_points(nontrivial, tol)
    if not candidates:
        return None
    if (c[0] != 0.0 or c[1] != 0.0) and unbounded_in(normals, c):
        return math.inf
    return max(c[0] * x + c[1] * y for x, y in candidates)


def infimum_2d(
    ineqs: Sequence[Ineq], c: Vec2, tol: float = FEAS_TOL
) -> float | None:
    """``inf { c·x : x feasible }`` (``-math.inf`` when unbounded below)."""
    sup = support_2d(ineqs, (-c[0], -c[1]), tol)
    if sup is None:
        return None
    return -sup
