"""The dual transformation and the ``TOP``/``BOT`` functions (Section 2.1).

A non-vertical hyperplane ``x_d = b_1 x_1 + … + b_{d-1} x_{d-1} + b_d``
dualises to the point ``(b_1, …, b_d)``; a point ``p`` dualises to the
hyperplane ``x_d = -p_1 x_1 - … - p_{d-1} x_{d-1} + p_d``. A polyhedron
``P`` dualises to the function pair::

    TOP^P(s) = max intercept b_d such that slope-s hyperplane meets P
    BOT^P(s) = min such intercept

computed here as support values: ``TOP^P(s) = sup{ x_d - s·x' : x ∈ P }``
(convex in ``s``), ``BOT^P(s) = inf{ x_d - s·x' }`` (concave in ``s``).
Unbounded polyhedra yield ``±inf``; empty ones yield ``None``.

Proposition 2.2's four ALL/EXIST reductions live in
``repro.geometry.predicates``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import GeometryError
from repro.geometry.envelope import EnvelopePiece, lower_envelope, upper_envelope
from repro.geometry.polyhedron import ConvexPolyhedron

Slope = "float | Sequence[float]"


def slope_vector(slope, dimension: int) -> tuple[float, ...]:
    """Normalise a slope argument to a (d-1)-vector.

    2-D callers may pass a bare float; d-dimensional callers pass a
    sequence of length ``d-1``.
    """
    if isinstance(slope, (int, float)):
        if dimension != 2:
            raise GeometryError(
                f"scalar slope against a {dimension}-dimensional polyhedron"
            )
        return (float(slope),)
    vec = tuple(float(v) for v in slope)
    if len(vec) != dimension - 1:
        raise GeometryError(
            f"slope of length {len(vec)} against dimension {dimension} "
            f"(need {dimension - 1})"
        )
    return vec


def top(poly: ConvexPolyhedron, slope) -> float | None:
    """``TOP^P(slope)``: max intercept of a slope-``s`` hyperplane meeting P."""
    s = slope_vector(slope, poly.dimension)
    direction = tuple(-v for v in s) + (1.0,)
    return poly.support(direction)


def bot(poly: ConvexPolyhedron, slope) -> float | None:
    """``BOT^P(slope)``: min intercept of a slope-``s`` hyperplane meeting P."""
    s = slope_vector(slope, poly.dimension)
    direction = s + (-1.0,)
    value = poly.support(direction)
    if value is None:
        return None
    return -value


def strip_top_max(poly: ConvexPolyhedron, slope_a, slope_b) -> float | None:
    """``max { TOP^P(s) : s on segment [slope_a, slope_b] }``.

    ``TOP^P`` is convex, so the maximum over a segment is attained at an
    endpoint. This is the T2 assignment key for EXIST(≥)/ALL(≥) handicaps.
    """
    va = top(poly, slope_a)
    vb = top(poly, slope_b)
    if va is None or vb is None:
        return None
    return max(va, vb)


def strip_bot_min(poly: ConvexPolyhedron, slope_a, slope_b) -> float | None:
    """``min { BOT^P(s) : s on segment [slope_a, slope_b] }``.

    ``BOT^P`` is concave, so the minimum over a segment is attained at an
    endpoint. This is the T2 assignment key for EXIST(≤)/ALL(≤) handicaps.
    """
    va = bot(poly, slope_a)
    vb = bot(poly, slope_b)
    if va is None or vb is None:
        return None
    return min(va, vb)


def dual_line_of_point(point: Sequence[float]) -> tuple[tuple[float, ...], float]:
    """Dual hyperplane of a point, as ``(slope_vector, intercept)``.

    ``D(p)`` is ``x_d = -p_1 x_1 - … - p_{d-1} x_{d-1} + p_d``.
    """
    p = tuple(float(v) for v in point)
    if len(p) < 2:
        raise GeometryError("dual of a point needs dimension >= 2")
    return tuple(-v for v in p[:-1]), p[-1]


def evaluate_dual_line(point: Sequence[float], slope) -> float:
    """``F_{D(p)}(slope)`` — the paper's per-vertex linear contribution."""
    p = tuple(float(v) for v in point)
    s = slope_vector(slope, len(p))
    return p[-1] - math.fsum(a * b for a, b in zip(p[:-1], s))


# ----------------------------------------------------------------------
# 2-D profiles: the full piecewise-linear graphs of TOP / BOT
# ----------------------------------------------------------------------
def top_profile_2d(poly: ConvexPolyhedron) -> "DualProfile":
    """The graph of ``TOP^P`` for a 2-D polyhedron.

    The finite part is the upper envelope of one line per vertex
    (slope ``-v_x``, intercept ``v_y``); rays bound the domain over which
    ``TOP`` stays finite.
    """
    return _profile(poly, upper=True)


def bot_profile_2d(poly: ConvexPolyhedron) -> "DualProfile":
    """The graph of ``BOT^P`` for a 2-D polyhedron."""
    return _profile(poly, upper=False)


class DualProfile:
    """A piecewise-linear ``TOP``/``BOT`` graph with an infinite sign.

    ``pieces`` cover the finite domain; outside ``[domain_lo, domain_hi]``
    the function is ``+inf`` (TOP) / ``-inf`` (BOT). A polyhedron that is
    unbounded vertically has no finite domain at all.
    """

    def __init__(
        self,
        pieces: list[EnvelopePiece],
        domain_lo: float,
        domain_hi: float,
        infinite_value: float,
    ) -> None:
        self.pieces = pieces
        self.domain_lo = domain_lo
        self.domain_hi = domain_hi
        self.infinite_value = infinite_value

    def __call__(self, s: float) -> float:
        if s < self.domain_lo or s > self.domain_hi:
            return self.infinite_value
        for piece in self.pieces:
            if piece.x_from - 1e-12 <= s <= piece.x_to + 1e-12:
                return piece.slope * s + piece.intercept
        return self.infinite_value  # pragma: no cover - empty finite domain

    @property
    def breakpoints(self) -> list[float]:
        """Interior slope values where the graph bends."""
        return [p.x_from for p in self.pieces[1:]]

    def __repr__(self) -> str:
        return (
            f"<DualProfile pieces={len(self.pieces)} "
            f"domain=[{self.domain_lo:g},{self.domain_hi:g}]>"
        )


def _profile(poly: ConvexPolyhedron, upper: bool) -> DualProfile:
    if poly.dimension != 2:
        raise GeometryError("dual profiles are implemented for dimension 2")
    if poly.is_empty:
        raise GeometryError("dual profile of an empty polyhedron")
    infinite = math.inf if upper else -math.inf
    lo, hi = -math.inf, math.inf
    for rx, ry in poly.rays():
        # TOP(s) = +inf iff some ray has ry - s*rx > 0 (mirrored for BOT).
        gain = 1.0 if upper else -1.0
        value = gain * ry
        if rx == 0.0:
            if value > 0.0:
                lo, hi = 0.0, -1.0  # empty finite domain
                break
            continue
        threshold = ry / rx
        if gain * rx > 0.0:
            # positive for s < threshold (TOP) — finite domain is right of it
            lo = max(lo, threshold)
        else:
            hi = min(hi, threshold)
    lines = [(-vx, vy) for vx, vy in poly.vertices()]
    if not lines:
        return DualProfile([], 0.0, -1.0, infinite)
    pieces = upper_envelope(lines) if upper else lower_envelope(lines)
    return DualProfile(pieces, lo, hi, infinite)
