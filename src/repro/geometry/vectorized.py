"""Vectorized dual evaluation: TOP/BOT of *many* tuples at one slope.

The scalar engine answers ``TOP^P(s)`` one polyhedron at a time through
:meth:`ConvexPolyhedron.support`. A batch of queries that share a slope
``s`` needs the surface value of *every* tuple at that one ``s`` — the
regime where the dual representation shines, because each tuple's
contribution is a maximum of linear functions of ``s`` (one dual line
per vertex):

    TOP^P(s) = max over vertices v of (v_y - s·v_x)     [+inf via rays]
    BOT^P(s) = min over vertices v of (v_y - s·v_x)     [-inf via rays]

:class:`DualSurface` flattens all vertices (and extreme rays) of a
tuple collection into numpy arrays once, then evaluates every tuple's
TOP or BOT at a slope in one segmented-reduction pass — one pass over
the dual representation per slope, not one support call per (tuple,
query) pair.

Exactness: the arithmetic mirrors the scalar support path operation for
operation (same products, same sums, same ray threshold), so the
vectorized values are bit-identical to ``dual.top``/``dual.bot`` for
every tuple with at least one vertex; vertex-free tuples (half-planes,
slabs) fall back to the scalar engine. Answer sets produced by
:meth:`DualSurface.answer` therefore equal the exact oracle's
(:func:`repro.geometry.predicates.evaluate_relation`).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.constraints.theta import Theta
from repro.constraints.tuples import GeneralizedTuple
from repro.errors import GeometryError
from repro.geometry import dual
from repro.geometry.polyhedron import warm_boundedness, warm_vertices
from repro.geometry.predicates import ORACLE_TOL

#: Ray threshold of the scalar fast path (``_support_2d_fast``).
_RAY_TOL = 1e-9


class DualSurface:
    """The dual representation of a tuple collection as flat numpy arrays.

    Build once per relation snapshot (one pass over the tuples), then
    evaluate :meth:`top_at` / :meth:`bot_at` per slope — each evaluation
    is a handful of vectorized numpy operations over all tuples at once.
    Per-slope results are memoised, so a batch of queries sharing a slope
    pays for exactly one evaluation pass.

    Example::

        >>> from repro import parse_tuple
        >>> from repro.geometry.vectorized import DualSurface
        >>> items = [(0, parse_tuple("y >= x and y <= 4 and x >= 0"))]
        >>> surface = DualSurface.from_items(items)
        >>> float(surface.top_at(0.0)[0])   # TOP at slope 0 = max y
        4.0
    """

    def __init__(
        self,
        tids: list[int],
        tuples: list[GeneralizedTuple],
    ) -> None:
        self.tids = np.asarray(tids, dtype=np.int64)
        # One batched cone pass and one batched vertex enumeration
        # instead of one per tuple — the dominant cost of building the
        # surface otherwise.
        extensions = [t.extension() for t in tuples]
        warm_boundedness(extensions)
        warm_vertices(extensions)
        self._fallback: list[tuple[int, GeneralizedTuple]] = []
        vx: list[float] = []
        vy: list[float] = []
        starts: list[int] = [0]
        ray_x: list[float] = []
        ray_y: list[float] = []
        ray_owner: list[int] = []
        for row, t in enumerate(tuples):
            poly = t.extension()
            if poly.is_empty:
                raise GeometryError(
                    "DualSurface indexes satisfiable tuples only"
                )
            verts = poly.vertices()
            if not verts:
                # Vertex-free shapes go through the scalar engine; the
                # placeholder row keeps the segmented reduction aligned.
                self._fallback.append((row, t))
                vx.append(0.0)
                vy.append(0.0)
            else:
                for x, y in verts:
                    vx.append(x)
                    vy.append(y)
            starts.append(len(vx))
            if not poly.is_bounded:
                for rx, ry in poly.rays():
                    ray_x.append(rx)
                    ray_y.append(ry)
                    ray_owner.append(row)
        self._vx = np.asarray(vx, dtype=np.float64)
        self._vy = np.asarray(vy, dtype=np.float64)
        self._starts = np.asarray(starts[:-1], dtype=np.intp)
        self._ray_x = np.asarray(ray_x, dtype=np.float64)
        self._ray_y = np.asarray(ray_y, dtype=np.float64)
        self._ray_owner = np.asarray(ray_owner, dtype=np.intp)
        self._top_cache: dict[float, np.ndarray] = {}
        self._bot_cache: dict[float, np.ndarray] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_items(
        cls, items: Iterable[tuple[int, GeneralizedTuple]]
    ) -> "DualSurface":
        """Build from ``(tuple_id, tuple)`` pairs (e.g. a heap scan)."""
        tids: list[int] = []
        tuples: list[GeneralizedTuple] = []
        for tid, t in items:
            tids.append(tid)
            tuples.append(t)
        return cls(tids, tuples)

    def __len__(self) -> int:
        return int(self.tids.size)

    # ------------------------------------------------------------------
    # per-slope evaluation
    # ------------------------------------------------------------------
    def top_at(self, slope: float) -> np.ndarray:
        """``TOP^P(slope)`` for every tuple, in one vectorized pass."""
        slope = float(slope)
        cached = self._top_cache.get(slope)
        if cached is None:
            cached = self._evaluate(slope, upper=True)
            self._top_cache[slope] = cached
        return cached

    def bot_at(self, slope: float) -> np.ndarray:
        """``BOT^P(slope)`` for every tuple, in one vectorized pass."""
        slope = float(slope)
        cached = self._bot_cache.get(slope)
        if cached is None:
            cached = self._evaluate(slope, upper=False)
            self._bot_cache[slope] = cached
        return cached

    def _evaluate(self, slope: float, upper: bool) -> np.ndarray:
        if self.tids.size == 0:
            return np.empty(0, dtype=np.float64)
        # Mirror the scalar support directions exactly:
        # TOP uses c = (-s, 1)  → contribution  (-s)·vx + vy
        # BOT uses c = ( s, -1) → support of s·vx - vy, negated afterwards
        if upper:
            contrib = (-slope) * self._vx + self._vy
        else:
            contrib = slope * self._vx - self._vy
        values = np.maximum.reduceat(contrib, self._starts)
        if self._ray_x.size:
            scale = max(abs(slope), 1.0)
            if upper:
                gain = (-slope) * self._ray_x + self._ray_y
            else:
                gain = slope * self._ray_x - self._ray_y
            unbounded = self._ray_owner[gain > _RAY_TOL * scale]
            values[unbounded] = math.inf
        if not upper:
            values = -values
        for row, t in self._fallback:
            poly = t.extension()
            exact = dual.top(poly, slope) if upper else dual.bot(poly, slope)
            assert exact is not None
            values[row] = exact
        return values

    # ------------------------------------------------------------------
    # Proposition 2.2 answers
    # ------------------------------------------------------------------
    def answer(
        self,
        query_type: str,
        slope: float,
        intercept: float,
        theta: Theta,
        tol: float = ORACLE_TOL,
    ) -> set[int]:
        """Exact oracle answer set for one half-plane selection.

        Applies Proposition 2.2 with the oracle tolerance over the
        vectorized surface values: e.g. ``EXIST(q(>=))`` selects the
        tuples with ``b <= TOP^P(s) + tol``. Bit-identical surface
        values + identical comparisons ⇒ answers identical to the
        scalar oracle (and hence to the refined planner result).
        """
        # set(tolist()) over the masked column: same set as a per-element
        # comprehension, one C pass instead of n int() calls.
        return set(self.answer_tids(query_type, slope, intercept, theta, tol).tolist())

    def answer_tids(
        self,
        query_type: str,
        slope: float,
        intercept: float,
        theta: Theta,
        tol: float = ORACLE_TOL,
    ) -> np.ndarray:
        """:meth:`answer` as a tid column (no Python-set materialisation) —
        the batch executor hands this to :meth:`QueryResult.set_lazy_ids`."""
        surface = self._surface_for(query_type, slope, theta)
        if theta is Theta.GE:
            mask = intercept <= surface + tol
        else:
            mask = intercept >= surface - tol
        return self.tids[mask]

    def _surface_for(
        self, query_type: str, slope: float, theta: Theta
    ) -> np.ndarray:
        if theta not in (Theta.GE, Theta.LE):
            raise GeometryError(
                f"half-plane queries use >= or <=, got {theta}"
            )
        if query_type == "EXIST":
            use_top = theta is Theta.GE
        elif query_type == "ALL":
            use_top = theta is Theta.LE
        else:
            raise GeometryError(
                f"query type must be ALL or EXIST, got {query_type!r}"
            )
        return self.top_at(slope) if use_top else self.bot_at(slope)

    def __repr__(self) -> str:
        return (
            f"<DualSurface tuples={len(self)} vertices={self._vx.size} "
            f"rays={self._ray_x.size} slopes_cached="
            f"{len(self._top_cache) + len(self._bot_cache)}>"
        )


def surfaces_equal_scalar(
    surface: DualSurface, tuples: Sequence[GeneralizedTuple], slope: float
) -> bool:
    """Debug helper: does the vectorized pass match the scalar engine?

    Compares bit-for-bit (infinities included); used by the test-suite.
    """
    top = surface.top_at(slope)
    bot = surface.bot_at(slope)
    for i, t in enumerate(tuples):
        poly = t.extension()
        if dual.top(poly, slope) != top[i] or dual.bot(poly, slope) != bot[i]:
            return False
    return True
