"""Convex polyhedra: the extensions of generalized tuples.

:class:`ConvexPolyhedron` is the geometric half of a generalized tuple. It
answers every question the indexing machinery asks — emptiness,
boundedness, support values (hence ``TOP``/``BOT``), vertices, rays,
bounding boxes, areas — caching aggressively because tuples are immutable.

Dimension 2 uses the self-contained exact engine
(``repro.geometry.support2d`` + ``repro.geometry.cone2d``); higher
dimensions delegate supports to LP (``repro.geometry.supportnd``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import EmptyExtensionError, GeometryError
from repro.geometry import support2d, supportnd
from repro.geometry.cone2d import (
    cone_normals,
    extreme_rays,
    is_pointed_at_origin,
    pointed_many,
)
from repro.geometry.hull import convex_hull_2d, polygon_area, polygon_centroid

if TYPE_CHECKING:  # pragma: no cover
    from repro.constraints.tuples import GeneralizedTuple


class ConvexPolyhedron:
    """The solution set of a generalized tuple, with cached geometry."""

    __slots__ = (
        "_tuple",
        "_dim",
        "_ineqs2d",
        "_ineqsnd",
        "_empty",
        "_bounded",
        "_vertices",
        "_rays",
        "_support_cache",
    )

    def __init__(self, source: "GeneralizedTuple") -> None:
        self._tuple = source
        self._dim = source.dimension
        self._ineqs2d: list | None = None
        self._ineqsnd: list | None = None
        self._empty: bool | None = True if source.syntactically_false else None
        self._bounded: bool | None = None
        self._vertices: list[tuple[float, ...]] | None = None
        self._rays: list[tuple[float, float]] | None = None
        self._support_cache: dict[tuple[float, ...], float | None] = {}

    # ------------------------------------------------------------------
    # representation plumbing
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Ambient dimension d."""
        return self._dim

    @property
    def source(self) -> "GeneralizedTuple":
        """The generalized tuple this polyhedron is the extension of."""
        return self._tuple

    def _as_ineqs2d(self):
        if self._ineqs2d is None:
            self._ineqs2d = support2d.ineqs_from_atoms(self._tuple.constraints)
        return self._ineqs2d

    def _as_ineqsnd(self):
        if self._ineqsnd is None:
            self._ineqsnd = supportnd.ineqs_from_atoms_nd(self._tuple.constraints)
        return self._ineqsnd

    # ------------------------------------------------------------------
    # emptiness / boundedness
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the tuple is unsatisfiable."""
        if self._empty is None:
            if self._dim == 2:
                self._empty = support2d.feasible_point_2d(self._as_ineqs2d()) is None
            else:
                self._empty = supportnd.feasible_point_nd(self._as_ineqsnd()) is None
        return self._empty

    @property
    def is_bounded(self) -> bool:
        """True when the (non-empty) extension is a bounded polytope.

        An empty polyhedron is reported as bounded.
        """
        if self._bounded is None:
            if self.is_empty:
                self._bounded = True
            elif self._dim == 2:
                normals = cone_normals(self._as_ineqs2d())
                self._bounded = is_pointed_at_origin(normals)
            else:
                self._bounded = all(
                    math.isfinite(v)
                    for v in (
                        s
                        for i in range(self._dim)
                        for s in (
                            self.support(_unit(self._dim, i)),
                            self.support(_unit(self._dim, i, -1.0)),
                        )
                    )
                )
        return self._bounded

    def feasible_point(self) -> tuple[float, ...] | None:
        """Any point of the extension, or ``None`` when empty."""
        if self._dim == 2:
            return support2d.feasible_point_2d(self._as_ineqs2d())
        return supportnd.feasible_point_nd(self._as_ineqsnd())

    # ------------------------------------------------------------------
    # support machinery (TOP/BOT live in repro.geometry.dual)
    # ------------------------------------------------------------------
    def support(self, direction: Sequence[float]) -> float | None:
        """``sup { direction·x : x ∈ P }``.

        ``None`` when ``P`` is empty, ``math.inf`` when unbounded in the
        given direction.
        """
        key = tuple(float(v) for v in direction)
        if len(key) != self._dim:
            raise GeometryError(
                f"direction of dimension {len(key)} against polyhedron of "
                f"dimension {self._dim}"
            )
        if key not in self._support_cache:
            if self._dim == 2:
                value = self._support_2d_fast(key)  # type: ignore[arg-type]
            else:
                value = supportnd.support_nd(self._as_ineqsnd(), key)
            self._support_cache[key] = value
        return self._support_cache[key]

    def _support_2d_fast(self, c: tuple[float, float]) -> float | None:
        """Support via cached vertices/rays (O(#vertices) per direction).

        Sound because a finite supremum of a linear functional over a
        polyhedron with at least one vertex is attained at a vertex, and
        unboundedness in direction ``c`` is witnessed by an extreme ray
        with ``c·r > 0``. Vertex-free shapes (half-planes, slabs) fall
        back to the full candidate-enumeration engine.
        """
        if self.is_empty:
            return None
        scale = max(abs(c[0]), abs(c[1]), 1.0)
        if not self.is_bounded:
            for rx, ry in self.rays():
                if c[0] * rx + c[1] * ry > 1e-9 * scale:
                    return math.inf
        verts = self.vertices()
        if not verts:
            return support2d.support_2d(self._as_ineqs2d(), c)
        return max(c[0] * vx + c[1] * vy for vx, vy in verts)

    # ------------------------------------------------------------------
    # explicit geometry (2-D exact, d-dim via qhull)
    # ------------------------------------------------------------------
    def vertices(self) -> list[tuple[float, ...]]:
        """Ordered vertices (CCW hull in 2-D; unordered for d > 2).

        For unbounded 2-D polyhedra this returns the finite vertices only
        (possibly an empty list for vertex-free regions such as
        half-planes); combine with :meth:`rays`.
        """
        if self._vertices is None:
            if self.is_empty:
                self._vertices = []
            elif self._dim == 2:
                ineqs = self._as_ineqs2d()
                tol = support2d.FEAS_TOL
                raw: list[tuple[float, float]] = []
                m = len(ineqs)
                for i in range(m):
                    (a1, b1), r1 = ineqs[i]
                    for j in range(i + 1, m):
                        (a2, b2), r2 = ineqs[j]
                        det = a1 * b2 - a2 * b1
                        scale = max(abs(a1), abs(b1), 1.0) * max(abs(a2), abs(b2), 1.0)
                        if abs(det) <= 1e-13 * scale:
                            continue
                        x = (r1 * b2 - r2 * b1) / det
                        y = (a1 * r2 - a2 * r1) / det
                        if support2d._feasible(ineqs, x, y, tol):
                            raw.append((x, y))
                deduped = _dedupe_points(raw)
                if len(deduped) >= 3:
                    self._vertices = [tuple(p) for p in convex_hull_2d(deduped)]
                else:
                    self._vertices = [tuple(p) for p in deduped]
            else:
                self._vertices = supportnd.vertices_nd(self._as_ineqsnd())
        return list(self._vertices)

    def rays(self) -> list[tuple[float, float]]:
        """Unit extreme rays of the recession cone (2-D only)."""
        if self._dim != 2:
            raise GeometryError("rays() is implemented for dimension 2")
        if self._rays is None:
            if self.is_empty or self.is_bounded:
                self._rays = []
            else:
                self._rays = extreme_rays(cone_normals(self._as_ineqs2d()))
        return list(self._rays)

    def area(self) -> float:
        """Area of a bounded 2-D extension."""
        if self._dim != 2:
            raise GeometryError("area() is implemented for dimension 2")
        if self.is_empty:
            return 0.0
        if not self.is_bounded:
            return math.inf
        return polygon_area(self.vertices())  # type: ignore[arg-type]

    def centroid(self) -> tuple[float, float]:
        """Centroid (weight centre) of a bounded 2-D extension."""
        if self._dim != 2:
            raise GeometryError("centroid() is implemented for dimension 2")
        if self.is_empty:
            raise EmptyExtensionError("centroid of an empty polyhedron")
        if not self.is_bounded:
            raise GeometryError("centroid of an unbounded polyhedron")
        return polygon_centroid(self.vertices())  # type: ignore[arg-type]

    def bounding_box(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Axis-aligned bounding box ``(lows, highs)`` of a bounded extension.

        Raises :class:`GeometryError` for empty or unbounded polyhedra —
        exactly the limitation of MBR-based indexes the paper criticises.
        """
        if self.is_empty:
            raise EmptyExtensionError("bounding box of an empty polyhedron")
        lows = []
        highs = []
        for i in range(self._dim):
            hi = self.support(_unit(self._dim, i))
            lo = self.support(_unit(self._dim, i, -1.0))
            if hi is None or lo is None or not math.isfinite(hi) or not math.isfinite(lo):
                raise GeometryError(
                    "bounding box requires a bounded polyhedron "
                    "(unbounded objects cannot be MBR-approximated)"
                )
            highs.append(hi)
            lows.append(-lo)
        return tuple(lows), tuple(highs)

    def contains_point(self, point: Sequence[float], tol: float = 1e-9) -> bool:
        """Point membership (delegates to the symbolic atoms)."""
        return self._tuple.satisfied_by(point, tol)

    def __repr__(self) -> str:
        state = "empty" if self.is_empty else ("bounded" if self.is_bounded else "unbounded")
        return f"<ConvexPolyhedron dim={self._dim} {state} atoms={len(self._tuple)}>"


def warm_boundedness(polys: Sequence["ConvexPolyhedron"]) -> None:
    """Batch-fill the boundedness cache of many 2-D polyhedra at once.

    Computes the same cone classification :attr:`ConvexPolyhedron.is_bounded`
    would (via :func:`repro.geometry.cone2d.pointed_many`, bit-identical
    to the scalar check) in one set of array passes instead of one
    Python candidate enumeration per polyhedron. Polyhedra that already
    know their boundedness, are empty, or are not 2-D are left for the
    scalar property. This is what makes bulk paths (the vectorized
    build, :class:`~repro.geometry.vectorized.DualSurface`) cheap: the
    per-tuple boundedness question is their dominant cost otherwise.
    """
    todo = [
        p for p in polys
        if p._bounded is None and p._dim == 2 and not p.is_empty
    ]
    if not todo:
        return
    mask = pointed_many([cone_normals(p._as_ineqs2d()) for p in todo])
    for poly, flag in zip(todo, mask):
        poly._bounded = bool(flag)


def warm_vertices(polys: Sequence["ConvexPolyhedron"]) -> None:
    """Batch-fill the vertex cache of many 2-D polyhedra at once.

    Runs the same candidate enumeration as :meth:`ConvexPolyhedron.vertices`
    — pairwise constraint-line intersections, the same determinant and
    feasibility tolerances in the same evaluation order — over padded
    arrays, then hands each polyhedron's surviving candidate list (in
    scalar enumeration order) to the scalar dedupe + hull, so the cached
    vertices are exactly what the property would have computed. Padding
    rows are ``(0, 0, 0)``: their determinant with any line is 0 (never
    a candidate pair) and their feasibility slack is 0 (never rejects a
    point).
    """
    todo = [
        p for p in polys
        if p._vertices is None and p._dim == 2 and not p.is_empty
    ]
    if not todo:
        return
    ineqs_list = [p._as_ineqs2d() for p in todo]
    m_max = max(len(ineqs) for ineqs in ineqs_list)
    if m_max < 2:
        for poly in todo:
            poly._vertices = []
        return
    count = len(todo)
    nx = np.zeros((count, m_max))
    ny = np.zeros((count, m_max))
    beta = np.zeros((count, m_max))
    for row, ineqs in enumerate(ineqs_list):
        for col, ((a, b), rhs) in enumerate(ineqs):
            nx[row, col] = a
            ny[row, col] = b
            beta[row, col] = rhs
    i, j = np.triu_indices(m_max, k=1)
    det = nx[:, i] * ny[:, j] - nx[:, j] * ny[:, i]
    plane_scale = np.maximum(np.maximum(np.abs(nx), np.abs(ny)), 1.0)
    usable = np.abs(det) > 1e-13 * (plane_scale[:, i] * plane_scale[:, j])
    safe_det = np.where(usable, det, 1.0)
    x = (beta[:, i] * ny[:, j] - beta[:, j] * ny[:, i]) / safe_det
    y = (nx[:, i] * beta[:, j] - nx[:, j] * beta[:, i]) / safe_det
    tol = support2d.FEAS_TOL
    point_scale = np.maximum(np.maximum(np.abs(x), np.abs(y)), 1.0)
    slack = (
        nx[:, None, :] * x[:, :, None]
        + ny[:, None, :] * y[:, :, None]
        - beta[:, None, :]
    )
    feasible = np.all(
        slack <= (tol * plane_scale)[:, None, :] * point_scale[:, :, None],
        axis=2,
    )
    good = usable & feasible
    for row, poly in enumerate(todo):
        raw = [
            (float(x[row, k]), float(y[row, k]))
            for k in np.nonzero(good[row])[0]
        ]
        deduped = _dedupe_points(raw)
        if len(deduped) >= 3:
            poly._vertices = [tuple(p) for p in convex_hull_2d(deduped)]
        else:
            poly._vertices = [tuple(p) for p in deduped]


def _unit(dim: int, index: int, sign: float = 1.0) -> tuple[float, ...]:
    return tuple(sign if i == index else 0.0 for i in range(dim))


def _dedupe_points(
    points: Sequence[tuple[float, float]], tol: float = 1e-7
) -> list[tuple[float, float]]:
    result: list[tuple[float, float]] = []
    for p in points:
        if not any(
            abs(p[0] - q[0]) <= tol * max(1.0, abs(p[0]))
            and abs(p[1] - q[1]) <= tol * max(1.0, abs(p[1]))
            for q in result
        ):
            result.append(p)
    return result
