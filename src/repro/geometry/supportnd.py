"""Support functions in arbitrary dimension via linear programming.

The 2-D path of the library is self-contained (``repro.geometry.support2d``).
For ``d > 2`` — the paper's Section 4.4 extension, which its experiments do
not evaluate — supports are computed with ``scipy.optimize.linprog``
(documented substitution, see DESIGN.md §2).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.constraints.theta import Theta
from repro.errors import GeometryError

IneqND = tuple[tuple[float, ...], float]  # (n, beta) meaning n·x <= beta


def ineqs_from_atoms_nd(atoms: Iterable) -> list[IneqND]:
    """Convert weak-inequality atoms to ``n·x ≤ β`` form (any dimension)."""
    result: list[IneqND] = []
    for atom in atoms:
        if atom.theta is Theta.LE:
            result.append((atom.coeffs, -atom.const))
        elif atom.theta is Theta.GE:
            result.append((tuple(-a for a in atom.coeffs), atom.const))
        else:
            raise GeometryError(f"non-weak operator {atom.theta} after normalize")
    return result


def support_nd(ineqs: Sequence[IneqND], c: Sequence[float]) -> float | None:
    """``sup { c·x }`` over the system; ``None`` if infeasible, ``inf`` if unbounded."""
    from scipy.optimize import linprog

    if not ineqs:
        return math.inf if any(v != 0.0 for v in c) else 0.0
    a_ub = np.array([n for n, _ in ineqs], dtype=float)
    b_ub = np.array([beta for _, beta in ineqs], dtype=float)
    result = linprog(
        c=-np.asarray(c, dtype=float),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(None, None)] * a_ub.shape[1],
        method="highs",
    )
    if result.status == 2:  # infeasible
        return None
    if result.status == 3:  # unbounded
        return math.inf
    if not result.success:  # pragma: no cover - numerical trouble
        raise GeometryError(f"linprog failed: {result.message}")
    return float(-result.fun)


def feasible_point_nd(ineqs: Sequence[IneqND]) -> tuple[float, ...] | None:
    """Chebyshev-centre-style interior/feasible point, ``None`` if infeasible.

    Maximises the slack radius ``r`` with ``n·x + |n|·r ≤ β``; for
    full-dimensional bounded systems this is the Chebyshev centre. For
    unbounded systems the radius variable is capped to keep the LP bounded.
    """
    from scipy.optimize import linprog

    if not ineqs:
        return None
    dim = len(ineqs[0][0])
    norms = [math.sqrt(sum(v * v for v in n)) for n, _ in ineqs]
    a_ub = np.array(
        [list(n) + [norm] for (n, _), norm in zip(ineqs, norms)], dtype=float
    )
    b_ub = np.array([beta for _, beta in ineqs], dtype=float)
    c = np.zeros(dim + 1)
    c[-1] = -1.0  # maximise r
    bounds = [(None, None)] * dim + [(0.0, 1e6)]
    result = linprog(c=c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if result.status == 2 or not result.success:
        return None
    return tuple(float(v) for v in result.x[:dim])


def vertices_nd(ineqs: Sequence[IneqND]) -> list[tuple[float, ...]]:
    """Vertices of a bounded full-dimensional d-dim polytope.

    Uses ``scipy.spatial.HalfspaceIntersection`` seeded with a Chebyshev
    centre. Raises :class:`GeometryError` on empty or unbounded input.
    """
    from scipy.spatial import HalfspaceIntersection

    interior = feasible_point_nd(ineqs)
    if interior is None:
        raise GeometryError("vertices_nd: empty polytope")
    halfspaces = np.array(
        [list(n) + [-beta] for n, beta in ineqs], dtype=float
    )
    try:
        intersection = HalfspaceIntersection(halfspaces, np.asarray(interior))
    except Exception as exc:  # qhull raises plain errors on unbounded input
        raise GeometryError(f"vertices_nd failed (unbounded input?): {exc}") from exc
    points = intersection.intersections
    unique: list[tuple[float, ...]] = []
    for p in points:
        tp = tuple(round(float(v), 9) for v in p)
        if tp not in unique:
            unique.append(tp)
    return unique
