"""Computational geometry substrate.

Everything the dual-representation index needs about convex polyhedra:
support functions (exact 2-D engine, LP-backed d-dim engine), recession
cones, hulls, the dual transformation with ``TOP``/``BOT`` evaluation, and
the exact ALL/EXIST predicates used as oracle and refinement step.
"""

from repro.geometry.dual import (
    bot,
    bot_profile_2d,
    dual_line_of_point,
    evaluate_dual_line,
    slope_vector,
    strip_bot_min,
    strip_top_max,
    top,
    top_profile_2d,
)
from repro.geometry.envelope import EnvelopePiece, lower_envelope, upper_envelope
from repro.geometry.hull import convex_hull_2d, polygon_area, polygon_centroid
from repro.geometry.polyhedron import ConvexPolyhedron
from repro.geometry.predicates import (
    all_by_sampling,
    all_halfplane,
    evaluate_relation,
    exist_by_conjunction,
    exist_halfplane,
    halfplane_constraint,
)

__all__ = [
    "ConvexPolyhedron",
    "top",
    "bot",
    "strip_top_max",
    "strip_bot_min",
    "slope_vector",
    "dual_line_of_point",
    "evaluate_dual_line",
    "top_profile_2d",
    "bot_profile_2d",
    "upper_envelope",
    "lower_envelope",
    "EnvelopePiece",
    "convex_hull_2d",
    "polygon_area",
    "polygon_centroid",
    "exist_halfplane",
    "all_halfplane",
    "halfplane_constraint",
    "exist_by_conjunction",
    "all_by_sampling",
    "evaluate_relation",
]
