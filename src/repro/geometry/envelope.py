"""Upper and lower envelopes of line arrangements.

The graph of ``TOP^P`` is the upper envelope of the dual lines of the
polyhedron's vertices (the paper's isomorphism between the upper hull of
``P`` and the ``TOP^P`` graph); ``BOT^P`` is the lower envelope. These
utilities compute the envelopes explicitly — used for profiles, plots,
and property tests that cross-check support-based TOP/BOT evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

Line = tuple[float, float]  # (slope, intercept): y = slope*x + intercept


@dataclass(frozen=True)
class EnvelopePiece:
    """One linear piece of an envelope, valid on ``[x_from, x_to]``."""

    x_from: float
    x_to: float
    slope: float
    intercept: float

    def value(self, x: float) -> float:
        """Evaluate the piece's line at ``x`` (no domain check)."""
        return self.slope * x + self.intercept


def upper_envelope(lines: Sequence[Line]) -> list[EnvelopePiece]:
    """Pieces of ``max_i (m_i x + q_i)``, left to right, covering all of R.

    Duplicate and dominated lines are removed. The classic incremental
    method: sort by slope, keep a "hull" of lines whose pairwise
    intersections are x-monotone.
    """
    return _envelope(lines, upper=True)


def lower_envelope(lines: Sequence[Line]) -> list[EnvelopePiece]:
    """Pieces of ``min_i (m_i x + q_i)``, left to right."""
    mirrored = [(-m, -q) for m, q in lines]
    pieces = _envelope(mirrored, upper=True)
    return [
        EnvelopePiece(p.x_from, p.x_to, -p.slope, -p.intercept) for p in pieces
    ]


def _envelope(lines: Sequence[Line], upper: bool) -> list[EnvelopePiece]:
    if not lines:
        return []
    # Keep, per slope, only the best intercept (max for upper envelope).
    best: dict[float, float] = {}
    for m, q in lines:
        if m not in best or q > best[m]:
            best[m] = q
    ordered = sorted(best.items())  # ascending slope
    hull: list[Line] = []
    # x-coordinates where hull[i] hands over to hull[i+1]
    handover: list[float] = []
    for m, q in ordered:
        while hull:
            m0, q0 = hull[-1]
            # intersection with the current top of the hull
            x = (q0 - q) / (m - m0)
            if handover and x <= handover[-1]:
                hull.pop()
                handover.pop()
            else:
                hull.append((m, q))
                handover.append(x)
                break
        if not hull:
            hull.append((m, q))
    pieces: list[EnvelopePiece] = []
    for i, (m, q) in enumerate(hull):
        x_from = -math.inf if i == 0 else handover[i - 1]
        x_to = math.inf if i == len(hull) - 1 else handover[i]
        pieces.append(EnvelopePiece(x_from, x_to, m, q))
    return pieces


def envelope_value(pieces: Sequence[EnvelopePiece], x: float) -> float:
    """Evaluate an envelope at ``x`` (binary search not needed for tests)."""
    if not pieces:
        raise ValueError("empty envelope")
    for piece in pieces:
        if piece.x_from - 1e-12 <= x <= piece.x_to + 1e-12:
            return piece.value(x)
    raise ValueError(f"x={x} outside envelope domain")  # pragma: no cover
