"""Recession cones of 2-D constraint conjunctions.

The recession cone of ``P = {x : n_i·x ≤ β_i}`` is
``C = {d : n_i·d ≤ 0 for all i}`` — the set of directions along which ``P``
is unbounded. The dual-representation machinery needs three questions
answered about ``C``:

* is ``C = {0}`` (``P`` bounded, assuming ``P`` non-empty)?
* does ``C`` contain a direction ``d`` with ``c·d > 0`` (the support of
  ``P`` in direction ``c`` is ``+∞``)?
* what are the extreme rays of ``C`` (used to report unbounded polyhedra
  and to clip them for display)?

All three are answered by candidate enumeration on the cone intersected
with the unit box — no iterative LP, exact up to a small tolerance.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

Vec2 = tuple[float, float]

#: Tolerance for cone feasibility tests (directions are unit-box scaled).
CONE_TOL = 1e-9


def cone_normals(ineqs: Iterable[tuple[Vec2, float]]) -> list[Vec2]:
    """Extract the non-trivial outward normals from ``n·x ≤ β`` inequalities."""
    normals = []
    for (nx, ny), _beta in ineqs:
        if nx != 0.0 or ny != 0.0:
            normals.append((nx, ny))
    return normals


def _feasible_direction(normals: Sequence[Vec2], d: Vec2, tol: float) -> bool:
    return all(nx * d[0] + ny * d[1] <= tol for nx, ny in normals)


def _boxed_max(normals: Sequence[Vec2], c: Vec2, tol: float = CONE_TOL) -> float:
    """``max c·d`` subject to ``n_i·d ≤ 0`` and ``|d|_∞ ≤ 1``.

    The boxed cone is a non-empty bounded polygon (it contains the origin),
    so the maximum is attained at a vertex: an intersection of two active
    boundaries chosen among the cone planes and the four box edges.
    """
    # Boundaries as (a, b, rhs) for a·x + b·y = rhs; cone planes have rhs 0.
    planes: list[tuple[float, float, float]] = [(nx, ny, 0.0) for nx, ny in normals]
    planes += [(1.0, 0.0, 1.0), (-1.0, 0.0, 1.0), (0.0, 1.0, 1.0), (0.0, -1.0, 1.0)]
    best = 0.0  # the origin is always feasible
    m = len(planes)
    for i in range(m):
        a1, b1, r1 = planes[i]
        for j in range(i + 1, m):
            a2, b2, r2 = planes[j]
            det = a1 * b2 - a2 * b1
            if abs(det) < 1e-15:
                continue
            dx = (r1 * b2 - r2 * b1) / det
            dy = (a1 * r2 - a2 * r1) / det
            if abs(dx) > 1.0 + tol or abs(dy) > 1.0 + tol:
                continue
            if _feasible_direction(normals, (dx, dy), tol):
                best = max(best, c[0] * dx + c[1] * dy)
    return best


def unbounded_in(
    normals: Sequence[Vec2], c: Vec2, tol: float = CONE_TOL
) -> bool:
    """True when the cone contains a direction with ``c·d > 0``.

    Equivalently: the support of any non-empty polyhedron with this
    recession cone is ``+∞`` in direction ``c``.
    """
    if not normals:
        return c[0] != 0.0 or c[1] != 0.0
    scale = max(abs(c[0]), abs(c[1]), 1.0)
    return _boxed_max(normals, c, tol) > tol * scale


def is_pointed_at_origin(normals: Sequence[Vec2], tol: float = CONE_TOL) -> bool:
    """True when ``C = {0}`` — every direction is blocked.

    A polyhedron with a trivial recession cone is bounded.
    """
    if not normals:
        return False
    for c in ((1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)):
        if _boxed_max(normals, c, tol) > tol:
            return False
    return True


#: The four box directions probed by :func:`is_pointed_at_origin`.
_BOX_DIRECTIONS = ((1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0))


def pointed_many(
    normals_per_cone: Sequence[Sequence[Vec2]], tol: float = CONE_TOL
) -> np.ndarray:
    """Batched :func:`is_pointed_at_origin` over many cones at once.

    Returns a boolean array, one entry per cone, classifying each cone
    exactly as the scalar function would: the candidate enumeration,
    tolerances and comparisons are the same expressions evaluated over
    padded arrays, so the classifications agree bit-for-bit. Padding
    planes are ``(0, 0, 1)`` — their determinant with every other plane
    is exactly 0, so the scalar ``abs(det) < 1e-15`` skip eliminates
    them, and a ``(0, 0)`` padding normal satisfies ``0 <= tol`` in the
    feasibility test, so padding never changes a result.

    This is the build path's hot loop: one boundedness question per
    indexed tuple, each individually tiny but dominated by Python
    overhead when asked 10⁴ times in a row.
    """
    count = len(normals_per_cone)
    if count == 0:
        return np.zeros(0, dtype=bool)
    m_max = max(len(normals) for normals in normals_per_cone)
    if m_max == 0:
        return np.zeros(count, dtype=bool)
    p_max = m_max + 4  # cone planes + the four box edges
    a = np.zeros((count, p_max))
    b = np.zeros((count, p_max))
    r = np.ones((count, p_max))  # padding plane (0, 0, 1)
    nx = np.zeros((count, m_max))
    ny = np.zeros((count, m_max))
    trivial = np.zeros(count, dtype=bool)  # no normals → not pointed
    for row, normals in enumerate(normals_per_cone):
        m = len(normals)
        if m == 0:
            trivial[row] = True
            continue
        for col, (x, y) in enumerate(normals):
            a[row, col] = nx[row, col] = x
            b[row, col] = ny[row, col] = y
            r[row, col] = 0.0
        for col, (x, y, rhs) in enumerate(
            ((1.0, 0.0, 1.0), (-1.0, 0.0, 1.0), (0.0, 1.0, 1.0),
             (0.0, -1.0, 1.0)),
            start=m,
        ):
            a[row, col] = x
            b[row, col] = y
            r[row, col] = rhs
    i, j = np.triu_indices(p_max, k=1)
    det = a[:, i] * b[:, j] - a[:, j] * b[:, i]
    usable = np.abs(det) >= 1e-15
    safe_det = np.where(usable, det, 1.0)
    dx = (r[:, i] * b[:, j] - r[:, j] * b[:, i]) / safe_det
    dy = (a[:, i] * r[:, j] - a[:, j] * r[:, i]) / safe_det
    candidate = (
        usable & (np.abs(dx) <= 1.0 + tol) & (np.abs(dy) <= 1.0 + tol)
    )
    feasible = np.all(
        nx[:, None, :] * dx[:, :, None] + ny[:, None, :] * dy[:, :, None]
        <= tol,
        axis=2,
    )
    candidate &= feasible
    pointed = np.ones(count, dtype=bool)
    for cx, cy in _BOX_DIRECTIONS:
        value = cx * dx + cy * dy
        best = np.max(np.where(candidate, value, 0.0), axis=1)
        best = np.maximum(best, 0.0)  # the origin is always feasible
        pointed &= best <= tol
    pointed[trivial] = False
    return pointed


def extreme_rays(normals: Sequence[Vec2], tol: float = CONE_TOL) -> list[Vec2]:
    """Unit extreme rays of the cone.

    Candidates are the rotations ``±rot90(n_i)`` of each normal: in 2-D any
    extreme ray lies on some boundary plane ``n_i·d = 0``. A full-plane cone
    (no constraints) has no extreme rays and is reported as ``[]``; callers
    should check :func:`is_pointed_at_origin`/emptiness of normals first.
    """
    rays: list[Vec2] = []
    for nx, ny in normals:
        norm = math.hypot(nx, ny)
        if norm == 0.0:
            continue
        for d in ((-ny / norm, nx / norm), (ny / norm, -nx / norm)):
            if not _feasible_direction(normals, d, tol):
                continue
            if any(
                abs(d[0] - r[0]) <= 1e-9 and abs(d[1] - r[1]) <= 1e-9 for r in rays
            ):
                continue
            rays.append(d)
    return rays
