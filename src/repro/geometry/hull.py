"""2-D convex hull (Andrew's monotone chain).

Used to order polygon vertices, to compute areas, and by the tuple
constructor :meth:`GeneralizedTuple.from_vertices_2d`.
"""

from __future__ import annotations

from typing import Sequence

Vec2 = tuple[float, float]


def _cross(o: Vec2, a: Vec2, b: Vec2) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull_2d(points: Sequence[Vec2], eps: float = 1e-12) -> list[Vec2]:
    """Counter-clockwise convex hull of a 2-D point set.

    Collinear boundary points are dropped. Degenerate inputs return what
    is left after deduplication: a single point or the two endpoints of a
    segment.
    """
    unique = sorted(set((float(x), float(y)) for x, y in points))
    if len(unique) <= 2:
        return unique
    scale = max(
        1.0,
        max(abs(x) for x, _ in unique),
        max(abs(y) for _, y in unique),
    )
    tol = eps * scale * scale

    lower: list[Vec2] = []
    for p in unique:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= tol:
            lower.pop()
        lower.append(p)
    upper: list[Vec2] = []
    for p in reversed(unique):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= tol:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:  # all points collinear
        return [unique[0], unique[-1]]
    return hull


def polygon_area(hull: Sequence[Vec2]) -> float:
    """Shoelace area of a counter-clockwise simple polygon."""
    if len(hull) < 3:
        return 0.0
    twice = 0.0
    n = len(hull)
    for i in range(n):
        x1, y1 = hull[i]
        x2, y2 = hull[(i + 1) % n]
        twice += x1 * y2 - x2 * y1
    return abs(twice) / 2.0


def clip_polygon_to_box(
    polygon: Sequence[Vec2],
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
) -> list[Vec2]:
    """Sutherland–Hodgman clip of a convex polygon against a box.

    Returns the clipped vertex ring (possibly empty). O(v) per box edge;
    used by the R+-tree piece refiner, where clipped pieces must be
    bounding boxes of actual object geometry.
    """
    def clip_edge(points, inside, intersect):
        result: list[Vec2] = []
        n = len(points)
        for i in range(n):
            current = points[i]
            previous = points[i - 1]
            cur_in = inside(current)
            prev_in = inside(previous)
            if cur_in:
                if not prev_in:
                    result.append(intersect(previous, current))
                result.append(current)
            elif prev_in:
                result.append(intersect(previous, current))
        return result

    def x_cross(p, q, x):
        t = (x - p[0]) / (q[0] - p[0])
        return (x, p[1] + t * (q[1] - p[1]))

    def y_cross(p, q, y):
        t = (y - p[1]) / (q[1] - p[1])
        return (p[0] + t * (q[0] - p[0]), y)

    pts = list(polygon)
    for inside, intersect in (
        (lambda p: p[0] >= xmin, lambda p, q: x_cross(p, q, xmin)),
        (lambda p: p[0] <= xmax, lambda p, q: x_cross(p, q, xmax)),
        (lambda p: p[1] >= ymin, lambda p, q: y_cross(p, q, ymin)),
        (lambda p: p[1] <= ymax, lambda p, q: y_cross(p, q, ymax)),
    ):
        if not pts:
            return []
        pts = clip_edge(pts, inside, intersect)
    return pts


def polygon_centroid(hull: Sequence[Vec2]) -> Vec2:
    """Centroid of a counter-clockwise simple polygon.

    Falls back to the vertex mean for degenerate (zero-area) inputs.
    """
    if len(hull) == 0:
        raise ValueError("centroid of an empty polygon")
    if len(hull) < 3:
        xs = sum(p[0] for p in hull) / len(hull)
        ys = sum(p[1] for p in hull) / len(hull)
        return (xs, ys)
    a2 = 0.0
    cx = 0.0
    cy = 0.0
    n = len(hull)
    for i in range(n):
        x1, y1 = hull[i]
        x2, y2 = hull[(i + 1) % n]
        w = x1 * y2 - x2 * y1
        a2 += w
        cx += (x1 + x2) * w
        cy += (y1 + y2) * w
    if abs(a2) < 1e-14:
        xs = sum(p[0] for p in hull) / len(hull)
        ys = sum(p[1] for p in hull) / len(hull)
        return (xs, ys)
    return (cx / (3.0 * a2), cy / (3.0 * a2))
