"""Exact ALL/EXIST predicates — the ground-truth oracle.

Proposition 2.2 of the paper reduces half-plane containment and
intersection to comparisons against ``TOP^P`` / ``BOT^P``::

    ALL(q(>=), t)   iff  b_d <= BOT^P(s)
    ALL(q(<=), t)   iff  b_d >= TOP^P(s)
    EXIST(q(>=), t) iff  b_d <= TOP^P(s)
    EXIST(q(<=), t) iff  b_d >= BOT^P(s)

These predicates serve three roles:

* the reference oracle against which every index answer is validated;
* the *refinement step* of the approximation techniques (false-hit
  filtering);
* an independent brute-force cross-check (:func:`exist_by_conjunction`)
  used by the property tests.

Empty extensions follow set semantics: EXIST is false, ALL is vacuously
true. Index structures reject empty tuples at insert time, so the
vacuous case only matters for the standalone oracle.
"""

from __future__ import annotations

import math

from repro.constraints.linear import LinearConstraint
from repro.constraints.theta import Theta
from repro.constraints.tuples import GeneralizedTuple
from repro.errors import QueryError
from repro.geometry import dual
from repro.geometry.polyhedron import ConvexPolyhedron

#: Absolute tolerance for intercept comparisons in the oracle.
ORACLE_TOL = 1e-7


def _check_theta(theta: Theta) -> None:
    if theta not in (Theta.GE, Theta.LE):
        raise QueryError(f"half-plane queries use >= or <=, got {theta}")


def exist_halfplane(
    poly: ConvexPolyhedron,
    slope,
    intercept: float,
    theta: Theta,
    tol: float = ORACLE_TOL,
) -> bool:
    """EXIST(q(θ), t): does the extension meet ``x_d θ s·x' + b``?"""
    _check_theta(theta)
    if poly.is_empty:
        return False
    if theta is Theta.GE:
        top_value = dual.top(poly, slope)
        assert top_value is not None
        return intercept <= top_value + tol
    bot_value = dual.bot(poly, slope)
    assert bot_value is not None
    return intercept >= bot_value - tol


def all_halfplane(
    poly: ConvexPolyhedron,
    slope,
    intercept: float,
    theta: Theta,
    tol: float = ORACLE_TOL,
) -> bool:
    """ALL(q(θ), t): is the extension contained in ``x_d θ s·x' + b``?"""
    _check_theta(theta)
    if poly.is_empty:
        return True  # vacuous containment
    if theta is Theta.GE:
        bot_value = dual.bot(poly, slope)
        assert bot_value is not None
        if bot_value == -math.inf:
            return False
        return intercept <= bot_value + tol
    top_value = dual.top(poly, slope)
    assert top_value is not None
    if top_value == math.inf:
        return False
    return intercept >= top_value - tol


def halfplane_constraint(slope, intercept: float, theta: Theta, dimension: int) -> LinearConstraint:
    """The query half-plane ``x_d θ s·x' + b`` as a linear constraint.

    Stored as ``-s·x' + x_d - b θ 0``.
    """
    _check_theta(theta)
    s = dual.slope_vector(slope, dimension)
    coeffs = tuple(-v for v in s) + (1.0,)
    return LinearConstraint(coeffs, -float(intercept), theta)


def exist_by_conjunction(
    t: GeneralizedTuple, slope, intercept: float, theta: Theta
) -> bool:
    """Brute-force EXIST: satisfiability of ``t ∧ q``.

    Independent of the TOP/BOT reduction — used to cross-validate it.
    """
    q = halfplane_constraint(slope, intercept, theta, t.dimension)
    return t.conjoin(GeneralizedTuple([q])).is_satisfiable()


def all_by_sampling(
    t: GeneralizedTuple,
    slope,
    intercept: float,
    theta: Theta,
    tol: float = ORACLE_TOL,
) -> bool:
    """Brute-force necessary test for ALL: every vertex satisfies ``q``.

    For *bounded* polyhedra vertex containment is also sufficient, making
    this an exact independent check on the paper's workloads; unbounded
    polyhedra additionally require every recession ray to point into the
    closed half-plane.
    """
    poly = t.extension()
    if poly.is_empty:
        return True
    q = halfplane_constraint(slope, intercept, theta, t.dimension)
    if not all(q.satisfied_by(v, tol) for v in poly.vertices()):
        return False
    if poly.dimension == 2 and not poly.is_bounded:
        s = dual.slope_vector(slope, 2)[0]
        for rx, ry in poly.rays():
            drift = ry - s * rx
            if theta is Theta.GE and drift < -tol:
                return False
            if theta is Theta.LE and drift > tol:
                return False
        # A vertex-free region (e.g. a half-plane) needs a witness point too.
        if not poly.vertices():
            witness = poly.feasible_point()
            assert witness is not None
            if not q.satisfied_by(witness, tol):
                return False
    return True


def evaluate_relation(
    relation,
    query_type: str,
    slope,
    intercept: float,
    theta: Theta,
    tol: float = ORACLE_TOL,
) -> set[int]:
    """Oracle answer set over a :class:`GeneralizedRelation`.

    ``query_type`` is ``"ALL"`` or ``"EXIST"``; returns the satisfying
    tuple ids. This is what every index result is compared against.
    """
    if query_type not in ("ALL", "EXIST"):
        raise QueryError(f"query type must be ALL or EXIST, got {query_type!r}")
    predicate = all_halfplane if query_type == "ALL" else exist_halfplane
    answer: set[int] = set()
    for tuple_id, t in relation:
        if predicate(t.extension(), slope, intercept, theta, tol):
            answer.add(tuple_id)
    return answer
