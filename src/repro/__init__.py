"""repro — dual-representation indexing for linear constraint databases.

A full reproduction of E. Bertino, B. Catania, B. Chidlovskii,
*Indexing Constraint Databases by Using a Dual Representation* (ICDE 1999):
the constraint data model, the dual transformation, the restricted
B+-tree index of Section 3, the T1/T2 approximation techniques of
Section 4, the R+-tree baseline, and the full experimental harness of
Section 5 — all on a byte-accurate simulated disk with page-access
accounting.

Quick start::

    from repro import parse_tuple, GeneralizedRelation, DualIndexPlanner
    r = GeneralizedRelation([parse_tuple("y >= x and y <= 4 and x >= 0")])
    planner = DualIndexPlanner.build(r, slopes=[-1.0, 0.0, 1.0])
    planner.exist(slope=0.5, intercept=1.0, theta=">=")
"""

from repro.constraints import (
    GeneralizedRelation,
    GeneralizedTuple,
    LinearConstraint,
    Theta,
    parse_constraint,
    parse_tuple,
    parse_tuples,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Theta",
    "LinearConstraint",
    "GeneralizedTuple",
    "GeneralizedRelation",
    "parse_constraint",
    "parse_tuple",
    "parse_tuples",
    "ReproError",
    "__version__",
]

_LAZY_EXPORTS = {
    "ConvexPolyhedron": ("repro.geometry", "ConvexPolyhedron"),
    "DualIndex": ("repro.core", "DualIndex"),
    "DualIndexPlanner": ("repro.core", "DualIndexPlanner"),
    "SlopeSet": ("repro.core", "SlopeSet"),
    "HalfPlaneQuery": ("repro.core", "HalfPlaneQuery"),
    "RPlusTree": ("repro.rtree", "RPlusTree"),
    "BPlusTree": ("repro.btree", "BPlusTree"),
    "Pager": ("repro.storage", "Pager"),
    "ShardedDualIndex": ("repro.shard", "ShardedDualIndex"),
}


def __getattr__(name: str):
    """Lazy re-exports of the heavier subsystems.

    Keeps ``import repro`` light while still exposing the one-stop API
    (``repro.DualIndexPlanner``, ``repro.RPlusTree``, …).
    """
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
