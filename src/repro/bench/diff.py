"""``repro bench-diff``: per-counter deltas between two bench artifacts.

Both inputs are JSON in either of the repo's artifact shapes — a
``MetricsRegistry.collect()`` document (``BENCH_smoke.json``, the smoke
baseline) or a flat ``{"key": number}`` map (legacy ``BENCH_*.json``
summaries). Only numeric scalars are compared; histograms and nested
sections other than ``counters`` are informational and skipped.

The diff reports every changed counter and *gates* on regressions.
What counts as a regression depends on ``--mode``:

* ``ceiling`` (default) — counters are costs (page accesses, false
  hits): current exceeding baseline × (1 + threshold) fails;
* ``floor`` — counters are throughput (the ``BENCH_vector.json`` QPS
  gate): current falling below baseline × (1 - threshold) fails.

Either way a baseline counter missing from the current run fails (the
workload silently shrank), and new counters are listed but never fail —
adding instrumentation must not break CI. Exit code 1 on any
regression, so the CI perf-smoke job tracks the perf trajectory per-PR
instead of re-pinning blind.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_counters(path: str) -> dict[str, float]:
    """Numeric counters from either artifact shape (see module doc)."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    section = doc.get("counters", doc)
    if not isinstance(section, dict):
        raise ValueError(f"{path}: 'counters' is not an object")
    return {
        key: float(value)
        for key, value in section.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def diff_counters(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float = 0.0,
    mode: str = "ceiling",
) -> tuple[list[str], list[str]]:
    """``(report_lines, regressions)`` for two counter maps.

    ``threshold`` is a fractional allowance: with ``mode="ceiling"``,
    0.05 tolerates a 5% rise above baseline before calling it a
    regression; with ``mode="floor"`` the counters are
    higher-is-better and 0.05 tolerates a 5% *fall*. Improvements and
    within-threshold changes are reported but never gate.
    """
    if mode not in ("ceiling", "floor"):
        raise ValueError(f"mode must be 'ceiling' or 'floor', got {mode!r}")
    report: list[str] = []
    regressions: list[str] = []
    for key in sorted(baseline.keys() | current.keys()):
        if key not in current:
            line = f"{key}: {baseline[key]:g} -> MISSING"
            report.append(line)
            regressions.append(line)
        elif key not in baseline:
            report.append(f"{key}: NEW = {current[key]:g}")
        else:
            base, cur = baseline[key], current[key]
            if cur == base:
                continue
            pct = ((cur - base) / base * 100.0) if base else float(0)
            line = (
                f"{key}: {base:g} -> {cur:g} ({cur - base:+g}"
                + (f", {pct:+.1f}%" if base else "")
                + ")"
            )
            report.append(line)
            if mode == "floor":
                regressed = cur < base * (1.0 - threshold)
            else:
                regressed = cur > base * (1.0 + threshold)
            if regressed:
                regressions.append(line)
    return report, regressions


def main(argv: list[str] | None = None) -> int:
    """``repro bench-diff`` entry point. Returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro bench-diff",
        description="diff two bench/smoke JSON artifacts and gate on "
                    "counter regressions",
    )
    parser.add_argument("baseline", help="baseline artifact (JSON)")
    parser.add_argument("current", help="current artifact (JSON)")
    parser.add_argument(
        "--threshold", type=float, default=0.0,
        help="fractional regression allowance per counter "
             "(default 0 = any move past baseline fails)",
    )
    parser.add_argument(
        "--mode", choices=["ceiling", "floor"], default="ceiling",
        help="ceiling: counters are costs, rises fail (default); "
             "floor: counters are throughput, falls fail",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_counters(args.baseline)
        current = load_counters(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    report, regressions = diff_counters(
        baseline, current, threshold=args.threshold, mode=args.mode
    )
    unchanged = len(baseline.keys() & current.keys()) - sum(
        1 for line in report if "->" in line and "MISSING" not in line
    )
    if report:
        print("\n".join(report))
    print(
        f"bench-diff: {unchanged} unchanged, {len(report)} changed/new, "
        f"{len(regressions)} regression(s) "
        f"(threshold {args.threshold:.0%})"
    )
    if regressions:
        print("REGRESSIONS:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
