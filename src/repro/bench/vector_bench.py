"""Columnar-vs-scalar batch throughput (``BENCH_vector.json``).

The tentpole measurement of the columnar B+-tree hot path: the
fig9-medium workload (N=2000 medium objects, k=3 slopes) answered as a
*slope-group fan batch* — for every predefined slope, a fan of 20
intercepts × {EXIST, ALL} × {>=, <=}, i.e. 240 exact-path queries that
group into one merged sweep per (slope, direction, type) — once on the
scalar engine (``columnar=False``, the pre-PR per-entry Python path)
and once on the columnar engine (vectorized descent, array sweeps,
lazy tid-column answers).

Guard rails before any number is reported:

* **answers identical** — every query's id set must match between the
  two engines (the columnar path is a faster arrangement of the same
  computation, not an approximation);
* **page accounting identical** — batch logical reads/writes must be
  bit-identical (the paper's cost metric is untouched by the rewrite).

Either check failing exits 1 and the artifact says which.

Timing uses dedicated :class:`BatchExecutor` instances with the result
LRU disabled — a warm cache would measure ``set.copy`` instead of query
execution. The ``counters`` section feeds ``repro bench-diff --mode
floor`` (the CI QPS gate): ``qps_columnar`` is the pinned floor metric,
``speedup_vs_scalar`` the hardware-portable sanity ratio.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import harness
from repro.core import ALL, EXIST, DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.exec import BatchExecutor
from repro.workloads import make_relation

#: The fig9-medium workload (Figure 9: medium objects, N=2000, k=3).
FIG9_N = 2000
FIG9_SIZE = "medium"
FIG9_K = 3

DEFAULT_OUT = "BENCH_vector.json"
#: Intercepts per (slope, type, theta) combination.
FAN_WIDTH = 20


def fan_batch(k: int, width: int = FAN_WIDTH) -> list[HalfPlaneQuery]:
    """The slope-group fan: ``k × width × 4`` exact-path queries.

    Intercepts sweep the populated key range so per-query answer sets
    span empty to nearly-everything; the per-slope offset keeps fans on
    different slopes from quantizing to identical key sets.
    """
    queries: list[HalfPlaneQuery] = []
    for i, slope in enumerate(SlopeSet.uniform_angles(k)):
        for j in range(width):
            intercept = -40.0 + 80.0 * j / max(width - 1, 1) + 0.37 * i
            queries.append(HalfPlaneQuery(EXIST, slope, intercept, ">="))
            queries.append(HalfPlaneQuery(EXIST, slope, -intercept, "<="))
            queries.append(HalfPlaneQuery(ALL, slope, intercept, ">="))
            queries.append(HalfPlaneQuery(ALL, slope, -intercept, "<="))
    return queries


def time_engine(
    planner: DualIndexPlanner,
    queries: list[HalfPlaneQuery],
    repeats: int,
):
    """``(best seconds, last batch)`` over ``repeats`` cold executions.

    A fresh cache-less executor per attempt: every timed batch pays the
    full descent/sweep/classify/assemble pipeline.
    """
    best = float("inf")
    batch = None
    for _ in range(repeats):
        executor = BatchExecutor(planner, cache_size=0)
        start = time.perf_counter()
        batch = executor.execute(queries)
        best = min(best, time.perf_counter() - start)
    return best, batch


def run_bench(
    n: int = FIG9_N,
    size: str = FIG9_SIZE,
    k: int = FIG9_K,
    seed: int = harness.SEED,
    repeats: int = 5,
    width: int = FAN_WIDTH,
) -> dict:
    """Run both engines and return the ``BENCH_vector.json`` payload."""
    relation = make_relation(n, size, seed=seed)
    slopes = SlopeSet.uniform_angles(k)
    queries = fan_batch(k, width)

    scalar = DualIndexPlanner.build(relation, slopes, columnar=False)
    columnar = DualIndexPlanner.build(relation, slopes, columnar=True)
    # One untimed pass per engine decodes node pages into the columnar
    # cache / buffer pool, so both timed runs start equally warm.
    time_engine(scalar, queries[:1], 1)
    time_engine(columnar, queries[:1], 1)

    scalar_s, scalar_batch = time_engine(scalar, queries, repeats)
    columnar_s, columnar_batch = time_engine(columnar, queries, repeats)

    answers_identical = all(
        a.ids == b.ids
        for a, b in zip(scalar_batch.results, columnar_batch.results)
    )
    pages_identical = (
        scalar_batch.io.logical_reads == columnar_batch.io.logical_reads
        and scalar_batch.io.logical_writes == columnar_batch.io.logical_writes
    )
    speedup = scalar_s / columnar_s

    payload = {
        "workload": {
            "figure": "9 (medium objects)",
            "n": n,
            "size": size,
            "k": k,
            "seed": seed,
            "repeats": repeats,
            "queries": len(queries),
        },
        "engines": [
            {
                "engine": "scalar",
                "batch_seconds": round(scalar_s, 6),
                "qps": round(len(queries) / scalar_s, 1),
                "page_accesses": scalar_batch.page_accesses,
            },
            {
                "engine": "columnar",
                "batch_seconds": round(columnar_s, 6),
                "qps": round(len(queries) / columnar_s, 1),
                "page_accesses": columnar_batch.page_accesses,
            },
        ],
        "answers_identical": answers_identical,
        "pages_identical": pages_identical,
        "speedup_vs_scalar": round(speedup, 2),
        # bench-diff floor-gate input (see module docstring).
        "counters": {
            "qps_scalar": round(len(queries) / scalar_s, 1),
            "qps_columnar": round(len(queries) / columnar_s, 1),
            "speedup_vs_scalar": round(speedup, 2),
        },
    }
    return payload


def format_report(payload: dict) -> str:
    w = payload["workload"]
    lines = [
        f"vector bench — fig9-medium (n={w['n']}, size={w['size']}, "
        f"k={w['k']}, {w['queries']} queries/batch)",
    ]
    for row in payload["engines"]:
        lines.append(
            f"  {row['engine']:8s}: {row['batch_seconds']:.4f}s batch "
            f"({row['qps']:.0f} q/s, {row['page_accesses']} pages)"
        )
    lines.append(f"  speedup: {payload['speedup_vs_scalar']:.2f}x")
    lines.append(
        "  answers identical: %s, pages identical: %s"
        % (payload["answers_identical"], payload["pages_identical"])
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro vector-bench`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro vector-bench",
        description=(
            "columnar-vs-scalar batch QPS on the fig9-medium slope-group "
            "fan (answers and page accounting asserted identical)"
        ),
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"where to write the JSON payload (default {DEFAULT_OUT})",
    )
    parser.add_argument("--n", type=int, default=FIG9_N, help="relation size")
    parser.add_argument(
        "--size", default=FIG9_SIZE, choices=["small", "medium"]
    )
    parser.add_argument("--k", type=int, default=FIG9_K, help="slope count")
    parser.add_argument(
        "--seed", type=int, default=harness.SEED, help="workload seed"
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timed attempts per engine (best-of; default 5)",
    )
    parser.add_argument(
        "--width", type=int, default=FAN_WIDTH,
        help=f"intercepts per (slope,type,theta) fan (default {FAN_WIDTH})",
    )
    args = parser.parse_args(argv)
    payload = run_bench(
        n=args.n, size=args.size, k=args.k, seed=args.seed,
        repeats=args.repeats, width=args.width,
    )
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_report(payload))
    print(f"wrote {args.out}")
    if not payload["answers_identical"]:
        print("columnar answers diverged from scalar", file=sys.stderr)
        return 1
    if not payload["pages_identical"]:
        print("columnar page accounting diverged from scalar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
