"""Fixed-``S`` vs learned-``S`` ablation (``BENCH_tune.json``).

The adaptive-tuning measurement (ROADMAP item 4): the fig9-medium
relation answered under two traffic families — ``skewed`` (slopes
concentrated on a few preferred directions the build-time set did not
anticipate) and ``uniform`` (the distribution ``uniform_angles``
optimises for) — each on two engines:

* **fixed** — the build-time ``SlopeSet.uniform_angles(k)``;
* **learned** — the slope set ``repro.tune`` learns from a slope log
  recorded over that family's own traffic, rebuilt via
  :func:`repro.tune.rebuild_planner`.

Per (family, engine) cell the bench reports total page accesses, T1/T2
false-hit counts and rates, and cache-cold batch QPS. Guard rail
before any number is reported: per-query answers must be bit-identical
between the engines (a learned ``S`` changes cost, never answers);
any mismatch exits 1.

Expectation (Theorems 4.1/4.2): on skewed traffic the learned set
collapses the nearest-anchor distance, so page accesses and false hits
drop sharply; on uniform traffic both engines are within noise. The
``counters`` section feeds ``repro bench-diff --mode floor`` against
``benchmarks/baselines/tune.json`` — ``skew_page_reduction_pct`` is
the pinned CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import harness
from repro.core import DualIndexPlanner, SlopeSet
from repro.exec import BatchExecutor
from repro.obs.slopelog import SlopeLog, logging_slopes
from repro.tune import learn_slopes, predicted_improvement, rebuild_planner
from repro.workloads import make_relation, skewed_queries, uniform_queries

#: The fig9-medium workload (Figure 9: medium objects, N=2000, k=3).
FIG9_N = 2000
FIG9_SIZE = "medium"
FIG9_K = 3

DEFAULT_OUT = "BENCH_tune.json"
#: Queries per family. The scalar T1/T2 path on a non-member slope
#: costs ~0.5 s/query at n=2000 (the cost the ablation exists to show),
#: so this is sized to keep the four cells under a few minutes.
DEFAULT_QUERIES = 120


def _measure(planner: DualIndexPlanner, queries, repeats: int):
    """Per-query T1/T2 sweep costs plus cache-cold batch timing.

    Page accesses, candidates and false hits come from the *scalar*
    planner path — the sweeps Theorems 4.1/4.2 price by nearest-anchor
    distance. (The batch executor would answer non-member slopes
    through the memoised vectorized surface, which hides exactly the
    cost this ablation measures.) QPS still times the batch executor,
    cache-less, because serving happens through it.
    """
    results = [planner.query(q) for q in queries]
    best = float("inf")
    for _ in range(repeats):
        executor = BatchExecutor(planner, cache_size=0)
        start = time.perf_counter()
        executor.execute(queries)
        best = min(best, time.perf_counter() - start)
    return best, results


def _engine_row(name: str, seconds: float, results, n_queries: int) -> dict:
    candidates = sum(r.candidates for r in results)
    false_hits = sum(r.false_hits for r in results)
    return {
        "engine": name,
        "batch_seconds": round(seconds, 6),
        "qps": round(n_queries / seconds, 1),
        "page_accesses": sum(r.page_accesses for r in results),
        "candidates": candidates,
        "false_hits": false_hits,
        "false_hit_rate": round(false_hits / max(candidates, 1), 4),
    }


def run_bench(
    n: int = FIG9_N,
    size: str = FIG9_SIZE,
    k: int = FIG9_K,
    seed: int = harness.SEED,
    queries_per_family: int = DEFAULT_QUERIES,
    repeats: int = 3,
) -> dict:
    """Run the four (family × engine) cells; returns the artifact."""
    relation = make_relation(n, size, seed=seed)
    fixed_slopes = SlopeSet.uniform_angles(k)
    families = {
        "skewed": skewed_queries(relation, queries_per_family, seed=seed),
        "uniform": uniform_queries(relation, queries_per_family, seed=seed),
    }
    payload: dict = {
        "workload": {
            "figure": "9 (medium objects)",
            "n": n,
            "size": size,
            "k": k,
            "seed": seed,
            "queries_per_family": queries_per_family,
            "repeats": repeats,
            "fixed_slopes": [round(s, 6) for s in fixed_slopes],
        },
        "families": {},
        "answers_identical": True,
    }
    counters: dict[str, float] = {}
    for family, queries in families.items():
        fixed = DualIndexPlanner.build(relation, fixed_slopes)
        # Learn S from a slope log recorded over this family's traffic
        # (one untimed observation pass — production would drain the
        # serve layer's log instead).
        log = SlopeLog(capacity=4096, seed=seed)
        with logging_slopes(log):
            BatchExecutor(fixed, cache_size=0).execute(queries)
        snapshot = log.snapshot()
        learned_slopes = learn_slopes(snapshot, k=max(k, 2))
        learned = rebuild_planner(fixed, learned_slopes)

        fixed_s, fixed_results = _measure(fixed, queries, repeats)
        learned_s, learned_results = _measure(learned, queries, repeats)

        identical = all(
            a.ids == b.ids
            for a, b in zip(fixed_results, learned_results)
        )
        payload["answers_identical"] &= identical
        fixed_pages = sum(r.page_accesses for r in fixed_results)
        learned_pages = sum(r.page_accesses for r in learned_results)
        reduction = 100.0 * (1.0 - learned_pages / max(fixed_pages, 1))
        payload["families"][family] = {
            "learned_slopes": [round(s, 6) for s in learned_slopes],
            "prediction": predicted_improvement(
                snapshot, fixed_slopes, learned_slopes
            ),
            "engines": [
                _engine_row("fixed", fixed_s, fixed_results, len(queries)),
                _engine_row(
                    "learned", learned_s, learned_results, len(queries)
                ),
            ],
            "answers_identical": identical,
            "page_reduction_pct": round(reduction, 2),
        }
        counters[f"{family[:4]}_page_reduction_pct"] = round(reduction, 2)
        counters[f"{family[:4]}_qps_learned"] = round(
            len(queries) / learned_s, 1
        )
    # bench-diff floor-gate input: the skew reduction is the pinned CI
    # gate; uniform reduction is reported but pinned permissively (the
    # learner must not *hurt* the traffic the fixed set was built for).
    payload["counters"] = counters
    return payload


def format_report(payload: dict) -> str:
    w = payload["workload"]
    lines = [
        f"tune bench — fig9-medium (n={w['n']}, size={w['size']}, "
        f"k={w['k']}, {w['queries_per_family']} queries/family)",
    ]
    for family, cell in payload["families"].items():
        lines.append(
            f"  {family}: learned S = "
            + ", ".join(f"{s:.3f}" for s in cell["learned_slopes"])
        )
        for row in cell["engines"]:
            lines.append(
                f"    {row['engine']:8s}: {row['page_accesses']:6d} pages, "
                f"{row['false_hits']:5d} false hits "
                f"(rate {row['false_hit_rate']:.3f}), "
                f"{row['qps']:.0f} q/s"
            )
        lines.append(
            f"    page reduction: {cell['page_reduction_pct']:.1f}% "
            f"(predicted cost ratio "
            f"{cell['prediction']['predicted_cost_ratio']:.3f})"
        )
    lines.append(
        f"  answers identical: {payload['answers_identical']}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro tune-bench`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro tune-bench",
        description="Fixed-S vs learned-S ablation on fig9-medium",
    )
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="artifact path (default %(default)s)")
    parser.add_argument("--n", type=int, default=FIG9_N)
    parser.add_argument("--size", default=FIG9_SIZE)
    parser.add_argument("--k", type=int, default=FIG9_K)
    parser.add_argument("--seed", type=int, default=harness.SEED)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    payload = run_bench(
        n=args.n, size=args.size, k=args.k, seed=args.seed,
        queries_per_family=args.queries, repeats=args.repeats,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(format_report(payload))
    print(f"wrote {args.out}")
    if not payload["answers_identical"]:
        print("FAIL: learned-S answers diverged from fixed-S", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
