"""CI perf-smoke: a fixed workload whose page-access counters gate CI.

Runs a small deterministic workload (one relation, a handful of EXIST
and ALL queries) through both competitors — the dual index (T2) and the
R+-tree — and accumulates the paper's cost metric, *logical page
accesses*, into a :class:`~repro.obs.MetricsRegistry`:

* ``smoke_index_pages{structure,type}`` — index-structure accesses;
* ``smoke_total_pages{structure,type}`` — including refinement fetches;
* ``smoke_phase_pages{structure,type,phase}`` — per-phase split from
  the query traces (descend / sweep / fetch);
* ``smoke_results{structure,type}`` — answer sizes (a correctness
  canary: a perf "win" that changes answers is a bug);
* ``smoke_query_seconds{structure}`` — wall-time histogram. Timings are
  *not* gated (they flake on shared runners); only counters are;
* ``smoke_build_pages`` / ``smoke_build_seconds{workers}`` — build-phase
  page traffic (gated; identical for serial and parallel builds) and
  wall time (informational).

The gate compares the registry's ``counters`` section against a
checked-in baseline (``benchmarks/baselines/smoke.json``): any counter
above its baseline value, or any baseline counter missing from the
current run, fails. Logical page counts are deterministic — same seed,
same build, same sweep — so the gate is flake-free by construction.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench import harness
from repro.core import ALL, EXIST
from repro.obs import MetricsRegistry, QueryTrace, tracing

#: Fixed workload parameters. Changing any of these invalidates the
#: checked-in baseline (regenerate with ``repro smoke --update-baseline``).
SMOKE_N = 500
SMOKE_SIZE = "small"
SMOKE_K = 3
SMOKE_QUERIES = 4

DEFAULT_BASELINE = os.path.join("benchmarks", "baselines", "smoke.json")
DEFAULT_OUT = "BENCH_smoke.json"


def default_baseline() -> str:
    """Resolve the baseline path convention.

    The baseline lives at ``benchmarks/baselines/smoke.json`` *relative
    to the repository root*. The path is tried relative to the current
    working directory first (the CI case: jobs run from the checkout
    root), then anchored at the repository root located from this
    module's location, so ``repro smoke`` also works from any
    subdirectory of a checkout. ``--baseline PATH`` overrides both.
    """
    if os.path.exists(DEFAULT_BASELINE):
        return DEFAULT_BASELINE
    root = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "..")
    )
    candidate = os.path.join(root, DEFAULT_BASELINE)
    if os.path.exists(candidate):
        return candidate
    return DEFAULT_BASELINE

#: Phases whose page counts the registry splits out.
PHASES = ("descend", "sweep", "fetch")


def run_smoke(
    registry: MetricsRegistry | None = None,
    n: int = SMOKE_N,
    size: str = SMOKE_SIZE,
    k: int = SMOKE_K,
    count: int = SMOKE_QUERIES,
    shards: int = 1,
    build_workers: int = 0,
    data_dir: str | None = None,
) -> MetricsRegistry:
    """Run the workload and return the populated registry.

    The defaults are the CI gate's fixed parameters; ``repro stats``
    reuses this with user-chosen ones. ``build_workers`` selects the
    build path timed by the build leg (the resulting index — and so
    ``smoke_build_pages`` — is byte-identical either way); ``shards > 1``
    adds a sharded-engine leg whose counters are new (warn-only) until
    pinned into the baseline; ``data_dir`` adds a durable save/open leg
    under that directory.
    """
    registry = registry if registry is not None else MetricsRegistry()
    _run_build_leg(registry, n, size, k, build_workers)
    index_pages = registry.counter(
        "smoke_index_pages",
        "Index-structure page accesses over the smoke batch",
        labelnames=("structure", "type"),
    )
    total_pages = registry.counter(
        "smoke_total_pages",
        "Total page accesses (index + refinement) over the smoke batch",
        labelnames=("structure", "type"),
    )
    phase_pages = registry.counter(
        "smoke_phase_pages",
        "Per-phase logical page accesses over the smoke batch",
        labelnames=("structure", "type", "phase"),
    )
    results = registry.counter(
        "smoke_results",
        "Total answer tuples over the smoke batch (correctness canary)",
        labelnames=("structure", "type"),
    )
    seconds = registry.histogram(
        "smoke_query_seconds",
        "Per-query wall time (informational; never gated)",
        labelnames=("structure",),
        buckets=(0.001, 0.01, 0.1, 1.0, 10.0),
    )
    structures = (
        ("dual", harness.dual_planner(n, size, k)),
        ("rplus", harness.rplus_planner(n, size)),
    )
    for qtype in (EXIST, ALL):
        queries = harness.queries_for(n, size, qtype, k, count=count)
        for name, planner in structures:
            for query in queries:
                start = time.perf_counter()
                with tracing(QueryTrace(name="smoke")):
                    res = planner.query(query)
                seconds.labels(structure=name).observe(
                    time.perf_counter() - start
                )
                index_pages.labels(structure=name, type=qtype).inc(
                    res.index_accesses
                )
                total_pages.labels(structure=name, type=qtype).inc(
                    res.page_accesses
                )
                results.labels(structure=name, type=qtype).inc(len(res.ids))
                phases = res.trace.phase_pages()
                for phase in PHASES:
                    count = phases.get(phase, 0)
                    if count:
                        phase_pages.labels(
                            structure=name, type=qtype, phase=phase
                        ).inc(count)
    _run_batch_leg(registry, structures[0][1], n, size, k, count)
    if shards > 1:
        _run_shard_leg(registry, n, size, k, count, shards, build_workers)
    if data_dir is not None:
        _run_durable_leg(registry, n, size, k, count, data_dir)
    return registry


def _run_build_leg(
    registry: MetricsRegistry, n: int, size: str, k: int, build_workers: int
) -> None:
    """Time a full index build and count its page traffic.

    Adds ``smoke_build_pages`` (deterministic — the parallel and serial
    build paths stage identical keys, so the page layout and the
    logical write count are byte-identical) and the informational
    ``smoke_build_seconds`` histogram. The relation is regenerated from
    scratch so tuple-extension memoisation in the shared harness cache
    cannot hide build work.
    """
    from repro.core import DualIndexPlanner, SlopeSet
    from repro.storage.pager import Pager
    from repro.workloads import make_relation

    relation = make_relation(n, size, seed=harness.SEED)
    pager = Pager()
    start = time.perf_counter()
    with pager.measure() as scope:
        DualIndexPlanner.build(
            relation, SlopeSet.uniform_angles(k), pager=pager,
            workers=build_workers,
        )
    elapsed = time.perf_counter() - start
    registry.counter(
        "smoke_build_pages",
        "Logical page accesses of a full smoke-workload index build",
    ).inc(scope.delta.logical_reads + scope.delta.logical_writes)
    registry.histogram(
        "smoke_build_seconds",
        "Index build wall time (informational; never gated)",
        labelnames=("workers",),
        buckets=(0.01, 0.1, 1.0, 10.0, 60.0),
    ).labels(workers=str(build_workers)).observe(elapsed)


def _run_shard_leg(
    registry: MetricsRegistry,
    n: int,
    size: str,
    k: int,
    count: int,
    shards: int,
    build_workers: int,
) -> None:
    """Optional sharded-engine leg (``--shards N`` with N > 1).

    Fans the smoke batch across a :class:`ShardedDualIndex` and records
    ``smoke_shard_pages``/``smoke_shard_results`` plus the engine's own
    fleet series — ``shard_fanout_*`` and the per-shard
    ``shard_exec_*{shard=i}`` / ``shard_pages{shard=i}`` families the
    facade drains from its shard-local registries — so ``repro stats``
    sees sharded traffic. The extra families are distinct names from
    the gated default-workload counters (they cannot inflate them), and
    new keys warn rather than gate.
    """
    from repro.core import HalfPlaneQuery, SlopeSet
    from repro.shard import ShardedDualIndex
    from repro.workloads import make_relation

    queries: list[HalfPlaneQuery] = []
    for qtype in (EXIST, ALL):
        queries.extend(harness.queries_for(n, size, qtype, k, count=count))
    engine = ShardedDualIndex.build(
        make_relation(n, size, seed=harness.SEED),
        SlopeSet.uniform_angles(k),
        shards=shards,
        workers=build_workers,
        registry=registry,
    )
    try:
        batch = engine.query_batch(queries)
        registry.counter(
            "smoke_shard_pages",
            "Total page accesses of the sharded smoke leg",
            labelnames=("shards",),
        ).labels(shards=str(shards)).inc(batch.page_accesses)
        registry.counter(
            "smoke_shard_results",
            "Total answer tuples of the sharded smoke leg",
            labelnames=("shards",),
        ).labels(shards=str(shards)).inc(
            sum(len(res.ids) for res in batch.results)
        )
    finally:
        engine.close()


def _run_durable_leg(
    registry: MetricsRegistry, n: int, size: str, k: int, count: int,
    data_dir: str,
) -> None:
    """Durable save/open leg (``--data-dir``).

    Builds the smoke dual index on a WAL-mode :class:`FileDisk` under
    ``data_dir``, saves it (checkpoint + catalog), reopens it from disk
    and answers the smoke batch on both engines, asserting identical
    answer sets. Adds ``smoke_durable_pages``/``smoke_durable_results``;
    the durability counters themselves (``wal_appends``, ``wal_fsyncs``,
    ``checkpoint_pages``) register in the process-global registry as a
    side effect of running a WAL-mode disk — a run without this leg
    shows none of them.
    """
    from repro.core import DualIndexPlanner, SlopeSet
    from repro.errors import VerificationError
    from repro.storage import FileDisk, Pager, open_planner, save_planner
    from repro.workloads import make_relation

    engine_dir = os.path.join(data_dir, "smoke-engine")
    disk = FileDisk(engine_dir, durability="wal")
    planner = DualIndexPlanner.build(
        make_relation(n, size, seed=harness.SEED),
        SlopeSet.uniform_angles(k),
        pager=Pager(disk=disk),
    )
    save_planner(planner, engine_dir)
    queries = []
    for qtype in (EXIST, ALL):
        queries.extend(harness.queries_for(n, size, qtype, k, count=count))
    reopened = open_planner(engine_dir)
    pages = 0
    answers = 0
    try:
        for query in queries:
            live = planner.query(query)
            restored = reopened.query(query)
            if restored.ids != live.ids:
                raise VerificationError(
                    f"durable leg: reopened engine diverged on {query!r}"
                )
            pages += restored.page_accesses
            answers += len(restored.ids)
    finally:
        reopened.index.pager.disk.close()
        disk.close()
    registry.counter(
        "smoke_durable_pages",
        "Total page accesses of the reopened-from-disk smoke leg",
    ).inc(pages)
    registry.counter(
        "smoke_durable_results",
        "Total answer tuples of the reopened-from-disk smoke leg "
        "(must match the live engine)",
    ).inc(answers)


def _run_batch_leg(
    registry: MetricsRegistry, dual, n: int, size: str, k: int, count: int
) -> None:
    """Drive the batch executor over the same workload (dual index only).

    Adds ``smoke_batch_pages``/``smoke_batch_results`` plus the
    executor's own ``exec_*`` cache/batch counters to the registry. The
    batch mixes the harness's interior-slope queries (vectorized path),
    one exact-slope query per predefined slope (merged-sweep path), and
    one repeated query (a deterministic intra-batch cache hit) — all
    derived from fixed parameters, so every counter is deterministic.
    """
    from repro.core import HalfPlaneQuery
    from repro.exec import BatchExecutor

    queries: list[HalfPlaneQuery] = []
    for qtype in (EXIST, ALL):
        queries.extend(harness.queries_for(n, size, qtype, k, count=count))
    for i, slope in enumerate(dual.index.slopes):
        queries.append(HalfPlaneQuery(EXIST, slope, 2.0 + i, ">="))
        queries.append(HalfPlaneQuery(ALL, slope, -2.0 - i, "<="))
    queries.append(queries[0])  # repeated query → one guaranteed cache hit
    batch = BatchExecutor(dual, registry=registry).execute(queries)
    registry.counter(
        "smoke_batch_pages",
        "Total page accesses of the smoke batch-execution leg",
    ).inc(batch.page_accesses)
    registry.counter(
        "smoke_batch_results",
        "Total answer tuples of the smoke batch-execution leg",
    ).inc(sum(len(res.ids) for res in batch.results))


def check_baseline(current: dict, baseline: dict) -> list[str]:
    """Compare collected counters against a baseline; return violations.

    ``current`` and ``baseline`` are ``MetricsRegistry.collect()``-shaped
    dicts. Only the ``counters`` section is gated: a counter above its
    baseline value is a regression, and a baseline counter absent from
    the current run means the workload silently shrank — both fail.
    New counters (present now, absent from the baseline) only warn via
    the caller's report, so adding instrumentation never breaks CI.
    """
    violations: list[str] = []
    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for key, limit in sorted(base_counters.items()):
        if key not in cur_counters:
            violations.append(
                f"baseline counter {key} missing from current run"
            )
        elif cur_counters[key] > limit:
            violations.append(
                f"{key}: {cur_counters[key]:g} exceeds baseline {limit:g}"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    """``repro smoke`` entry point. Returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro smoke",
        description="run the CI perf-smoke workload and gate on a baseline",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"where to write the metrics JSON (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=(
            "baseline to gate against; by convention the checked-in "
            f"{DEFAULT_BASELINE} relative to the repository root, found "
            "from the working directory or the installed checkout "
            "(default: that convention)"
        ),
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="also run a sharded-engine leg with this many shards "
             "(default 1 = unsharded only; the extra counters are new, "
             "so they warn rather than gate until the baseline is "
             "re-pinned)",
    )
    parser.add_argument(
        "--build-workers", type=int, default=0,
        help="worker processes for the build leg (default 0 = serial "
             "legacy path; >=2 uses the parallel vectorized path — the "
             "built index is byte-identical either way)",
    )
    parser.add_argument(
        "--data-dir", default=None,
        help="run the whole workload file-backed (sets REPRO_DATA_DIR) "
             "under this directory and add the durable save/open leg; "
             "page counters must not move (the FileDisk accounting is "
             "bit-identical to the simulator's)",
    )
    args = parser.parse_args(argv)
    if args.baseline is None:
        args.baseline = default_baseline()
    if args.data_dir is not None:
        # Every default pager in this process now runs file-backed.
        os.environ["REPRO_DATA_DIR"] = args.data_dir

    registry = run_smoke(shards=args.shards, build_workers=args.build_workers,
                         data_dir=args.data_dir)
    current = registry.collect()
    with open(args.out, "w") as handle:
        handle.write(registry.export_json())
        handle.write("\n")
    print(f"wrote {args.out} ({len(current['counters'])} counters)")

    if args.update_baseline:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        with open(args.baseline, "w") as handle:
            json.dump({"counters": current["counters"]}, handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"updated baseline {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update-baseline",
              file=sys.stderr)
        return 2
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    violations = check_baseline(current, baseline)
    new_keys = sorted(
        set(current["counters"]) - set(baseline.get("counters", {}))
    )
    if new_keys:
        print(f"note: {len(new_keys)} counters not in baseline "
              f"(e.g. {new_keys[0]})")
    if violations:
        print("perf-smoke FAILED:", file=sys.stderr)
        for line in violations:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"perf-smoke OK: {len(baseline.get('counters', {}))} counters "
          f"within baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
