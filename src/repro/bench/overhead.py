"""``repro overhead``: budget check for tracing's wall-time cost.

The observability layer's contract is that tracing is cheap: disabled,
the hooks are one global load and a ``None`` check; enabled, spans only
snapshot counters at phase boundaries. This tool measures both modes
over the deterministic smoke query workload and fails when the traced
run exceeds the untraced run by more than a fractional budget (CI uses
5%).

Timing methodology: wall time is noisy on shared CI runners, so each
mode takes the **best of N repeats** (minimum is the standard robust
estimator for "how fast can this code run"), and the comparison adds a
small absolute slack so microsecond-scale workloads can't fail on
scheduler jitter alone.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import harness
from repro.core.query import ALL, EXIST
from repro.obs.trace import QueryTrace, tracing

#: Absolute slack added to the budget (seconds) — guards tiny workloads
#: against pure timer/scheduler noise.
ABSOLUTE_SLACK = 0.010


def _run_workload(planner, queries, traced: bool) -> float:
    start = time.perf_counter()
    if traced:
        for query in queries:
            with tracing(QueryTrace(name="overhead")):
                planner.query(query)
    else:
        for query in queries:
            planner.query(query)
    return time.perf_counter() - start


def measure(
    n: int = 500,
    size: str = "small",
    k: int = 3,
    count: int = 4,
    repeats: int = 5,
) -> tuple[float, float]:
    """``(untraced_best, traced_best)`` seconds over the smoke queries."""
    planner = harness.dual_planner(n, size, k)
    queries = []
    for qtype in (EXIST, ALL):
        queries.extend(harness.queries_for(n, size, qtype, k, count=count))
    # Warm both paths once (buffer pool, key caches) so neither mode
    # pays cold-start costs the other already amortized.
    _run_workload(planner, queries, traced=False)
    _run_workload(planner, queries, traced=True)
    untraced = min(
        _run_workload(planner, queries, traced=False)
        for _ in range(repeats)
    )
    traced = min(
        _run_workload(planner, queries, traced=True) for _ in range(repeats)
    )
    return untraced, traced


def main(argv: list[str] | None = None) -> int:
    """``repro overhead`` entry point. Returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro overhead",
        description="gate tracing overhead against a wall-time budget",
    )
    parser.add_argument(
        "--budget", type=float, default=0.05,
        help="max fractional traced-over-untraced overhead (default 0.05)",
    )
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of repeats per mode (default 5)")
    parser.add_argument("--n", type=int, default=500)
    parser.add_argument("--size", default="small")
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--count", type=int, default=4)
    args = parser.parse_args(argv)
    untraced, traced = measure(
        n=args.n, size=args.size, k=args.k, count=args.count,
        repeats=args.repeats,
    )
    limit = untraced * (1.0 + args.budget) + ABSOLUTE_SLACK
    overhead = (traced - untraced) / untraced if untraced else 0.0
    print(
        f"untraced best {untraced * 1000:.3f} ms, "
        f"traced best {traced * 1000:.3f} ms "
        f"({overhead:+.1%} vs budget {args.budget:.0%} "
        f"+ {ABSOLUTE_SLACK * 1000:.0f} ms slack)"
    )
    if traced > limit:
        print(
            f"overhead: traced run exceeded budget "
            f"({traced * 1000:.3f} ms > {limit * 1000:.3f} ms)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
