"""``repro overhead``: budget check for tracing's wall-time cost.

The observability layer's contract is that tracing is cheap: disabled,
the hooks are one global load and a ``None`` check; enabled, spans only
snapshot counters at phase boundaries. This tool measures both modes
over the deterministic smoke query workload and fails when the traced
run exceeds the untraced run by more than a fractional budget (CI uses
5%).

Timing methodology: wall time is noisy on shared CI runners, so each
mode takes the **best of N repeats** (minimum is the standard robust
estimator for "how fast can this code run"), and the comparison adds a
small absolute slack so microsecond-scale workloads can't fail on
scheduler jitter alone.

``--serve`` gates the *request*-tracing layer instead: the same engine
is served from an embedded server with ``trace_sample`` off and on in
alternation, and each closed-loop load run is timed end to end. Serve
runs are hundreds of milliseconds of socket I/O, where shared-runner
jitter is large and drifts over time, so the serve leg scores matched
*pairs* — each (off, on) pair runs back to back and the gate checks
the best pair's delta, never one leg's lucky minimum against the
other's typical draw. This is the CI leg holding the serve path's
tracing + slow-query log + cost watchdog to its ≤3% budget.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

from repro.bench import harness
from repro.core.query import ALL, EXIST
from repro.obs.trace import QueryTrace, tracing

#: Absolute slack added to the budget (seconds) — guards tiny workloads
#: against pure timer/scheduler noise.
ABSOLUTE_SLACK = 0.010

#: Serve-leg slack (seconds). The serve gate times a closed-loop socket
#: workload end to end, and on small shared (often single-core) CI
#: runners identical configurations reproduce with roughly ±6-7 ms of
#: jitter per leg even under best-of-N — GIL handoffs around
#: ``socket.send`` amplify microsecond-scale bookkeeping several-fold.
#: The slack absorbs that measured floor; the fractional budget still
#: catches real regressions (re-adding per-insert ranking sorts or a
#: denser span cadence each cost more than this on their own).
SERVE_ABSOLUTE_SLACK = 0.015


def _run_workload(planner, queries, traced: bool) -> float:
    start = time.perf_counter()
    if traced:
        for query in queries:
            with tracing(QueryTrace(name="overhead")):
                planner.query(query)
    else:
        for query in queries:
            planner.query(query)
    return time.perf_counter() - start


def measure(
    n: int = 500,
    size: str = "small",
    k: int = 3,
    count: int = 4,
    repeats: int = 5,
) -> tuple[float, float]:
    """``(untraced_best, traced_best)`` seconds over the smoke queries."""
    planner = harness.dual_planner(n, size, k)
    queries = []
    for qtype in (EXIST, ALL):
        queries.extend(harness.queries_for(n, size, qtype, k, count=count))
    # Warm both paths once (buffer pool, key caches) so neither mode
    # pays cold-start costs the other already amortized.
    _run_workload(planner, queries, traced=False)
    _run_workload(planner, queries, traced=True)
    untraced = min(
        _run_workload(planner, queries, traced=False)
        for _ in range(repeats)
    )
    traced = min(
        _run_workload(planner, queries, traced=True) for _ in range(repeats)
    )
    return untraced, traced


def _serve_elapsed(
    planner, queries, requests: int, concurrency: int, trace_sample: int
) -> float:
    """One timed closed-loop load run against an embedded server."""
    from repro.serve.loadgen import run_loadgen
    from repro.serve.testing import ServerThread

    server = ServerThread(
        engine=planner, trace_sample=trace_sample).start()
    try:
        report = asyncio.run(run_loadgen(
            "127.0.0.1", server.server.port, queries,
            mode="closed", requests=requests, concurrency=concurrency,
            warmup=min(64, requests),
            # Client-minted ids on every request, but the *server* owns
            # the span cadence: client-forced sampling would trace
            # nearly every coalesced batch and measure the span hooks
            # (gated separately), not the request-tracing layer.
            trace=bool(trace_sample),
            trace_sample=0,
        ))
        if report["errors"]:
            raise RuntimeError(
                f"loadgen reported {report['errors']} errors")
        return report["elapsed_s"]
    finally:
        server.stop()


def measure_serve(
    n: int = 500,
    size: str = "small",
    k: int = 3,
    count: int = 4,
    repeats: int = 3,
    requests: int = 400,
    concurrency: int = 8,
    trace_sample: int = 64,
) -> tuple[float, float, float]:
    """``(off_best, on_best, best_paired_delta)`` serve-path seconds.

    Both modes answer the same closed-loop workload; the traced mode
    runs with per-request ids, the cost watchdog, the slow-query log,
    and a span tree every ``trace_sample`` requests — the full
    production observability surface, not a stripped-down one. The
    default cadence (64) matches what the CI serve job drives; span
    trees are the one per-request knob, and the gate prices them at
    the rate production actually pays.
    """
    planner = harness.dual_planner(n, size, k)
    queries = []
    for qtype in (EXIST, ALL):
        queries.extend(harness.queries_for(n, size, qtype, k, count=count))
    # Interleave the two modes (off, on, off, on, ...) rather than
    # timing all of one then all of the other: wall-clock drift on a
    # shared runner (thermal, noisy neighbours) then lands on both
    # legs instead of inflating whichever ran second. Each (off, on)
    # pair is a matched back-to-back experiment; the gate scores the
    # *best pair's* delta, so one leg drawing a lucky quiet window that
    # the other never sees cannot fake (or mask) an overhead.
    offs, ons = [], []
    for _ in range(repeats):
        offs.append(_serve_elapsed(
            planner, queries, requests, concurrency, 0))
        ons.append(_serve_elapsed(
            planner, queries, requests, concurrency, trace_sample))
    paired = min(b - a for a, b in zip(offs, ons))
    return min(offs), min(ons), paired


def main(argv: list[str] | None = None) -> int:
    """``repro overhead`` entry point. Returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro overhead",
        description="gate tracing overhead against a wall-time budget",
    )
    parser.add_argument(
        "--budget", type=float, default=0.05,
        help="max fractional traced-over-untraced overhead (default 0.05)",
    )
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of repeats per mode (default 5)")
    parser.add_argument("--n", type=int, default=500)
    parser.add_argument("--size", default="small")
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--count", type=int, default=4)
    parser.add_argument(
        "--serve", action="store_true",
        help="gate the serve path's request tracing (ids + watchdog + "
             "slow-query log) instead of the in-process span hooks",
    )
    parser.add_argument(
        "--requests", type=int, default=400,
        help="serve mode: closed-loop requests per timed run",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8,
        help="serve mode: closed-loop client connections",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=64,
        help="serve mode: span-tree cadence in the traced run "
             "(default 64, the CI serve cadence)",
    )
    args = parser.parse_args(argv)
    if args.serve:
        untraced, traced, paired = measure_serve(
            n=args.n, size=args.size, k=args.k, count=args.count,
            repeats=args.repeats, requests=args.requests,
            concurrency=args.concurrency, trace_sample=args.trace_sample,
        )
        # Gate on the best matched pair's delta: the leg minima above
        # are reported for context, but comparing them directly lets a
        # single lucky untraced draw fail (or a lucky traced draw pass)
        # the whole gate on a noisy shared runner.
        allowed = untraced * args.budget + SERVE_ABSOLUTE_SLACK
        print(
            f"serve untraced best {untraced * 1000:.3f} ms, "
            f"traced best {traced * 1000:.3f} ms, "
            f"best paired delta {paired * 1000:+.3f} ms "
            f"(allowed {allowed * 1000:.3f} ms = budget "
            f"{args.budget:.0%} + "
            f"{SERVE_ABSOLUTE_SLACK * 1000:.0f} ms slack)"
        )
        if paired > allowed:
            print(
                f"overhead: tracing cost exceeded budget "
                f"({paired * 1000:+.3f} ms > {allowed * 1000:.3f} ms)",
                file=sys.stderr,
            )
            return 1
        return 0
    untraced, traced = measure(
        n=args.n, size=args.size, k=args.k, count=args.count,
        repeats=args.repeats,
    )
    limit = untraced * (1.0 + args.budget) + ABSOLUTE_SLACK
    overhead = (traced - untraced) / untraced if untraced else 0.0
    print(
        f"untraced best {untraced * 1000:.3f} ms, "
        f"traced best {traced * 1000:.3f} ms "
        f"({overhead:+.1%} vs budget {args.budget:.0%} "
        f"+ {ABSOLUTE_SLACK * 1000:.0f} ms slack)"
    )
    if traced > limit:
        print(
            f"overhead: traced run exceeded budget "
            f"({traced * 1000:.3f} ms > {limit * 1000:.3f} ms)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
