"""Shared experiment harness for the Section 5 reproduction.

Builds (and caches per process) the workloads and index structures, runs
query batches with per-query I/O accounting, and aggregates the metrics
the figures report:

* ``index`` — index-structure page accesses (descent + swept leaves for
  the dual index; visited nodes for the R-tree family). This is the
  metric of the paper's cost theorems and the headline of Figures 8–9.
* ``total`` — end-to-end accesses including page-batched refinement
  record fetches (secondary metric; see EXPERIMENTS.md for discussion).
* candidate/false-hit/duplicate counts.

The paper's full sweep (N up to 12 000, k up to 5, two object classes)
runs when the environment variable ``REPRO_FULL=1`` is set; the default
is a reduced sweep sized for CI.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
from dataclasses import asdict, dataclass
from typing import Callable, Sequence

from repro.constraints.relation import GeneralizedRelation
from repro.core import DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.obs import QueryTrace, tracing
from repro.obs import trace as obs
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.planner import RTreePlanner
from repro.storage import Pager
from repro.workloads import make_queries, make_relation

#: The paper's parameters (Section 5).
PAPER_N_VALUES = (500, 2000, 4000, 8000, 12000)
PAPER_K_VALUES = (2, 3, 4, 5)
QUERIES_PER_TYPE = 6
SELECTIVITY = (0.10, 0.15)
SEED = 1999


def full_run() -> bool:
    """True when the full paper-scale sweep was requested."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


def n_values() -> tuple[int, ...]:
    return PAPER_N_VALUES if full_run() else (500, 2000, 4000)


def k_values() -> tuple[int, ...]:
    return PAPER_K_VALUES if full_run() else (2, 3, 5)


# ----------------------------------------------------------------------
# cached builders
# ----------------------------------------------------------------------
_relations: dict[tuple, GeneralizedRelation] = {}
_duals: dict[tuple, DualIndexPlanner] = {}
_rplus: dict[tuple, RTreePlanner] = {}


def relation(n: int, size: str, seed: int = SEED) -> GeneralizedRelation:
    """Cached Section 5 relation."""
    key = (n, size, seed)
    if key not in _relations:
        _relations[key] = make_relation(n, size, seed=seed)
    return _relations[key]


def dual_planner(
    n: int, size: str, k: int, seed: int = SEED, technique: str = "T2"
) -> DualIndexPlanner:
    """Cached dual-index planner (its own pager, per-structure space)."""
    key = (n, size, k, seed, technique)
    if key not in _duals:
        _duals[key] = DualIndexPlanner.build(
            relation(n, size, seed),
            SlopeSet.uniform_angles(k),
            pager=Pager(),
            key_bytes=4,
            technique=technique,
        )
    return _duals[key]


def rplus_planner(
    n: int, size: str, seed: int = SEED, guttman: bool = False
) -> RTreePlanner:
    """Cached R+-tree planner (own pager)."""
    from repro.rtree.rplus import RPlusTree

    key = (n, size, seed, guttman)
    if key not in _rplus:
        _rplus[key] = RTreePlanner.build(
            relation(n, size, seed),
            pager=Pager(),
            key_bytes=4,
            tree_cls=GuttmanRTree if guttman else RPlusTree,
        )
    return _rplus[key]


def interior_slope_range(k: int, shrink: float = 0.98) -> tuple[float, float]:
    """Query-slope range inside the slope set (T2's interior case)."""
    slopes = SlopeSet.uniform_angles(k)
    return (slopes[0] * shrink, slopes[-1] * shrink)


def queries_for(
    n: int,
    size: str,
    query_type: str,
    k: int,
    count: int = QUERIES_PER_TYPE,
    seed: int = SEED,
) -> list[HalfPlaneQuery]:
    """Selectivity-calibrated queries with interior slopes."""
    return make_queries(
        relation(n, size, seed),
        count,
        query_type,
        seed=seed + 17,
        selectivity=SELECTIVITY,
        slope_range=interior_slope_range(k),
    )


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
@dataclass
class QueryBatchStats:
    """Aggregated (mean per query) metrics over one query batch.

    The per-phase page columns come from :mod:`repro.obs` traces:
    ``measure`` runs every query under a :class:`~repro.obs.QueryTrace`
    and buckets logical page accesses by the innermost span's phase
    (descend / sweep / fetch — ``plan`` and ``verify`` touch no pages).
    When a trace is already active (a caller is recording), the batch
    reuses it and the phase columns stay zero rather than double-charge.
    """

    index_accesses: float = 0.0
    total_accesses: float = 0.0
    candidates: float = 0.0
    false_hits: float = 0.0
    duplicates: float = 0.0
    results: float = 0.0
    descend_pages: float = 0.0
    sweep_pages: float = 0.0
    fetch_pages: float = 0.0
    elapsed_ms: float = 0.0

    @classmethod
    def measure(cls, run: Callable[[HalfPlaneQuery], object], queries) -> "QueryBatchStats":
        rows = []
        phase_rows = []
        for q in queries:
            if obs.current() is None:
                with tracing(QueryTrace(name="bench")):
                    res = run(q)
            else:
                res = run(q)
            rows.append(
                (
                    res.index_accesses,
                    res.page_accesses,
                    res.candidates,
                    res.false_hits,
                    res.duplicates,
                    len(res.ids),
                )
            )
            span = getattr(res, "trace", None)
            if span is not None:
                phases = span.phase_pages()
                phase_rows.append(
                    (
                        phases.get("descend", 0),
                        phases.get("sweep", 0),
                        phases.get("fetch", 0),
                        span.elapsed * 1000.0,
                    )
                )
            else:
                phase_rows.append((0, 0, 0, 0.0))
        means = [statistics.mean(col) for col in zip(*rows)]
        phase_means = [statistics.mean(col) for col in zip(*phase_rows)]
        return cls(*means, *phase_means)

    def to_dict(self) -> dict[str, float]:
        """Flat JSON-ready mapping (field name → mean per query)."""
        return asdict(self)


def cross_check(dual: DualIndexPlanner, rplus: RTreePlanner, queries) -> None:
    """Assert both structures return the oracle-identical answer sets."""
    for q in queries:
        left = dual.query(q)
        right = rplus.query(q)
        if left.ids != right.ids:
            raise AssertionError(
                f"answer mismatch on {q}: dual={len(left.ids)} "
                f"rplus={len(right.ids)}"
            )


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width ASCII table matching the paper's series layout."""
    widths = [
        max(len(str(headers[i])), max((len(_fmt(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def emit(text: str, save_as: str | None = None) -> None:
    """Print a report through pytest's capture (visible in bench logs)
    and optionally persist it under ``benchmarks/results/``."""
    stream = getattr(sys, "__stdout__", sys.stdout) or sys.stdout
    stream.write("\n" + text + "\n")
    stream.flush()
    if save_as:
        with open(os.path.join(results_dir(), save_as), "w") as handle:
            handle.write(text + "\n")


def results_dir() -> str:
    """``benchmarks/results/`` at the repo root (created on demand)."""
    directory = os.path.join(os.path.dirname(__file__), "..", "..", "..",
                             "benchmarks", "results")
    directory = os.path.abspath(directory)
    os.makedirs(directory, exist_ok=True)
    return directory


def emit_json(payload: dict, save_as: str) -> str:
    """Persist a machine-readable report under ``benchmarks/results/``.

    Returns the path written. The companion of :func:`emit`: every
    figure emits both the ASCII table (for humans reading CI logs) and
    this JSON (for tooling — plotting, regression diffing, perf gates).
    """
    path = os.path.join(results_dir(), save_as)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
