"""ASCII chart rendering for benchmark series.

The paper's Figures 8–10 are line charts; this module renders the
measured series as terminal charts so `python -m repro figure --chart`
gives a visual impression without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Marks assigned to series, in order.
MARKS = "ox+*#@%&"


def ascii_chart(
    title: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
    y_label: str = "pages",
) -> str:
    """Render named series over shared x positions as an ASCII chart.

    X positions are spread by rank (the paper's N axis is categorical);
    the y axis is linear from 0 to the data maximum.
    """
    if not series:
        raise ValueError("no series to plot")
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_values)}:
        raise ValueError("series lengths must match x_values")
    y_max = max(
        (v for values in series.values() for v in values if math.isfinite(v)),
        default=1.0,
    )
    y_max = max(y_max, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    n = len(x_values)
    xpos = [
        int(round(i * (width - 1) / max(1, n - 1))) for i in range(n)
    ]
    legend = []
    for mark, (label, values) in zip(MARKS, sorted(series.items())):
        legend.append(f"{mark} = {label}")
        for i, value in enumerate(values):
            if not math.isfinite(value):
                continue
            row = height - 1 - int(round(value / y_max * (height - 1)))
            row = min(height - 1, max(0, row))
            col = xpos[i]
            grid[row][col] = mark if grid[row][col] == " " else "8"
    lines = [title, "=" * len(title)]
    label_width = len(f"{y_max:.0f}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:.0f}"
        elif row_index == height - 1:
            label = "0"
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    tick_line = [" "] * width
    for i, col in enumerate(xpos):
        tick = str(x_values[i])
        start = col if col + len(tick) <= width else width - len(tick)
        for j, ch in enumerate(tick):
            tick_line[max(0, start) + j] = ch
    lines.append(" " * label_width + "  " + "".join(tick_line))
    lines.append(f"y: {y_label}; overlapping points shown as '8'")
    lines.extend(f"  {entry}" for entry in legend)
    return "\n".join(lines)


def chart_figure(series_list, metric: str = "index_accesses") -> str:
    """Chart a list of :class:`repro.bench.figures.FigureSeries`."""
    xs = sorted({n for line in series_list for n in line.points})
    data = {
        line.label: [
            getattr(line.points[n], metric) if n in line.points else math.nan
            for n in xs
        ]
        for line in series_list
    }
    return ascii_chart(
        f"page accesses ({metric})", xs, data, y_label=metric
    )
