"""End-to-end serving benchmark (``BENCH_serve.json``).

The full production path under one roof: build the fig9-medium engine,
save it to a temporary durable data directory, reopen it through
:func:`~repro.storage.checkpoint.open_engine` inside a real
:class:`~repro.serve.testing.ServerThread` (actual sockets, framing,
coalescing, the single engine thread), then drive it with the
closed-loop :mod:`~repro.serve.loadgen` and report QPS + latency.

Guard rails before any number is reported:

* **answers correct** — a sample of queries answered over the wire must
  match the local planner bit-for-bit (a fast server returning wrong
  ids is not a benchmark);
* **p99 budget** — closed-loop p99 must stay under ``--p99-budget-ms``
  (default 250 ms; generous on purpose — it catches pathologies like a
  stuck coalescer deadline, not CI jitter).

The ``counters`` section feeds ``repro bench-diff --mode floor``
against ``benchmarks/baselines/serve.json``: ``serve_qps_closed`` is
the pinned floor, ``serve_p99_ms`` rides along informationally (it is
also a counter, but the floor gate only fails on *drops*, and latency
regressions push it *up* — the hard latency gate is the in-process
budget above).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile

from repro.bench.harness import dual_planner, queries_for
from repro.serve.loadgen import run_loadgen
from repro.serve.server import ServeConfig
from repro.serve.testing import ServerThread
from repro.storage.checkpoint import save_planner

FIG9_N = 2000
FIG9_SIZE = "medium"
FIG9_K = 3

DEFAULT_OUT = "BENCH_serve.json"


def bench_queries() -> list:
    """The loadgen mix: EXIST + ALL, selectivity-calibrated interior
    slopes (the same generator the explain workload uses)."""
    return (
        queries_for(FIG9_N, FIG9_SIZE, "EXIST", FIG9_K, count=8)
        + queries_for(FIG9_N, FIG9_SIZE, "ALL", FIG9_K, count=8)
    )


def run(requests: int, concurrency: int, p99_budget_ms: float) -> dict:
    """Build → save → serve → verify → measure. Returns the artifact."""
    planner = dual_planner(FIG9_N, FIG9_SIZE, FIG9_K)
    queries = bench_queries()
    expected = [r.ids for r in planner.query_batch(queries).results]
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        data_dir = f"{tmp}/engine"
        save_planner(planner, data_dir)
        config = ServeConfig(data_dir=data_dir, port=0)
        with ServerThread(config=config) as server:
            client = server.client()
            try:
                served = [client.query_ids(q) for q in queries]
            finally:
                client.close()
            mismatches = sum(
                1 for mine, theirs in zip(expected, served)
                if mine != theirs)
            report = asyncio.run(run_loadgen(
                "127.0.0.1", server.port, queries,
                mode="closed", requests=requests,
                concurrency=concurrency,
                warmup=min(200, requests),
            ))
    return {
        "note": (
            "closed-loop loadgen against a served fig9-medium engine "
            f"({concurrency} connections, {requests} requests)"),
        "mismatched_answers": mismatches,
        "report": report,
        "p99_budget_ms": p99_budget_ms,
        "counters": {
            "serve_qps_closed": report["qps"],
            "serve_p99_ms": report["latency_ms"]["p99"],
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--requests", type=int, default=2000)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--p99-budget-ms", type=float, default=250.0)
    args = parser.parse_args(argv)

    artifact = run(args.requests, args.concurrency, args.p99_budget_ms)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    report = artifact["report"]
    print(
        f"serve-bench: {report['qps']:.0f} QPS closed-loop, "
        f"p50 {report['latency_ms']['p50']:.2f} ms, "
        f"p99 {report['latency_ms']['p99']:.2f} ms, "
        f"{report['overloaded']} overloaded, "
        f"{report['errors']} errors -> {args.out}")
    if artifact["mismatched_answers"]:
        print(
            f"FAIL: {artifact['mismatched_answers']} served answers "
            "diverged from the local engine", file=sys.stderr)
        return 1
    if report["errors"]:
        print(f"FAIL: {report['errors']} request errors", file=sys.stderr)
        return 1
    p99 = report["latency_ms"]["p99"]
    if p99 > args.p99_budget_ms:
        print(
            f"FAIL: closed-loop p99 {p99:.1f} ms exceeds the "
            f"{args.p99_budget_ms:.0f} ms budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
