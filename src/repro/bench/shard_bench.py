"""Build-throughput + sharded-QPS benchmark (``BENCH_shard.json``).

Measures the two axes the sharded engine adds on the paper's
fig9-medium workload (N=2000 medium objects, k=3):

* **build throughput** — wall time of a full ``DualIndexPlanner.build``
  at 1 worker (legacy serial scalar path) vs 4 workers (vectorized
  per-chunk key computation on a process pool, falling back to the
  vectorized serial path on a single-CPU box). Every timed run gets a
  *fresh* relation: :class:`GeneralizedTuple` memoises its polygon
  extension, so reusing one relation would let the second run ride the
  first run's cache and fake a speedup.
* **sharded QPS** — query-side throughput of :class:`ShardedDualIndex`
  at 1/2/4 shards over the columnar fan batch
  (:func:`repro.bench.vector_bench.fan_batch`, 240 queries), with a
  per-shard-count correctness check against the unsharded planner
  (``answers_match_unsharded`` must be true for the numbers to mean
  anything). Two numbers per shard count:

  - ``wall`` — one ``query_batch`` call through the facade, fan-out
    included, exactly what a caller observes **on this machine**;
  - ``critical_path`` — ``max(per-shard execute_partials seconds) +
    merge seconds``, the fork-join span of the batch. Per-shard work is
    timed serially on cache-less executors (best-of-``repeats``), so
    the span is what the process fan-out achieves with one core per
    shard. On a single-CPU container (this repo's CI) wall time cannot
    drop with shard count no matter how the work is split — the span is
    the hardware-independent scaling signal, which is why it is the
    number the ``qps`` field and the shards=4 > shards=1 gate use.

The shards=4 > shards=1 critical-path comparison IS gated (exit 1):
each shard holds a smaller forest, so per-shard sweeps touch fewer
leaves and the span must shrink as shards grow. Build timings remain
informational. The emitted JSON is uploaded as a workflow artifact and
a reference copy is checked in at the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import harness
from repro.bench.vector_bench import fan_batch
from repro.core import ALL, EXIST, DualIndexPlanner, HalfPlaneQuery, SlopeSet
from repro.exec import BatchExecutor
from repro.shard import ShardedDualIndex
from repro.shard.sharded import _merge_partials
from repro.workloads import make_relation

#: The fig9-medium workload (Figure 9: medium objects, N=2000, k=3).
FIG9_N = 2000
FIG9_SIZE = "medium"
FIG9_K = 3

DEFAULT_OUT = "BENCH_shard.json"
BUILD_WORKER_COUNTS = (1, 4)
SHARD_COUNTS = (1, 2, 4)


def _build_queries(n: int, size: str, k: int, count: int) -> list[HalfPlaneQuery]:
    """A mixed batch: selectivity-calibrated interior-slope queries for
    both selection types plus one exact-slope query per predefined
    slope (so the merged-sweep path is exercised too)."""
    queries: list[HalfPlaneQuery] = []
    for qtype in (EXIST, ALL):
        queries.extend(harness.queries_for(n, size, qtype, k, count=count))
    for i, slope in enumerate(SlopeSet.uniform_angles(k)):
        queries.append(HalfPlaneQuery(EXIST, slope, 2.0 + i, ">="))
        queries.append(HalfPlaneQuery(ALL, slope, -2.0 - i, "<="))
    return queries


def time_build(
    n: int, size: str, k: int, workers: int, seed: int, repeats: int
) -> float:
    """Best-of-``repeats`` wall time of a full index build.

    Each attempt regenerates the relation from scratch so tuple
    extension caches cannot leak work across runs.
    """
    slopes = SlopeSet.uniform_angles(k)
    best = float("inf")
    for _ in range(repeats):
        relation = make_relation(n, size, seed=seed)
        start = time.perf_counter()
        DualIndexPlanner.build(relation, slopes, workers=workers)
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(
    n: int = FIG9_N,
    size: str = FIG9_SIZE,
    k: int = FIG9_K,
    seed: int = harness.SEED,
    repeats: int = 2,
    queries_per_type: int = 6,
) -> dict:
    """Run both legs and return the ``BENCH_shard.json`` payload."""
    payload: dict = {
        "workload": {
            "figure": "9 (medium objects)",
            "n": n,
            "size": size,
            "k": k,
            "seed": seed,
            "repeats": repeats,
        },
        "build": [],
        "query": [],
    }

    build_seconds: dict[int, float] = {}
    for workers in BUILD_WORKER_COUNTS:
        seconds = time_build(n, size, k, workers, seed, repeats)
        build_seconds[workers] = seconds
        payload["build"].append(
            {
                "workers": workers,
                "seconds": round(seconds, 6),
                "tuples_per_second": round(n / seconds, 1),
            }
        )
    lo, hi = min(BUILD_WORKER_COUNTS), max(BUILD_WORKER_COUNTS)
    payload["build_speedup_4v1"] = round(
        build_seconds[lo] / build_seconds[hi], 3
    )

    # The columnar fan batch plus the mixed interior/exact batch, so the
    # timed workload covers both the exact merged-sweep path and the
    # vector technique.
    queries = fan_batch(k) + _build_queries(n, size, k, queries_per_type)
    reference = DualIndexPlanner.build(
        make_relation(n, size, seed=seed), SlopeSet.uniform_angles(k)
    )
    expected = [frozenset(reference.query(q).ids) for q in queries]
    crit_qps: dict[int, float] = {}
    query_repeats = max(repeats, 3)
    for shards in SHARD_COUNTS:
        engine = ShardedDualIndex.build(
            make_relation(n, size, seed=seed),
            SlopeSet.uniform_angles(k),
            shards=shards,
        )
        # Wall leg: warm the fan-out pool and per-shard executors with a
        # query OUTSIDE the timed batch, so the timed run exercises real
        # query execution rather than the result LRU.
        engine.query_batch([HalfPlaneQuery(EXIST, 0.1234, 0.0, ">=")])
        start = time.perf_counter()
        batch = engine.query_batch(queries)
        wall = time.perf_counter() - start
        matches = all(
            frozenset(res.ids) == want
            for res, want in zip(batch.results, expected)
        )

        # Critical-path leg: per-shard partials timed serially on
        # cache-less executors, span = slowest shard + merge (see module
        # docstring for why this, not wall, is the scaling signal).
        executors = [BatchExecutor(p, cache_size=0) for p in engine.planners]
        for executor in executors:  # untimed decode/warm pass
            executor.execute_partials(queries)
        shard_seconds = []
        for executor in executors:
            best = float("inf")
            for _ in range(query_repeats):
                start = time.perf_counter()
                executor.execute_partials(queries)
                best = min(best, time.perf_counter() - start)
            shard_seconds.append(best)
        parts = [executor.execute_partials(queries) for executor in executors]
        merge_seconds = float("inf")
        for _ in range(query_repeats):
            start = time.perf_counter()
            merged = _merge_partials(parts, len(queries))
            merge_seconds = min(merge_seconds, time.perf_counter() - start)
        matches = matches and all(
            frozenset(res.ids) == want
            for res, want in zip(merged.results, expected)
        )
        crit = max(shard_seconds) + merge_seconds
        crit_qps[shards] = len(queries) / crit
        payload["query"].append(
            {
                "shards": shards,
                "critical_path_seconds": round(crit, 6),
                "qps": round(len(queries) / crit, 1),
                "max_shard_seconds": round(max(shard_seconds), 6),
                "merge_seconds": round(merge_seconds, 6),
                "wall_batch_seconds": round(wall, 6),
                "wall_qps": round(len(queries) / wall, 1),
                "page_accesses": batch.page_accesses,
                "answers_match_unsharded": matches,
            }
        )
        engine.close()
    lo, hi = min(SHARD_COUNTS), max(SHARD_COUNTS)
    payload["query_speedup_4v1"] = round(crit_qps[hi] / crit_qps[lo], 3)
    payload["query_scales_with_shards"] = crit_qps[hi] > crit_qps[lo]
    return payload


def format_report(payload: dict) -> str:
    lines = [
        f"shard bench — fig9-medium (n={payload['workload']['n']}, "
        f"size={payload['workload']['size']}, k={payload['workload']['k']})",
        "build:",
    ]
    for row in payload["build"]:
        lines.append(
            f"  workers={row['workers']}: {row['seconds']:.3f}s "
            f"({row['tuples_per_second']:.0f} tuples/s)"
        )
    lines.append(f"  speedup 4v1: {payload['build_speedup_4v1']:.2f}x")
    lines.append("query:")
    for row in payload["query"]:
        ok = "ok" if row["answers_match_unsharded"] else "MISMATCH"
        lines.append(
            f"  shards={row['shards']}: span {row['critical_path_seconds']:.4f}s "
            f"({row['qps']:.0f} q/s; wall {row['wall_batch_seconds']:.4f}s, "
            f"{row['wall_qps']:.0f} q/s; {row['page_accesses']} pages, "
            f"answers {ok})"
        )
    scales = "yes" if payload["query_scales_with_shards"] else "NO"
    lines.append(
        f"  query speedup 4v1 (critical path): "
        f"{payload['query_speedup_4v1']:.2f}x — scales with shards: {scales}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro shard-bench`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro shard-bench",
        description=(
            "build-throughput (1 vs 4 workers) and sharded-QPS "
            "(1/2/4 shards) benchmark on the fig9-medium workload"
        ),
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help=f"where to write the JSON payload (default {DEFAULT_OUT})",
    )
    parser.add_argument("--n", type=int, default=FIG9_N, help="relation size")
    parser.add_argument(
        "--size", default=FIG9_SIZE, choices=["small", "medium"]
    )
    parser.add_argument("--k", type=int, default=FIG9_K, help="slope count")
    parser.add_argument(
        "--seed", type=int, default=harness.SEED, help="workload seed"
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed build attempts per worker count (best-of; default 2)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(
        n=args.n, size=args.size, k=args.k, seed=args.seed,
        repeats=args.repeats,
    )
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(format_report(payload))
    print(f"wrote {args.out}")
    if not all(row["answers_match_unsharded"] for row in payload["query"]):
        print("sharded answers diverged from unsharded", file=sys.stderr)
        return 1
    if not payload["query_scales_with_shards"]:
        print(
            "query-side critical-path QPS did not improve from "
            f"{min(SHARD_COUNTS)} to {max(SHARD_COUNTS)} shards",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
