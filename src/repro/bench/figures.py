"""Per-figure experiment drivers (Figures 8, 9, 10 and Table 1).

Each driver regenerates one artefact of the paper's Section 5:

* :func:`figure_8_9` — query page accesses vs relation cardinality for
  technique T2 (k ∈ K) and the R+-tree, one run per selection type, for
  one object-size class (Figure 8 = small, Figure 9 = medium);
* :func:`figure_10` — disk space (pages / bytes) of the structures;
* :func:`table_1_check` — exhaustive verification of the app-query
  operator table.

Drivers return structured rows; the benchmark files render and persist
them with :func:`repro.bench.harness.emit`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bench import harness
from repro.core import ALL, EXIST
from repro.core.approx_t1 import build_app_queries
from repro.core.query import HalfPlaneQuery
from repro.core.slope_set import SlopeCase, SlopeSet
from repro.constraints.theta import Theta


@dataclass
class FigureSeries:
    """One line of a figure: structure label → value per N."""

    label: str
    points: dict[int, harness.QueryBatchStats] = field(default_factory=dict)


def figure_8_9(
    size: str,
    query_type: str,
    n_values: tuple[int, ...] | None = None,
    k_values: tuple[int, ...] | None = None,
) -> list[FigureSeries]:
    """Page accesses vs N for T2 (per k) and the R+-tree.

    Figure 8 uses ``size='small'``, Figure 9 ``size='medium'``;
    sub-figure (a) is EXIST, (b) is ALL.
    """
    n_values = n_values or harness.n_values()
    k_values = k_values or harness.k_values()
    series = [FigureSeries(f"T2 k={k}") for k in k_values]
    rplus = FigureSeries("R+-tree")
    for n in n_values:
        for k, line in zip(k_values, series):
            planner = harness.dual_planner(n, size, k)
            queries = harness.queries_for(n, size, query_type, k)
            line.points[n] = harness.QueryBatchStats.measure(
                planner.query, queries
            )
        rp = harness.rplus_planner(n, size)
        queries = harness.queries_for(n, size, query_type, max(k_values))
        rplus.points[n] = harness.QueryBatchStats.measure(rp.query, queries)
    return series + [rplus]


def figure_payload(
    figure: str, size: str, query_type: str, series: list[FigureSeries]
) -> dict:
    """JSON-ready form of a figure's series.

    Every point carries the full :class:`~repro.bench.harness.QueryBatchStats`
    mapping — including the per-phase page columns (descend / sweep /
    fetch) and mean wall time — so downstream tooling (plotting,
    regression diffing) never has to re-parse the ASCII tables.
    """
    return {
        "figure": figure,
        "size": size,
        "query_type": query_type,
        "series": [
            {
                "label": line.label,
                "points": {
                    str(n): stats.to_dict()
                    for n, stats in sorted(line.points.items())
                },
            }
            for line in series
        ],
    }


def render_figure(
    title: str,
    series: list[FigureSeries],
    metric: str = "index_accesses",
) -> str:
    """ASCII rendering of a figure: one row per N, one column per line."""
    ns = sorted({n for line in series for n in line.points})
    headers = ["N"] + [line.label for line in series]
    rows = []
    for n in ns:
        row = [n]
        for line in series:
            stats = line.points.get(n)
            row.append(getattr(stats, metric) if stats else float("nan"))
        rows.append(row)
    return harness.format_table(title, headers, rows)


@dataclass
class SpaceRow:
    """One Figure 10 measurement."""

    n: int
    structure: str
    pages: int
    bytes: int
    ratio_to_rplus: float


def figure_10(
    size: str = "small",
    n_values: tuple[int, ...] | None = None,
    k_values: tuple[int, ...] | None = None,
) -> list[SpaceRow]:
    """Disk space of T2's B+-tree forest vs the R+-tree.

    The paper reports T2 ≈ 1.32·k × R+-tree on average over k = 2..5;
    ratios here are per (N, k) so the trend in k is visible.
    """
    n_values = n_values or harness.n_values()
    k_values = k_values or harness.k_values()
    rows: list[SpaceRow] = []
    page_size = 1024
    for n in n_values:
        rp = harness.rplus_planner(n, size)
        rp_pages = rp.tree.page_count
        rows.append(
            SpaceRow(n, "R+-tree", rp_pages, rp_pages * page_size, 1.0)
        )
        for k in k_values:
            planner = harness.dual_planner(n, size, k)
            pages = planner.index.space().tree_pages
            rows.append(
                SpaceRow(
                    n,
                    f"T2 k={k}",
                    pages,
                    pages * page_size,
                    pages / rp_pages if rp_pages else float("nan"),
                )
            )
    return rows


def render_figure_10(rows: list[SpaceRow]) -> str:
    table_rows = [
        [r.n, r.structure, r.pages, r.bytes, round(r.ratio_to_rplus, 2)]
        for r in rows
    ]
    return harness.format_table(
        "Figure 10 — disk space",
        ["N", "structure", "pages", "bytes", "ratio vs R+"],
        table_rows,
    )


def table_1_check(trials: int = 2000, seed: int = 7) -> dict[str, int]:
    """Randomised verification of Table 1 (app-query operators).

    For each random query and slope set, checks that the two app-queries'
    half-planes *cover* the original query half-plane (the correctness
    requirement the operator table encodes), by dense sampling of points
    on and around the query boundary. Returns per-case trial counts;
    raises on any coverage violation.
    """
    from repro.core.dual_index import DualIndex
    from repro.geometry.predicates import halfplane_constraint

    rng = random.Random(seed)
    cases = {case.value: 0 for case in SlopeCase}
    for _ in range(trials):
        k = rng.randint(1, 5)
        values: set[float] = set()
        while len(values) < k:
            values.add(round(rng.uniform(-4, 4), 6))
        slopes = SlopeSet(values)
        a = rng.uniform(-6, 6)
        info = slopes.classify(a)
        if info.case is SlopeCase.EXACT:
            cases[info.case.value] += 1
            continue
        index = DualIndex(slopes=slopes)
        theta = rng.choice([Theta.GE, Theta.LE])
        b = rng.uniform(-10, 10)
        query = HalfPlaneQuery(rng.choice([ALL, EXIST]), a, b, theta)
        q1, q2 = build_app_queries(index, query, pivot_x=rng.uniform(-5, 5))
        c = halfplane_constraint(a, b, theta, 2)
        c1 = halfplane_constraint(
            slopes[q1.slope_index], q1.intercept, q1.theta, 2
        )
        c2 = halfplane_constraint(
            slopes[q2.slope_index], q2.intercept, q2.theta, 2
        )
        for _ in range(60):
            x = rng.uniform(-100, 100)
            y = rng.uniform(-100, 100)
            if c.satisfied_by((x, y)) and not (
                c1.satisfied_by((x, y), 1e-7) or c2.satisfied_by((x, y), 1e-7)
            ):
                raise AssertionError(
                    f"coverage violation at ({x}, {y}) for {query} "
                    f"case={info.case} app1={q1} app2={q2}"
                )
        cases[info.case.value] += 1
    return cases
