"""Query-level observability: metrics registry, traces, profiling hooks.

The paper's whole evaluation is a page-access argument, so the library
carries a first-class measurement layer:

* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms with labeled series, exportable as JSON (the CI
  perf-smoke gate consumes this);
* :mod:`repro.obs.trace` — per-query span trees (``plan`` → ``descend``
  → ``sweep`` → ``fetch`` → ``verify``) attributing logical/physical
  I/O, buffer hits, comparison counts and wall time to each phase;
* :mod:`repro.obs.export` — Chrome trace-event JSON export of span
  trees (openable in Perfetto);
* :mod:`repro.obs.events` — a bounded JSONL structured-event ring;
* :mod:`repro.obs.explain` — the ``repro explain`` report: exclusive
  per-phase attribution with a sums-to-inclusive-total invariant;
* :mod:`repro.obs.tracer` — request-scoped trace contexts for the serve
  path: wire-propagated trace ids, sampling decisions, and the module
  hook fan-out workers re-install from a plain payload;
* :mod:`repro.obs.slowlog` — the bounded worst-N slow-query log whose
  entries carry enough state (query atoms, engine identity, answer
  digest, span tree) to replay bit-identically offline.

Fleet aggregation: shards and build workers record into private
registries and ship :class:`RegistrySnapshot` objects back; the global
registry absorbs them as ``shard=i`` / ``worker=j`` labeled series (see
:meth:`MetricsRegistry.absorb`).

Hot paths are instrumented through the module-level hooks below
(:func:`span`, :func:`incr`): when no trace is active they reduce to one
global load and a ``None`` check, record nothing, and cannot change
query results.

Besides the ``exec_*`` batch counters, the differential fuzzer
(:mod:`repro.verify`) reports through the registry as ``fuzz_*``:
``fuzz_rounds``, ``fuzz_queries``, ``fuzz_disagreements``,
``fuzz_waivers`` (LP-vs-geometric boundary flips that were waived),
``fuzz_faults_injected`` and ``fuzz_repros`` (minimised repro files
written).

Example::

    from repro import obs

    trace = obs.QueryTrace(pager=planner.index.pager)
    with obs.tracing(trace):
        planner.exist(0.5, 2.0)
    print(trace.render())
    print(trace.export_json())
"""

from repro.obs.events import EventLog, get_event_log, log_trace, parse_jsonl
from repro.obs.explain import (
    ExplainInvariantError,
    ExplainReport,
    explain,
    render_explain,
    traced_answer,
)
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySnapshot,
    get_registry,
)
from repro.obs.slopelog import (
    SlopeLog,
    SlopeLogSnapshot,
    logging_slopes,
)
from repro.obs.slowlog import (
    SlowLogEntry,
    SlowQueryLog,
    answer_digest,
    slope_set_hash,
)
from repro.obs.tracer import (
    RequestTracer,
    TraceContext,
    request_context,
)
from repro.obs.trace import (
    QueryTrace,
    Span,
    current,
    incr,
    span,
    tracing,
)

__all__ = [
    "Counter",
    "EventLog",
    "ExplainInvariantError",
    "ExplainReport",
    "explain",
    "render_explain",
    "traced_answer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySnapshot",
    "get_registry",
    "get_event_log",
    "log_trace",
    "parse_jsonl",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "SlopeLog",
    "SlopeLogSnapshot",
    "logging_slopes",
    "SlowLogEntry",
    "SlowQueryLog",
    "answer_digest",
    "slope_set_hash",
    "RequestTracer",
    "TraceContext",
    "request_context",
    "QueryTrace",
    "Span",
    "current",
    "incr",
    "span",
    "tracing",
]
