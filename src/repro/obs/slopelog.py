"""The slope log: a bounded sink of observed query slopes.

Theorems 4.1/4.2 price T1/T2 exactly by how far query slopes sit from
their nearest member of the restricted slope set ``S``, so the one
signal an adaptive index needs from production traffic is the *slope
distribution* of the queries it answers. This module records it with
the same discipline as the rest of :mod:`repro.obs`:

* **zero overhead when disabled** — the hot-path hook
  (:func:`record`) mirrors :mod:`repro.obs.trace`: one module-global
  load and a ``None`` check, nothing else touched, answers never
  affected;
* **bounded** — a reservoir (Vitter's algorithm R) keeps an unbiased
  sample of at most ``capacity`` raw slopes, alongside an exact
  fixed-bin streaming histogram in angle space (``atan`` of the slope,
  so arbitrarily steep traffic still bins finitely);
* **drainable** — :meth:`SlopeLog.snapshot` yields a picklable
  :class:`SlopeLogSnapshot` that merges associatively across shards and
  serve workers, exactly like
  :class:`~repro.obs.metrics.RegistrySnapshot`.

While enabled the log also reports through the global registry as
``slope_log_records`` / ``slope_log_sampled_out`` counters.

Example::

    >>> from repro.obs import slopelog
    >>> log = slopelog.SlopeLog(capacity=8, seed=1)
    >>> with slopelog.logging_slopes(log):
    ...     slopelog.record(0.5, "EXIST")
    ...     slopelog.record(-2.0, "ALL")
    >>> sorted(log.snapshot().samples)
    [-2.0, 0.5]
    >>> slopelog.record(99.0, "EXIST")   # disabled again: a no-op
    >>> log.count
    2
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.obs.metrics import get_registry

#: Fixed bin count of the streaming angle histogram. Bins partition
#: the open angle interval (-pi/2, pi/2); the histogram is exact (every
#: record lands in a bin) even when the reservoir has sampled out.
N_BINS = 64

_HALF_PI = math.pi / 2.0


def bin_of(slope: float) -> int:
    """The angle-histogram bin of one slope value."""
    angle = math.atan(slope)
    i = int((angle + _HALF_PI) / math.pi * N_BINS)
    return min(max(i, 0), N_BINS - 1)


def bin_center_slope(i: int) -> float:
    """The slope at the centre of bin ``i`` (inverse of :func:`bin_of`)."""
    angle = -_HALF_PI + (i + 0.5) * math.pi / N_BINS
    return math.tan(angle)


@dataclass
class SlopeLogSnapshot:
    """Plain-data, mergeable state of a :class:`SlopeLog`.

    ``samples`` is the reservoir (an unbiased sample of everything
    recorded; *all* of it while ``count <= capacity``); ``bins`` is the
    exact angle histogram; ``by_type`` counts records per query type.
    Snapshots pickle across process boundaries and merge associatively,
    so per-shard / per-worker logs drain the same way registry
    snapshots do.
    """

    capacity: int
    count: int = 0
    samples: list[float] = field(default_factory=list)
    bins: list[int] = field(default_factory=lambda: [0] * N_BINS)
    by_type: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "SlopeLogSnapshot") -> "SlopeLogSnapshot":
        """Accumulate ``other`` into this snapshot (returns ``self``).

        While the combined reservoirs fit the capacity the merge is
        lossless (plain concatenation); beyond that a deterministic
        weighted subsample (Efraimidis–Spirakis A-Res keyed by each
        side's sampling weight) keeps the result unbiased.
        """
        if other.capacity != self.capacity:
            raise ValueError(
                f"cannot merge slope logs with capacity {other.capacity} "
                f"into {self.capacity}"
            )
        pooled = len(self.samples) + len(other.samples)
        if pooled <= self.capacity:
            merged = self.samples + other.samples
        else:
            rng = random.Random((self.count, other.count, pooled))
            weighted: list[tuple[float, float]] = []
            for snap in (self, other):
                w = snap.count / max(len(snap.samples), 1)
                for s in snap.samples:
                    weighted.append((rng.random() ** (1.0 / w), s))
            weighted.sort(reverse=True)
            merged = [s for _key, s in weighted[: self.capacity]]
        self.samples = merged
        self.count += other.count
        self.bins = [a + b for a, b in zip(self.bins, other.bins)]
        for qtype, n in other.by_type.items():
            self.by_type[qtype] = self.by_type.get(qtype, 0) + n
        return self

    @property
    def lossless(self) -> bool:
        """True while the reservoir still holds every recorded slope."""
        return len(self.samples) == self.count

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "capacity": self.capacity,
            "count": self.count,
            "samples": list(self.samples),
            "bins": list(self.bins),
            "by_type": dict(sorted(self.by_type.items())),
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "SlopeLogSnapshot":
        return cls(
            capacity=int(doc["capacity"]),
            count=int(doc["count"]),
            samples=[float(s) for s in doc["samples"]],
            bins=[int(b) for b in doc["bins"]],
            by_type=dict(doc["by_type"]),
        )


class SlopeLog:
    """A bounded recorder of observed query slopes.

    ``capacity`` bounds the reservoir; ``seed`` makes the sampling
    deterministic (tests, replayable tuning decisions). The log itself
    is cheap enough to sit on the per-query hot path *when enabled*;
    when no log is installed the module-level :func:`record` hook never
    reaches it.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("slope log capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self._samples: list[float] = []
        self._bins = [0] * N_BINS
        self._by_type: dict[str, int] = {}
        self._rng = random.Random(seed)
        registry = get_registry()
        self._records = registry.counter(
            "slope_log_records", "Query slopes recorded by the slope log"
        )
        self._sampled_out = registry.counter(
            "slope_log_sampled_out",
            "Slope-log records beyond the reservoir capacity "
            "(histogram still exact)",
        )

    def record(self, slope: float, query_type: str = "") -> None:
        """Record one observed query slope (must be finite)."""
        if not math.isfinite(slope):
            return
        self.count += 1
        self._records.inc()
        self._bins[bin_of(slope)] += 1
        if query_type:
            self._by_type[query_type] = self._by_type.get(query_type, 0) + 1
        if len(self._samples) < self.capacity:
            self._samples.append(slope)
        else:
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self._samples[j] = slope
            self._sampled_out.inc()

    def record_many(self, slopes: Sequence[float], query_type: str = "") -> None:
        for s in slopes:
            self.record(s, query_type)

    def snapshot(self) -> SlopeLogSnapshot:
        """A picklable copy of the current state."""
        return SlopeLogSnapshot(
            capacity=self.capacity,
            count=self.count,
            samples=list(self._samples),
            bins=list(self._bins),
            by_type=dict(self._by_type),
        )

    def drain(self) -> SlopeLogSnapshot:
        """Snapshot then reset — the per-shard / per-worker drain unit."""
        snap = self.snapshot()
        self.count = 0
        self._samples = []
        self._bins = [0] * N_BINS
        self._by_type = {}
        return snap

    def absorb(self, snap: SlopeLogSnapshot) -> None:
        """Merge a drained snapshot back into this log."""
        merged = self.snapshot().merge(snap)
        self.count = merged.count
        self._samples = merged.samples
        self._bins = merged.bins
        self._by_type = merged.by_type


# ----------------------------------------------------------------------
# the module-level hot-path hook (mirrors repro.obs.trace)
# ----------------------------------------------------------------------
_ACTIVE: SlopeLog | None = None


def active() -> SlopeLog | None:
    """The installed slope log, or ``None`` when logging is disabled."""
    return _ACTIVE


def record(slope: float, query_type: str = "") -> None:
    """Hot-path hook: record one query slope into the active log.

    When no log is installed this is one global load and a ``None``
    check — observability must never change answers or cost accounting.
    """
    log = _ACTIVE
    if log is None:
        return
    log.record(slope, query_type)


def install(log: SlopeLog | None) -> SlopeLog | None:
    """Install (or, with ``None``, remove) the process-wide slope log;
    returns the previously installed one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = log
    return previous


@contextmanager
def logging_slopes(log: SlopeLog) -> Iterator[SlopeLog]:
    """Scope-install a slope log (restores the previous one on exit)."""
    previous = install(log)
    try:
        yield log
    finally:
        install(previous)
