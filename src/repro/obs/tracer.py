"""Request-scoped trace contexts for the serve path.

A :class:`TraceContext` is the small identity that rides with one wire
request end to end: a client mints (or the server assigns) a ``trace_id``,
the server decides whether the request is *sampled* (gets a full
:class:`~repro.obs.trace.QueryTrace` span tree) and publishes the
context through the module-level hook below while the request's batch
executes. Downstream layers — the batch executor, the sharded fan-out,
even a forked process-fan-out worker — read :func:`context` to tag
their spans and events with the id, without any plumbing through their
signatures.

The hook follows the same zero-overhead contract as
:mod:`repro.obs.trace` and :mod:`repro.obs.slopelog`: with no context
installed, :func:`context` is one global load returning ``None``, and
nothing downstream changes — answers, page accounting, and metrics are
bit-identical with tracing off.

Concurrency: the hook is a plain module global, *not* a thread-local,
on purpose. The serve layer executes all engine work on one dedicated
thread, so at most one batch (and therefore one request context) is
live at a time; the sharded *thread* fan-out workers all serve that
single batch and must see its context, which a thread-local would hide
from them. The *process* fan-out cannot see the parent's global at all,
so the facade ships :func:`payload` across and the worker re-installs
it (see :func:`repro.shard.procfan.worker_batch`).
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass

#: Wire-format bounds for a trace id (hex-ish opaque token).
MAX_TRACE_ID = 64


@dataclass(frozen=True)
class TraceContext:
    """Identity of one traced wire request."""

    trace_id: str
    #: Sampled requests additionally record a full span tree; every
    #: traced request (sampled or not) gets id-tagged metrics/slowlog
    #: entries.
    sampled: bool = False

    def payload(self) -> dict:
        """JSON-ready form (the wire ``"trace"`` field / fork payload)."""
        return {"id": self.trace_id, "sampled": self.sampled}


def valid_trace_id(value) -> bool:
    """True when ``value`` is usable as a wire trace id."""
    return (
        isinstance(value, str)
        and 0 < len(value) <= MAX_TRACE_ID
        and value.isprintable()
    )


def from_payload(data) -> TraceContext | None:
    """Rebuild a context from its :meth:`TraceContext.payload` form;
    ``None`` for missing/unusable payloads (the caller treats that as
    an untraced request, never an error)."""
    if not isinstance(data, dict):
        return None
    trace_id = data.get("id")
    if not valid_trace_id(trace_id):
        return None
    return TraceContext(trace_id, bool(data.get("sampled", False)))


# ----------------------------------------------------------------------
# the module-level hook
# ----------------------------------------------------------------------
_CONTEXT: TraceContext | None = None


def context() -> TraceContext | None:
    """The request context active right now, or ``None``."""
    return _CONTEXT


@contextmanager
def request_context(ctx: TraceContext | None):
    """Install ``ctx`` for the dynamic extent of the block.

    Unlike span traces, contexts may nest (a replay inside a traced
    request is harmless): the previous context is saved and restored.
    Passing ``None`` is a no-op block, so call sites need no branch.
    """
    global _CONTEXT
    if ctx is None:
        yield None
        return
    previous = _CONTEXT
    _CONTEXT = ctx
    try:
        yield ctx
    finally:
        _CONTEXT = previous


def payload() -> dict | None:
    """The active context as a fork/wire payload, or ``None``."""
    ctx = _CONTEXT
    return ctx.payload() if ctx is not None else None


# ----------------------------------------------------------------------
# id minting + sampling
# ----------------------------------------------------------------------
class RequestTracer:
    """Mints trace ids and makes per-request sampling decisions.

    ``sample_every=N`` samples every Nth traced request (deterministic
    round-robin, so a load test with 2N requests always produces span
    trees); ``0`` disables span-tree sampling while ids and the
    watchdog stay on. Ids are ``<process-prefix>-<seq>`` — unique
    across processes with overwhelming probability, orderable within
    one.
    """

    def __init__(self, sample_every: int = 0, prefix: str | None = None) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.sample_every = sample_every
        self.prefix = prefix if prefix is not None else os.urandom(4).hex()
        self._seq = itertools.count()
        self._requests = itertools.count()

    def new_trace_id(self) -> str:
        return f"{self.prefix}-{next(self._seq):08x}"

    def make_context(self, wire_trace=None) -> TraceContext:
        """The context for one incoming request.

        Adopts the client's id when the wire payload carries a valid
        one (end-to-end propagation), otherwise mints a fresh id. The
        *server* owns the sampling decision — a client may request
        sampling (``"sampled": true``) but cannot suppress it.
        """
        claimed = from_payload(wire_trace)
        trace_id = claimed.trace_id if claimed is not None else self.new_trace_id()
        n = next(self._requests)
        sampled = bool(self.sample_every) and n % self.sample_every == 0
        if claimed is not None and claimed.sampled:
            sampled = True
        return TraceContext(trace_id, sampled)
