"""Bounded JSONL structured-event ring buffer.

:class:`EventLog` keeps the last *capacity* structured events in memory
(a ``deque(maxlen=...)``), so long-running processes can always dump the
recent history without unbounded growth. Events are plain dicts with a
fixed envelope — ``seq`` (monotonic), ``kind``, ``name``, ``data`` — and
serialize one-per-line as JSONL via :meth:`EventLog.to_jsonl`;
:func:`parse_jsonl` round-trips and re-validates them.

:func:`log_trace` flattens a finished :class:`~repro.obs.trace.Span`
tree into one ``span`` event per node, which is how query traces outlive
the in-process tree (the ``repro explain --events-out`` path).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Iterable, Iterator

from repro.obs.trace import QueryTrace, Span

#: Default ring capacity — big enough for a smoke run's every span,
#: small enough to be harmless resident state.
DEFAULT_CAPACITY = 4096

#: Envelope fields every event must carry, with their types.
EVENT_SCHEMA: dict[str, type] = {
    "seq": int,
    "kind": str,
    "name": str,
    "data": dict,
}


def validate_event(event: Any) -> list[str]:
    """Schema problems for one event dict (empty list = valid)."""
    if not isinstance(event, dict):
        return [f"event must be an object, got {type(event).__name__}"]
    problems = []
    for key, typ in EVENT_SCHEMA.items():
        if key not in event:
            problems.append(f"missing {key!r}")
        elif not isinstance(event[key], typ) or isinstance(event[key], bool):
            problems.append(f"{key!r} has type {type(event[key]).__name__}")
    return problems


class EventLog:
    """A bounded, append-only ring of structured events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        #: Total events ever emitted (≥ ``len(self)``; the difference is
        #: how many the ring has dropped).
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.emitted - len(self._ring)

    def emit(self, kind: str, name: str, **data: Any) -> dict[str, Any]:
        """Append one event; returns the stored dict."""
        event = {"seq": self._seq, "kind": kind, "name": name, "data": data}
        problems = validate_event(event)
        if problems:
            raise ValueError("invalid event: " + "; ".join(problems))
        self._seq += 1
        self.emitted += 1
        self._ring.append(event)
        return event

    def clear(self) -> None:
        self._ring.clear()

    def to_jsonl(self) -> str:
        """The ring's events, one JSON object per line (oldest first)."""
        return "\n".join(
            json.dumps(ev, sort_keys=True, allow_nan=False)
            for ev in self._ring
        )

    def write_jsonl(self, path: str) -> int:
        """Dump the ring to ``path``; returns the number of events."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        return len(self._ring)


def parse_jsonl(text: str | Iterable[str]) -> list[dict[str, Any]]:
    """Parse and schema-validate JSONL event lines (raises ``ValueError``
    naming the offending line on any malformed event)."""
    lines = text.splitlines() if isinstance(text, str) else list(text)
    events: list[dict[str, Any]] = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        problems = validate_event(event)
        if problems:
            raise ValueError(f"line {i + 1}: " + "; ".join(problems))
        events.append(event)
    return events


def log_trace(log: EventLog, root: Span | QueryTrace) -> int:
    """Emit one ``span`` event per node of a finished trace; returns the
    number of events emitted."""
    if isinstance(root, QueryTrace):
        root = root.close()
    count = 0
    for node in root.walk():
        hits, misses = node.inclusive_buffer()
        log.emit(
            "span",
            node.name,
            phase=node.phase,
            start_ms=node.start * 1000.0,
            elapsed_ms=node.elapsed * 1000.0,
            pages_inclusive=node.inclusive_pages(),
            buffer_hits=hits,
            buffer_misses=misses,
            meta={k: str(v) for k, v in node.meta.items()},
            counters=dict(node.counters),
        )
        count += 1
    return count


_default_log = EventLog()


def get_event_log() -> EventLog:
    """The process-wide default event ring."""
    return _default_log
