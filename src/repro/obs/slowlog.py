"""The slow-query log: a bounded ring of the worst requests.

The serve layer records one :class:`SlowLogEntry` per traced request
and the log keeps the worst ``capacity`` of them **by latency and by
page count independently** (a request that tops either ranking stays;
one that falls out of both is dropped), plus every cost-model
violation regardless of rank. Each entry carries enough to answer
"which request burned the pages, and did it cost what the theory
predicts?" after the fact:

* the trace id and, for sampled requests, the full span tree
  (:meth:`~repro.obs.trace.Span.to_dict` form);
* the query itself (the fuzzer's ``query_to_json`` atom form), its
  technique and per-query accounting columns;
* the cost watchdog's verdict (predicted pages, actual pages, ratio);
* the engine identity at answer time (structure version, catalog
  commit seq / generation when durable, slope-set hash) — enough for
  ``repro slowlog --replay`` to reopen the same engine and check the
  recorded answer bit-for-bit.

The log is lock-guarded and amortized O(capacity) per insert
(capacities are tens, not thousands): admitted entries are appended
and the ranking sorts run only when the buffer reaches twice the
capacity — or when a reader looks — so the serve path's per-request
cost is two float compares plus an append. It never touches the
engine hot path; recording happens on the serve layer after the batch
has been answered.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field


def slope_set_hash(slopes) -> str:
    """Stable short hash of a slope set (order-insensitive).

    >>> from repro.obs.slowlog import slope_set_hash
    >>> slope_set_hash([2.0, -0.5]) == slope_set_hash([-0.5, 2.0])
    True
    >>> len(slope_set_hash([1.0]))
    12
    """
    canon = ",".join(repr(float(s)) for s in sorted(slopes))
    return hashlib.sha256(canon.encode("ascii")).hexdigest()[:12]


def answer_digest(ids) -> str:
    """Stable short hash of an answer id set (replay comparison key)."""
    canon = ",".join(str(i) for i in sorted(ids))
    return hashlib.sha256(canon.encode("ascii")).hexdigest()[:16]


@dataclass
class SlowLogEntry:
    """One recorded request (JSON-ready via :meth:`to_json`)."""

    trace_id: str
    op: str
    latency_s: float
    pages: float
    #: ``query_to_json`` form of the request's half-plane query
    #: (``None`` for non-query ops).
    query: dict | None = None
    technique: str | None = None
    #: Per-query accounting columns (batch-independent, so a cold
    #: replay can compare them strictly).
    accounting: dict = field(default_factory=dict)
    #: Cost watchdog verdict: predicted pages / ratio (``None`` before
    #: the model is calibrated).
    predicted_pages: float | None = None
    ratio: float | None = None
    #: Why the entry was kept (``latency`` / ``pages`` / ``cost_model``);
    #: informational — an entry may qualify on several.
    reason: str = "latency"
    batch_size: int = 1
    #: Engine identity at answer time (``version``, ``slope_hash``, and
    #: for durable engines ``commit_seq`` / ``generation`` /
    #: ``data_dir``).
    engine: dict = field(default_factory=dict)
    #: Answer fingerprint for bit-identical replay.
    answer: dict = field(default_factory=dict)
    #: Sampled requests carry the batch's span tree.
    span_tree: dict | None = None

    def to_json(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "latency_s": self.latency_s,
            "pages": self.pages,
            "query": self.query,
            "technique": self.technique,
            "accounting": dict(self.accounting),
            "predicted_pages": self.predicted_pages,
            "ratio": self.ratio,
            "reason": self.reason,
            "batch_size": self.batch_size,
            "engine": dict(self.engine),
            "answer": dict(self.answer),
            "span_tree": self.span_tree,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SlowLogEntry":
        return cls(
            trace_id=data["trace_id"],
            op=data["op"],
            latency_s=float(data["latency_s"]),
            pages=float(data["pages"]),
            query=data.get("query"),
            technique=data.get("technique"),
            accounting=dict(data.get("accounting", {})),
            predicted_pages=data.get("predicted_pages"),
            ratio=data.get("ratio"),
            reason=data.get("reason", "latency"),
            batch_size=int(data.get("batch_size", 1)),
            engine=dict(data.get("engine", {})),
            answer=dict(data.get("answer", {})),
            span_tree=data.get("span_tree"),
        )


class SlowQueryLog:
    """Worst-N ring over two rankings (latency, pages) plus violations.

    >>> from repro.obs.slowlog import SlowLogEntry, SlowQueryLog
    >>> log = SlowQueryLog(capacity=2)
    >>> for ms, pages in [(1, 50), (9, 1), (5, 5), (7, 40)]:
    ...     _ = log.record(SlowLogEntry("t%d" % ms, "query",
    ...                                 latency_s=ms / 1000.0, pages=pages))
    >>> [e.trace_id for e in log.entries()]        # worst latency first
    ['t9', 't7', 't1']
    >>> log.worst(by="pages").trace_id             # t1 kept: worst by pages
    't1'
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: list[SlowLogEntry] = []
        self._lock = threading.Lock()
        self.recorded = 0
        self.dropped = 0
        #: Admission cutoffs: the ``capacity``-th worst kept latency and
        #: page count. A non-violation entry beating neither cannot
        #: enter either ranking, so the steady-state hot path is two
        #: float compares instead of three sorts.
        self._cut_latency = float("-inf")
        self._cut_pages = float("-inf")

    def __len__(self) -> int:
        with self._lock:
            self._prune()
            return len(self._entries)

    def would_keep(
        self, latency_s: float, pages: float, violation: bool = False
    ) -> bool:
        """Whether an entry with these stats could enter the log.

        The serve layer checks this *before* building a full entry
        (answer digest, query atoms), so the common fast-request case
        costs two comparisons. May err permissive, never restrictive.
        """
        with self._lock:
            return (
                violation
                or latency_s > self._cut_latency
                or pages > self._cut_pages
            )

    def note_dropped(self) -> None:
        """Count a request that failed :meth:`would_keep` (so
        ``recorded``/``dropped`` still mean "offered"/"not kept")."""
        with self._lock:
            self.recorded += 1
            self.dropped += 1

    def record(self, entry: SlowLogEntry) -> bool:
        """Offer one entry; returns True while it is kept.

        An entry survives while it ranks in the worst ``capacity`` by
        latency **or** by pages; ``cost_model`` entries (watchdog
        violations) are always kept and only compete with each other.
        The ranking work is amortized: losers are culled (and the
        admission cutoffs tightened) once the buffer holds twice the
        capacity, not on every insert — every reader prunes first, so
        the laziness is never observable. An admitted entry's True may
        therefore be provisional (a later prune can evict it), exactly
        as a kept entry was always evictable by later, worse ones.
        """
        with self._lock:
            self.recorded += 1
            if (
                entry.reason != "cost_model"
                and entry.latency_s <= self._cut_latency
                and entry.pages <= self._cut_pages
            ):
                self.dropped += 1
                return False
            self._entries.append(entry)
            if len(self._entries) < 2 * self.capacity:
                return True
            return self._prune(newest=entry)

    def _prune(self, newest: SlowLogEntry | None = None) -> bool:
        """Cull to the union of the two worst-``capacity`` rankings
        (plus violations) and refresh the admission cutoffs. The caller
        holds the lock. Returns whether ``newest`` survived."""
        entries = self._entries
        keep: set[int] = set()
        by_latency = sorted(
            range(len(entries)),
            key=lambda i: entries[i].latency_s,
            reverse=True,
        )
        by_pages = sorted(
            range(len(entries)),
            key=lambda i: entries[i].pages,
            reverse=True,
        )
        violations = [
            i for i, e in enumerate(entries) if e.reason == "cost_model"
        ]
        keep.update(by_latency[: self.capacity])
        keep.update(by_pages[: self.capacity])
        keep.update(violations[-self.capacity:])
        survived = newest is None or len(entries) - 1 in keep
        if len(keep) < len(entries):
            self.dropped += len(entries) - len(keep)
            self._entries = [
                e for i, e in enumerate(entries) if i in keep
            ]
        if len(self._entries) >= self.capacity:
            latencies = sorted(
                (e.latency_s for e in self._entries), reverse=True)
            pages = sorted(
                (e.pages for e in self._entries), reverse=True)
            self._cut_latency = latencies[self.capacity - 1]
            self._cut_pages = pages[self.capacity - 1]
        return survived

    def entries(self, by: str = "latency") -> list[SlowLogEntry]:
        """All kept entries, worst first under the chosen ranking."""
        key = {
            "latency": lambda e: e.latency_s,
            "pages": lambda e: e.pages,
        }[by]
        with self._lock:
            self._prune()
            return sorted(self._entries, key=key, reverse=True)

    def worst(self, by: str = "latency") -> SlowLogEntry | None:
        ranked = self.entries(by=by)
        return ranked[0] if ranked else None

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        with self._lock:
            self._prune()
            entries = list(self._entries)
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "entries": [
                e.to_json()
                for e in sorted(entries, key=lambda e: e.latency_s,
                                reverse=True)
            ],
        }

    def write_jsonl(self, path: str) -> int:
        """One JSON entry per line, worst latency first; returns count."""
        entries = self.entries()
        with open(path, "w", encoding="utf-8") as fh:
            for e in entries:
                fh.write(json.dumps(e.to_json(), sort_keys=True) + "\n")
        return len(entries)


def load_jsonl(path: str) -> list[SlowLogEntry]:
    """Read back a :meth:`SlowQueryLog.write_jsonl` file."""
    out: list[SlowLogEntry] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(SlowLogEntry.from_json(json.loads(line)))
    return out
