"""A small process-wide metrics registry (counters, gauges, histograms).

Metrics are named, optionally labeled series — ``pages`` with labels
``structure=dual, phase=sweep`` is one series of the ``pages`` counter.
The registry renders to a flat JSON document whose counter section is
fully deterministic for a fixed workload; the CI perf-smoke job diffs it
against a checked-in baseline (``repro.bench.smoke``).

The design follows the Prometheus client model (metric → labeled
children) but stays dependency-free and synchronous: this is a
single-process research system, the registry is a measurement tool, not
a telemetry pipeline.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Iterator, Mapping

_DEFAULT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
    2500.0, 5000.0, 10000.0,
)


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,…}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared behaviour: a named family of labeled child series."""

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        if not name:
            raise ValueError("metric name must not be empty")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], "_Metric"] = {}

    def labels(self, **labelvalues: str):
        """The child series for one label-value assignment."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        if key not in self._children:
            child = type(self)(self.name, self.help)
            child._labelvalues = dict(  # type: ignore[attr-defined]
                zip(self.labelnames, key)
            )
            self._children[key] = child
        return self._children[key]

    def _labelmap(self) -> dict[str, str]:
        return getattr(self, "_labelvalues", {})

    def series(self) -> Iterator[tuple[str, "_Metric"]]:
        """All concrete series of this family as ``(flat key, series)``."""
        if self.labelnames:
            for child in self._children.values():
                yield _series_key(self.name, child._labelmap()), child
        else:
            yield self.name, self


class Counter(_Metric):
    """A monotonically increasing count."""

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name}: labeled counter needs .labels(...)")
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge(_Metric):
    """A value that can go up and down (space pages, hit ratio, …)."""

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def set(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name}: labeled gauge needs .labels(...)")
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram(_Metric):
    """Bucketed observations (wall times, per-query page counts)."""

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = _DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def labels(self, **labelvalues: str):
        child = super().labels(**labelvalues)
        child.buckets = self.buckets
        if len(child.bucket_counts) != len(self.buckets) + 1:
            child.bucket_counts = [0] * (len(self.buckets) + 1)
        return child

    def observe(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name}: labeled histogram needs .labels(...)")
        value = float(value)
        self.bucket_counts[bisect_right(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                (f"le={b:g}" if i < len(self.buckets) else "le=+inf"): c
                for i, (b, c) in enumerate(
                    zip(self.buckets + (float("inf"),), self.bucket_counts)
                )
            },
        }


class MetricsRegistry:
    """A namespace of metrics; one global default via :func:`get_registry`."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = _DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, labelnames, buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(f"metric {name!r} already registered as "
                             f"{type(metric).__name__}")
        return metric

    def _register(self, cls, name: str, help: str, labelnames) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, tuple(labelnames))
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {name!r} already registered as "
                             f"{type(metric).__name__}")
        return metric

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def collect(self) -> dict:
        """Flat snapshot: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with canonical sorted series keys."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for metric in self._metrics.values():
            for key, series in metric.series():
                if isinstance(series, Counter):
                    counters[key] = series.value
                elif isinstance(series, Histogram):
                    histograms[key] = series.summary()
                elif isinstance(series, Gauge):
                    gauges[key] = series.value
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def export_json(self, indent: int = 2) -> str:
        """The :meth:`collect` snapshot as a JSON document."""
        return json.dumps(self.collect(), indent=indent, sort_keys=False)

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        self._metrics.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry
