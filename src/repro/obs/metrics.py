"""A small process-wide metrics registry (counters, gauges, histograms).

Metrics are named, optionally labeled series — ``pages`` with labels
``structure=dual, phase=sweep`` is one series of the ``pages`` counter.
The registry renders to a flat JSON document whose counter section is
fully deterministic for a fixed workload; the CI perf-smoke job diffs it
against a checked-in baseline (``repro.bench.smoke``).

The design follows the Prometheus client model (metric → labeled
children) but stays dependency-free and synchronous: this is a
single-process research system, the registry is a measurement tool, not
a telemetry pipeline.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator, Mapping

_DEFAULT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
    2500.0, 5000.0, 10000.0,
)


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,…}`` with sorted keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared behaviour: a named family of labeled child series."""

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        if not name:
            raise ValueError("metric name must not be empty")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], "_Metric"] = {}

    def labels(self, **labelvalues: str):
        """The child series for one label-value assignment."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        if key not in self._children:
            child = type(self)(self.name, self.help)
            child._labelvalues = dict(  # type: ignore[attr-defined]
                zip(self.labelnames, key)
            )
            self._children[key] = child
        return self._children[key]

    def _labelmap(self) -> dict[str, str]:
        return getattr(self, "_labelvalues", {})

    def series(self) -> Iterator[tuple[str, "_Metric"]]:
        """All concrete series of this family as ``(flat key, series)``."""
        if self.labelnames:
            for child in self._children.values():
                yield _series_key(self.name, child._labelmap()), child
        else:
            yield self.name, self


class Counter(_Metric):
    """A monotonically increasing count."""

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name}: labeled counter needs .labels(...)")
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge(_Metric):
    """A value that can go up and down (space pages, hit ratio, …)."""

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def set(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name}: labeled gauge needs .labels(...)")
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram(_Metric):
    """Bucketed observations (wall times, per-query page counts)."""

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = _DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.count = 0
        self.total = 0.0
        # None (not ±inf) before any observation: every serialization —
        # summary(), snapshots, prom export — must stay strict-JSON safe.
        self.min: float | None = None
        self.max: float | None = None
        #: Last exemplar per bucket index: ``{i: (labels, value)}``.
        #: Exemplars link an aggregate bucket back to one concrete
        #: request (a trace id); they are process-local observability
        #: breadcrumbs and deliberately do not merge across snapshots.
        self.exemplars: dict[int, tuple[dict, float]] = {}

    def labels(self, **labelvalues: str):
        child = super().labels(**labelvalues)
        child.buckets = self.buckets
        if len(child.bucket_counts) != len(self.buckets) + 1:
            child.bucket_counts = [0] * (len(self.buckets) + 1)
        return child

    def observe(self, value: float, exemplar: Mapping[str, str] | str | None = None) -> None:
        """Record one observation; ``exemplar`` optionally attaches a
        trace reference to the bucket the value lands in (a bare string
        is shorthand for ``{"trace_id": value}``)."""
        if self.labelnames:
            raise ValueError(f"{self.name}: labeled histogram needs .labels(...)")
        value = float(value)
        bucket = bisect_right(self.buckets, value)
        self.bucket_counts[bucket] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if exemplar is not None:
            if isinstance(exemplar, str):
                exemplar = {"trace_id": exemplar}
            self.exemplars[bucket] = (dict(exemplar), value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {
                (f"le={b:g}" if i < len(self.buckets) else "le=+inf"): c
                for i, (b, c) in enumerate(
                    zip(self.buckets + (float("inf"),), self.bucket_counts)
                )
            },
        }

    def state(self) -> dict:
        """Mergeable raw state (used by :class:`RegistrySnapshot`)."""
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_state(self, state: Mapping) -> None:
        """Accumulate another histogram's :meth:`state` into this one."""
        if tuple(state["buckets"]) != self.buckets:
            raise ValueError(
                f"{self.name}: cannot merge histogram with buckets "
                f"{tuple(state['buckets'])} into {self.buckets}"
            )
        for i, c in enumerate(state["bucket_counts"]):
            self.bucket_counts[i] += c
        self.count += state["count"]
        self.total += state["total"]
        for attr, pick in (("min", min), ("max", max)):
            theirs = state[attr]
            if theirs is not None:
                ours = getattr(self, attr)
                setattr(
                    self, attr, theirs if ours is None else pick(ours, theirs)
                )


class MetricsRegistry:
    """A namespace of metrics; one global default via :func:`get_registry`."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = _DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, tuple(labelnames), buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(f"metric {name!r} already registered as "
                             f"{type(metric).__name__}")
        elif metric.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labelnames "
                f"{metric.labelnames}, got {tuple(labelnames)}"
            )
        elif metric.buckets != tuple(sorted(buckets)):
            raise ValueError(
                f"metric {name!r} already registered with buckets "
                f"{metric.buckets}, got {tuple(sorted(buckets))}"
            )
        return metric

    def _register(self, cls, name: str, help: str, labelnames) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, tuple(labelnames))
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {name!r} already registered as "
                             f"{type(metric).__name__}")
        elif metric.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labelnames "
                f"{metric.labelnames}, got {tuple(labelnames)}"
            )
        return metric

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def collect(self) -> dict:
        """Flat snapshot: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with canonical sorted series keys."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for metric in self._metrics.values():
            for key, series in metric.series():
                if isinstance(series, Counter):
                    counters[key] = series.value
                elif isinstance(series, Histogram):
                    histograms[key] = series.summary()
                elif isinstance(series, Gauge):
                    gauges[key] = series.value
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def export_json(self, indent: int = 2) -> str:
        """The :meth:`collect` snapshot as a strict JSON document
        (``allow_nan=False``: any NaN/inf leak is a bug, not output)."""
        return json.dumps(
            self.collect(), indent=indent, sort_keys=False, allow_nan=False
        )

    def export_prom(self) -> str:
        """Prometheus text exposition format (``repro stats --format prom``).

        Metric names are sanitized to the Prometheus charset, histogram
        buckets are emitted cumulatively with the standard ``_bucket``/
        ``_sum``/``_count`` suffixes, and label values are escaped per
        the exposition-format spec.
        """
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            pname = _prom_name(name)
            kind = {
                Counter: "counter", Gauge: "gauge", Histogram: "histogram"
            }[type(metric)]
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} {kind}")
            for _key, series in metric.series():
                labels = series._labelmap()
                if isinstance(series, Histogram):
                    cumulative = 0
                    for i, (b, c) in enumerate(zip(
                        series.buckets + (float("inf"),),
                        series.bucket_counts,
                    )):
                        cumulative += c
                        le = "+Inf" if b == float("inf") else f"{b:g}"
                        line = (
                            f"{pname}_bucket"
                            f"{_prom_labels({**labels, 'le': le})} "
                            f"{cumulative}"
                        )
                        exemplar = series.exemplars.get(i)
                        if exemplar is not None:
                            ex_labels, ex_value = exemplar
                            line += (
                                f" # {_prom_labels(ex_labels)} {ex_value:g}"
                            )
                        lines.append(line)
                    lines.append(
                        f"{pname}_sum{_prom_labels(labels)} {series.total:g}"
                    )
                    lines.append(
                        f"{pname}_count{_prom_labels(labels)} {series.count}"
                    )
                else:
                    lines.append(
                        f"{pname}{_prom_labels(labels)} {series.value:g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> "RegistrySnapshot":
        """A picklable, mergeable snapshot of every family's raw state."""
        return RegistrySnapshot.from_registry(self)

    def absorb(self, snap: "RegistrySnapshot") -> None:
        """Accumulate a snapshot into this registry.

        Families are registered (strictly — a type/labelnames/buckets
        mismatch with an existing family raises), counter and gauge
        series *add* their values, histograms merge bucket-by-bucket.
        Gauges summing is deliberate: shard/worker gauges describe
        disjoint resources, so the fleet value is the sum.
        """
        for name, fam in snap.families.items():
            labelnames = tuple(fam["labelnames"])
            kind = fam["kind"]
            if kind == "histogram":
                metric = self.histogram(
                    name, fam["help"], labelnames, tuple(fam["buckets"])
                )
            elif kind == "counter":
                metric = self.counter(name, fam["help"], labelnames)
            else:
                metric = self.gauge(name, fam["help"], labelnames)
            for values, state in fam["series"]:
                series = (
                    metric.labels(**dict(zip(labelnames, values)))
                    if labelnames
                    else metric
                )
                if kind == "histogram":
                    series.merge_state(state)
                else:
                    series.value += state

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        self._metrics.clear()


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name to the Prometheus charset."""
    name = _PROM_BAD.sub("_", name)
    return "_" + name if name[:1].isdigit() else name


def _prom_escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_PROM_BAD.sub("_", k)}="{_prom_escape(str(v))}"'
        for k, v in labels.items()
    )
    return "{" + inner + "}"


@dataclass
class RegistrySnapshot:
    """Raw, mergeable state of a registry — the fleet-aggregation unit.

    Shards and process-pool build workers record into private
    registries; a snapshot of each travels back (snapshots are plain
    data, so they pickle across process boundaries), gets relabeled via
    :meth:`with_labels` (``shard=i`` / ``worker=j``), and merges into
    the global registry through :meth:`MetricsRegistry.absorb` — which
    is how ``repro stats`` sees sharded and parallel-build traffic.

    ``families`` maps metric name to ``{"kind", "help", "labelnames",
    "buckets" (histograms), "series": [(labelvalues, state), ...]}``
    where ``state`` is a float for counters/gauges and a
    :meth:`Histogram.state` dict for histograms.
    """

    families: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "RegistrySnapshot":
        families: dict[str, dict] = {}
        for name, metric in registry._metrics.items():
            kind = {
                Counter: "counter", Gauge: "gauge", Histogram: "histogram"
            }[type(metric)]
            series = []
            for _key, child in metric.series():
                values = tuple(child._labelmap().values())
                state = (
                    child.state()
                    if isinstance(child, Histogram)
                    else child.value
                )
                series.append((values, state))
            fam: dict = {
                "kind": kind,
                "help": metric.help,
                "labelnames": tuple(metric.labelnames),
                "series": series,
            }
            if isinstance(metric, Histogram):
                fam["buckets"] = tuple(metric.buckets)
            families[name] = fam
        return cls(families)

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """Accumulate ``other`` into this snapshot (returns ``self``).

        Same strictness as :meth:`MetricsRegistry.absorb`: merging two
        families with mismatched kind, labelnames, or buckets raises.
        """
        for name, theirs in other.families.items():
            ours = self.families.get(name)
            if ours is None:
                self.families[name] = {
                    **theirs, "series": list(theirs["series"])
                }
                continue
            for attr in ("kind", "labelnames"):
                if ours[attr] != theirs[attr]:
                    raise ValueError(
                        f"metric {name!r}: cannot merge {attr} "
                        f"{theirs[attr]} into {ours[attr]}"
                    )
            if ours.get("buckets") != theirs.get("buckets"):
                raise ValueError(
                    f"metric {name!r}: cannot merge buckets "
                    f"{theirs.get('buckets')} into {ours.get('buckets')}"
                )
            index = {values: i for i, (values, _) in enumerate(ours["series"])}
            for values, state in theirs["series"]:
                i = index.get(values)
                if i is None:
                    ours["series"].append((values, state))
                elif ours["kind"] == "histogram":
                    merged = _merge_hist_states(ours["series"][i][1], state)
                    ours["series"][i] = (values, merged)
                else:
                    ours["series"][i] = (values, ours["series"][i][1] + state)
        return self

    def with_labels(self, prefix: str = "", **labels: str) -> "RegistrySnapshot":
        """A relabeled copy: every family name gains ``prefix`` and every
        series gains the given constant labels (``shard="0"``, …).

        Prefixing keeps relabeled families (``shard_exec_batches``) from
        colliding with the same-named unlabeled globals under the strict
        registration rules.
        """
        extra_names = tuple(sorted(labels))
        extra_values = tuple(str(labels[k]) for k in extra_names)
        families: dict[str, dict] = {}
        for name, fam in self.families.items():
            clash = set(extra_names) & set(fam["labelnames"])
            if clash:
                raise ValueError(
                    f"metric {name!r} already has labels {sorted(clash)}"
                )
            families[prefix + name] = {
                **fam,
                "labelnames": tuple(fam["labelnames"]) + extra_names,
                "series": [
                    (tuple(values) + extra_values, state)
                    for values, state in fam["series"]
                ],
            }
        return RegistrySnapshot(families)

    def to_dict(self) -> dict:
        """JSON-ready form (tuples become lists)."""
        return {
            "families": {
                name: {
                    **fam,
                    "labelnames": list(fam["labelnames"]),
                    **(
                        {"buckets": list(fam["buckets"])}
                        if "buckets" in fam
                        else {}
                    ),
                    "series": [
                        [list(values), state]
                        for values, state in fam["series"]
                    ],
                }
                for name, fam in self.families.items()
            }
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "RegistrySnapshot":
        families: dict[str, dict] = {}
        for name, fam in doc["families"].items():
            out = {
                **fam,
                "labelnames": tuple(fam["labelnames"]),
                "series": [
                    (tuple(values), state) for values, state in fam["series"]
                ],
            }
            if "buckets" in fam:
                out["buckets"] = tuple(fam["buckets"])
            families[name] = out
        return cls(families)


def _merge_hist_states(a: Mapping, b: Mapping) -> dict:
    """Merge two :meth:`Histogram.state` dicts (same buckets required)."""
    if tuple(a["buckets"]) != tuple(b["buckets"]):
        raise ValueError(
            f"cannot merge histogram states with buckets "
            f"{tuple(b['buckets'])} into {tuple(a['buckets'])}"
        )
    mins = [m for m in (a["min"], b["min"]) if m is not None]
    maxs = [m for m in (a["max"], b["max"]) if m is not None]
    return {
        "buckets": list(a["buckets"]),
        "bucket_counts": [
            x + y for x, y in zip(a["bucket_counts"], b["bucket_counts"])
        ],
        "count": a["count"] + b["count"],
        "total": a["total"] + b["total"],
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
    }


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry
