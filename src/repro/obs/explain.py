"""The ``repro explain`` report: traced execution with checked attribution.

:func:`explain` runs one query (or a batch) under a fresh
:class:`~repro.obs.trace.QueryTrace` and distills the span tree into an
:class:`ExplainReport`: exclusive per-phase page/time attribution,
B+-tree descent depths, buffer hit ratios, executor cache outcomes, and
per-index (per-shard) work rows. It *asserts* the accounting identity
the rest of the tooling relies on — the exclusive per-phase pages must
sum exactly to the trace's inclusive total (token-aware across shard
pagers) — raising :class:`ExplainInvariantError` on any mismatch, so a
broken attribution can never be silently rendered.

Explain never changes answers: tracing is observational (snapshot
deltas, no behavioural branches), and the differential verifier runs an
``explain`` engine against the oracle to enforce exactly that (see
:mod:`repro.verify.differential`).

This module imports no engine code — any object with ``query`` /
``query_batch`` works — so it sits below :mod:`repro.core` in the
import graph and the CLI can compose it with every engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.trace import QueryTrace, Span, tracing


class ExplainInvariantError(AssertionError):
    """Exclusive per-phase attribution failed to sum to the inclusive
    total — a bug in span accounting, never a user error."""


@dataclass
class ExplainReport:
    """Everything ``repro explain`` renders, plus the raw span tree."""

    root: Span
    results: list = field(default_factory=list)
    #: Exclusive logical pages per phase (sums to ``total_pages``).
    phase_pages: dict[str, int] = field(default_factory=dict)
    #: Exclusive wall seconds per phase.
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Inclusive logical pages of the whole trace.
    total_pages: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    #: ``index name -> {"pages", "queries", "path"}`` rows (shards appear
    #: as ``shard0``, ``shard1``, … via the planner's ``index=`` span
    #: meta). ``path`` says which sweep/descent implementation served the
    #: row — ``columnar``, ``scalar``, ``columnar+scalar`` when mixed, or
    #: ``-`` when no sweep/descent span carried path metadata.
    index_rows: dict[str, dict] = field(default_factory=dict)
    #: ``tree name -> deepest descent height`` observed.
    descent_heights: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0


def _check_attribution(root: Span, phase_pages: dict[str, int]) -> int:
    """The identity every report is gated on: Σ exclusive == inclusive."""
    total = root.inclusive_pages()
    attributed = sum(phase_pages.values())
    if attributed != total:
        raise ExplainInvariantError(
            f"exclusive per-phase pages sum to {attributed}, "
            f"inclusive total is {total}"
        )
    return total


def _analyze(root: Span, results: list, cache_hits: int = 0,
             cache_misses: int = 0) -> ExplainReport:
    report = ExplainReport(
        root=root,
        results=results,
        phase_pages=root.phase_pages(),
        phase_times=root.phase_times(),
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )
    report.total_pages = _check_attribution(root, report.phase_pages)
    report.buffer_hits, report.buffer_misses = root.inclusive_buffer()
    for node in root.walk():
        if node.phase in ("query", "batch") and "index" in node.meta:
            row = report.index_rows.setdefault(
                node.meta["index"], {"pages": 0, "queries": 0, "path": "-"}
            )
            row["pages"] += node.inclusive_pages()
            row["queries"] += 1
            # Which hot path served this row: sweep spans carry
            # path="columnar"|"scalar", descents carry the
            # descent_vectorized flag.
            paths = set()
            for sub in node.walk():
                if "path" in sub.meta:
                    paths.add(str(sub.meta["path"]))
                elif "descent_vectorized" in sub.meta:
                    # Span meta values are stringified at record time.
                    vectorized = (
                        str(sub.meta["descent_vectorized"]).lower() == "true"
                    )
                    paths.add("columnar" if vectorized else "scalar")
            if paths:
                if row["path"] != "-":
                    paths |= set(row["path"].split("+"))
                row["path"] = "+".join(sorted(paths))
        if node.phase == "descend" and "height" in node.meta:
            tree = node.meta.get("tree", "?")
            height = int(node.meta["height"])
            if height > report.descent_heights.get(tree, -1):
                report.descent_heights[tree] = height
    return report


def explain(engine, queries: Sequence, batch: bool = False) -> ExplainReport:
    """Run ``queries`` against ``engine`` under a fresh trace and distill
    the checked report.

    ``batch=True`` routes through ``engine.query_batch`` (executor
    cache/merge/vectorize outcomes appear in the report); otherwise each
    query runs through ``engine.query`` sequentially.
    """
    queries = list(queries)
    trace = QueryTrace(name="explain")
    cache_hits = cache_misses = 0
    with tracing(trace):
        if batch:
            batch_result = engine.query_batch(queries)
            results = list(batch_result.results)
            cache_hits = batch_result.cache_hits
            cache_misses = batch_result.cache_misses
        else:
            results = [engine.query(q) for q in queries]
            cache_hits = sum(1 for r in results if r.cached)
            cache_misses = len(results) - cache_hits
    return _analyze(trace.close(), results, cache_hits, cache_misses)


def traced_answer(engine, query):
    """One query under a throwaway trace, attribution checked — the
    differential verifier's ``explain`` engine (must equal the oracle)."""
    trace = QueryTrace(name="explain")
    with tracing(trace):
        result = engine.query(query)
    root = trace.close()
    _check_attribution(root, root.phase_pages())
    return result


def render_explain(report: ExplainReport) -> str:
    """The human-readable ``repro explain`` output."""
    from repro.obs.trace import _render_span

    lines: list[str] = []
    _render_span(report.root, "", True, True, lines)
    lines.append("")
    lines.append("phase attribution (exclusive pages / exclusive ms):")
    for phase in sorted(report.phase_pages):
        lines.append(
            f"  {phase:<12s} {report.phase_pages[phase]:6d} pages"
            f"  {report.phase_times.get(phase, 0.0) * 1000:9.3f} ms"
        )
    lines.append(
        f"  {'total':<12s} {sum(report.phase_pages.values()):6d} pages"
        f"  == inclusive {report.total_pages} (checked)"
    )
    if report.index_rows:
        lines.append("")
        lines.append("per-index work:")
        for name in sorted(report.index_rows):
            row = report.index_rows[name]
            lines.append(
                f"  {name:<12s} {row['pages']:6d} pages"
                f"  {row['queries']:4d} queries"
                f"  path={row.get('path', '-')}"
            )
    if report.descent_heights:
        lines.append("")
        lines.append("b+-tree descents (max height):")
        for tree in sorted(report.descent_heights):
            lines.append(f"  {tree:<20s} height {report.descent_heights[tree]}")
    lines.append("")
    lines.append(
        f"buffer: {report.buffer_hits} hits / {report.buffer_misses} misses"
        f" (ratio {report.hit_ratio:.0%})"
    )
    lines.append(
        f"cache: {report.cache_hits} hits / {report.cache_misses} misses"
    )
    lines.append(
        "answers: "
        + " ".join(str(len(r.ids)) for r in report.results)
        + " tuples per query"
    )
    return "\n".join(lines)
