"""Per-query trace contexts: span trees with I/O and time attribution.

A :class:`QueryTrace` is bound to (at most) one :class:`~repro.storage.pager.Pager`
and records a tree of :class:`Span` objects. Entering a span snapshots
the pager's :class:`~repro.storage.stats.IOStats` and buffer counters;
leaving it stores the inclusive delta, so nested spans attribute every
page access to the innermost phase that caused it without any per-access
hook in the storage engine.

Hot paths report through the module-level :func:`span` / :func:`incr`
functions. With no active trace these are a global load plus a ``None``
check — the no-op mode costs nothing measurable and records nothing, so
disabling tracing can never change query results or counters.

Span names are dotted: the first segment is the *phase* (``plan``,
``descend``, ``sweep``, ``fetch``, ``verify``, ``build``, ``maintain``),
the rest is free-form detail (``sweep.primary``, ``sweep.app1``).

Multi-pager traces
------------------
A sharded engine runs one query against N independent pager stacks. The
trace keeps a *pager context stack*: a span measures the innermost
explicitly-bound pager (its own ``pager=`` argument, else the nearest
ancestor's), and records which one as :attr:`Span.pager_token`. The
token makes page aggregation exact: a child measured on the *same*
pager is already inside its parent's delta, while a child measured on a
*different* pager (another shard) is disjoint work that must be added.
:meth:`Span.inclusive_pages` / :meth:`Span.phase_pages` implement that
accounting, so exclusive per-phase pages always sum to the inclusive
total — the invariant ``repro explain`` asserts.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.storage.stats import IOStats


@dataclass
class Span:
    """One timed, I/O-attributed phase of a query (inclusive of children)."""

    name: str
    meta: dict = field(default_factory=dict)
    elapsed: float = 0.0  # seconds, inclusive
    io: IOStats = field(default_factory=IOStats)
    buffer_hits: int = 0
    buffer_misses: int = 0
    counters: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    #: Offset of the span's start from the trace's start, in seconds
    #: (drives the Chrome trace-event timeline).
    start: float = 0.0
    #: Identity of the pager this span's ``io`` was measured on (``None``
    #: when the span measured nothing). Children sharing the token are
    #: already inside this span's delta; children with a different token
    #: (another shard's pager) are disjoint work.
    pager_token: int | None = None
    #: Set by :meth:`QueryTrace.close` on the root once its ``io`` has
    #: been overwritten with the inclusive sum of its children — the
    #: children are then covered by construction, whatever their tokens.
    aggregated: bool = False

    @property
    def phase(self) -> str:
        """The span's phase bucket (first dotted segment of the name)."""
        return self.name.split(".", 1)[0]

    @property
    def pages(self) -> int:
        """Logical page accesses charged to this span (inclusive)."""
        return self.io.logical_reads + self.io.logical_writes

    @property
    def hit_ratio(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def _covers(self, child: "Span") -> bool:
        """True when ``child``'s measured I/O is already inside this
        span's own delta (same pager, both actually measured — or this
        span's io was aggregated from its children at close time)."""
        if self.aggregated:
            return True
        return (
            child.pager_token is not None
            and child.pager_token == self.pager_token
        )

    def inclusive_io(self) -> IOStats:
        """I/O of the whole subtree, exact across pagers: this span's
        measured delta plus every child subtree measured on a *different*
        pager (same-pager children are already inside the delta)."""
        total = self.io.snapshot()
        for child in self.children:
            if not self._covers(child):
                part = child.inclusive_io()
                total.logical_reads += part.logical_reads
                total.logical_writes += part.logical_writes
                total.physical_reads += part.physical_reads
                total.physical_writes += part.physical_writes
                total.allocations += part.allocations
                total.frees += part.frees
        return total

    def inclusive_pages(self) -> int:
        """Logical page accesses of the whole subtree (multi-pager safe)."""
        total = self.pages
        for child in self.children:
            if not self._covers(child):
                total += child.inclusive_pages()
        return total

    def inclusive_buffer(self) -> tuple[int, int]:
        """``(hits, misses)`` of the whole subtree (multi-pager safe)."""
        hits, misses = self.buffer_hits, self.buffer_misses
        for child in self.children:
            if not self._covers(child):
                h, m = child.inclusive_buffer()
                hits += h
                misses += m
        return hits, misses

    def phase_pages(self) -> dict[str, int]:
        """Logical page accesses per phase, attributed to the *innermost*
        span that caused them (exclusive accounting over the subtree).

        The accounting is pager-token aware, so per-shard spans measured
        on disjoint pagers attribute correctly and the exclusive values
        always sum to :meth:`inclusive_pages` of the subtree root.
        """
        totals: dict[str, int] = {}
        for node in self.walk():
            exclusive = node.inclusive_pages() - sum(
                c.inclusive_pages() for c in node.children
            )
            totals[node.phase] = totals.get(node.phase, 0) + exclusive
        return totals

    def phase_times(self) -> dict[str, float]:
        """Exclusive wall seconds per phase (children subtracted; clamped
        at zero against timer jitter)."""
        totals: dict[str, float] = {}
        for node in self.walk():
            exclusive = node.elapsed - sum(c.elapsed for c in node.children)
            totals[node.phase] = totals.get(node.phase, 0.0) + max(
                0.0, exclusive
            )
        return totals

    def total_counters(self) -> dict[str, float]:
        """Counters summed over the whole subtree."""
        totals: dict[str, float] = {}
        for node in self.walk():
            for key, value in node.counters.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def to_dict(self) -> dict:
        """JSON-ready representation (schema documented in the README)."""
        return {
            "name": self.name,
            "meta": dict(self.meta),
            "start_ms": self.start * 1000.0,
            "elapsed_ms": self.elapsed * 1000.0,
            "io": self.io.as_dict(),
            "buffer": {"hits": self.buffer_hits, "misses": self.buffer_misses},
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }


class QueryTrace:
    """A span-tree recorder bound to one pager stack.

    Parameters
    ----------
    pager:
        The storage stack whose counters the spans snapshot. May be left
        ``None`` and bound later by the first instrumented layer that
        knows its pager (planners do this) — until then spans carry only
        wall time and counters.
    name:
        Root span name.
    """

    def __init__(self, pager=None, name: str = "trace", meta: dict | None = None) -> None:
        self.pager = pager
        self.root = Span(name, dict(meta or {}))
        self._stack: list[Span] = [self.root]
        #: Pager context stack: a span measures the innermost explicitly
        #: bound pager (its own ``pager=``, else the nearest ancestor's).
        self._pagers: list = [pager]
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, pager=None, **meta):
        """Open a child span of the innermost open span.

        ``pager=`` rebinds the measurement context for this span and its
        descendants (per-shard sub-queries pass their own pager); without
        it the span inherits the nearest ancestor's pager. The first
        pager ever seen also late-binds the trace itself.
        """
        if pager is not None and self.pager is None:
            self.pager = pager
        effective = pager if pager is not None else self._pagers[-1]
        if effective is None:
            effective = self.pager
        node = Span(name, {k: str(v) for k, v in meta.items()})
        node.start = time.perf_counter() - self._started
        node.pager_token = id(effective) if effective is not None else None
        parent = self._stack[-1]
        parent.children.append(node)
        self._stack.append(node)
        self._pagers.append(effective)
        before_io = effective.stats.snapshot() if effective is not None else None
        before_hits = effective.buffer.hits if effective is not None else 0
        before_misses = effective.buffer.misses if effective is not None else 0
        start = time.perf_counter()
        try:
            yield node
        finally:
            node.elapsed = time.perf_counter() - start
            if before_io is not None:
                node.io = effective.stats.delta_since(before_io)
                node.buffer_hits = effective.buffer.hits - before_hits
                node.buffer_misses = effective.buffer.misses - before_misses
            self._pagers.pop()
            self._stack.pop()

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter on the innermost open span."""
        self._stack[-1].incr(name, amount)

    def close(self) -> Span:
        """Finalise the root span (sums children; idempotent).

        The root measured nothing itself (it has no pager snapshot), so
        its totals are the token-aware inclusive sums of its children —
        exact even when children measured different shard pagers.
        """
        root = self.root
        root.elapsed = time.perf_counter() - self._started
        if root.children:
            root.io = IOStats()
            root.buffer_hits = root.buffer_misses = 0
            for child in root.children:
                part = child.inclusive_io()
                root.io.logical_reads += part.logical_reads
                root.io.logical_writes += part.logical_writes
                root.io.physical_reads += part.physical_reads
                root.io.physical_writes += part.physical_writes
                root.io.allocations += part.allocations
                root.io.frees += part.frees
                hits, misses = child.inclusive_buffer()
                root.buffer_hits += hits
                root.buffer_misses += misses
            root.aggregated = True
        return root

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return self.close().to_dict()

    def export_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable span tree (the ``repro trace`` CLI output)."""
        self.close()
        lines: list[str] = []
        _render_span(self.root, "", True, True, lines)
        return "\n".join(lines)


def _render_span(node: Span, prefix: str, is_last: bool, is_root: bool,
                 lines: list[str]) -> None:
    connector = "" if is_root else ("└─ " if is_last else "├─ ")
    label = node.name
    if node.meta:
        label += " [" + " ".join(f"{k}={v}" for k, v in node.meta.items()) + "]"
    io = node.inclusive_io()
    stats = (
        f"{node.elapsed * 1000:8.3f} ms  "
        f"{io.logical_reads + io.logical_writes:5d} pages "
        f"({io.logical_reads}r+{io.logical_writes}w, "
        f"{io.physical_reads + io.physical_writes} physical"
    )
    hits, misses = node.inclusive_buffer()
    if hits + misses:
        stats += f", hit {hits / (hits + misses):.0%}"
    stats += ")"
    if node.counters:
        stats += "  " + " ".join(
            f"{k}={v:g}" for k, v in sorted(node.counters.items())
        )
    lines.append(f"{prefix}{connector}{label:<28s} {stats}")
    child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
    for i, child in enumerate(node.children):
        _render_span(child, child_prefix, i == len(node.children) - 1, False,
                     lines)


# ----------------------------------------------------------------------
# module-level hooks (the hot-path API)
# ----------------------------------------------------------------------
_ACTIVE: QueryTrace | None = None


class _NullSpan:
    """Reusable no-op context manager for the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


def current() -> QueryTrace | None:
    """The active trace, or ``None`` when tracing is disabled."""
    return _ACTIVE


@contextmanager
def tracing(trace: QueryTrace):
    """Activate a trace for the dynamic extent of the block.

    Traces do not nest: activating a second trace raises, because two
    recorders snapshotting one pager would double-charge every access.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a trace is already active")
    _ACTIVE = trace
    try:
        yield trace
    finally:
        _ACTIVE = None
        trace.close()


def span(name: str, pager=None, **meta):
    """Open a span on the active trace; no-op when tracing is disabled."""
    trace = _ACTIVE
    if trace is None:
        return _NULL_SPAN
    return trace.span(name, pager=pager, **meta)


def incr(name: str, amount: float = 1.0) -> None:
    """Bump a counter on the active span; no-op when tracing is disabled."""
    trace = _ACTIVE
    if trace is not None:
        trace.incr(name, amount)
